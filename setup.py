"""Classic setup shim.

The offline environment has no ``wheel`` package, so PEP-517 editable
installs (``pip install -e .``) cannot build a wheel. ``python setup.py
develop`` installs the package in editable mode without one. All project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
