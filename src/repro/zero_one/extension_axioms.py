"""Extension axioms: the axiomatization behind the 0–1 law.

The level-k extension axioms EA_k say: for all distinct x₁..x_k and
every consistent description τ of how a further element z could relate
to them (every atom involving z set true or false), some z ∉ {x₁..x_k}
realizes τ. Each EA_k holds almost surely in STRUC(σ, n) as n → ∞, and
together they axiomatize a complete theory — the almost-sure theory —
which is what makes μ(φ) ∈ {0, 1} for every FO sentence φ.

This module enumerates extension conditions, renders them as FO
sentences, checks whether a concrete finite structure satisfies EA_k,
and searches for finite witnesses (random structures of growing size).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator

from repro.errors import FMTError
from repro.logic.builder import and_, distinct, exists, forall_many, implies, neq, not_
from repro.logic.signature import Signature
from repro.logic.syntax import Atom, Formula, Var
from repro.structures.builders import random_structure
from repro.structures.structure import Element, Structure

__all__ = [
    "extension_atoms",
    "extension_conditions",
    "extension_axiom_formula",
    "satisfies_extension_axiom",
    "extension_axiom_counterexample",
    "find_extension_witness",
]


def extension_atoms(signature: Signature, k: int) -> list[tuple[str, tuple[int, ...]]]:
    """All atom patterns over x₁..x_k, z that mention z.

    A pattern is (relation, positions) where positions are indices into
    the tuple (x₁, ..., x_k, z) — index k denotes z. Patterns are ordered
    deterministically.
    """
    if k < 0:
        raise FMTError(f"k must be non-negative, got {k}")
    patterns: list[tuple[str, tuple[int, ...]]] = []
    for name in signature.relation_names():
        arity = signature.arity(name)
        for positions in itertools.product(range(k + 1), repeat=arity):
            if k in positions:
                patterns.append((name, positions))
    return patterns


def extension_conditions(signature: Signature, k: int) -> Iterator[dict[tuple[str, tuple[int, ...]], bool]]:
    """Every truth assignment to the z-involving atom patterns.

    There are 2^|extension_atoms| conditions; for directed graphs and
    k = 2 that is 2⁵ = 32.
    """
    patterns = extension_atoms(signature, k)
    for bits in itertools.product((False, True), repeat=len(patterns)):
        yield dict(zip(patterns, bits))


def extension_axiom_formula(
    signature: Signature,
    k: int,
    condition: dict[tuple[str, tuple[int, ...]], bool],
) -> Formula:
    """The FO sentence for one extension condition.

    ∀x₁..x_k (distinct(x̄) → ∃z (z ≠ xᵢ ∧ ⋀ (±)R(...))) — quantifier rank
    k + 1. Used to express the axioms for documentation and for tiny
    cross-checks against :func:`satisfies_extension_axiom`.
    """
    xs = tuple(Var(f"x{index + 1}") for index in range(k))
    z = Var("z")
    variables = xs + (z,)
    literals: list[Formula] = [neq(z, x) for x in xs]
    for (name, positions), value in condition.items():
        atom_ = Atom(name, tuple(variables[p] for p in positions))
        literals.append(atom_ if value else not_(atom_))
    body = exists(z, and_(*literals))
    if k == 0:
        return body
    return forall_many(xs, implies(distinct(*xs), body))


def _z_realizes(
    structure: Structure,
    xs: tuple[Element, ...],
    z: Element,
    condition: dict[tuple[str, tuple[int, ...]], bool],
) -> bool:
    tuple_with_z = xs + (z,)
    for (name, positions), value in condition.items():
        row = tuple(tuple_with_z[p] for p in positions)
        if structure.holds(name, row) != value:
            return False
    return True


def extension_axiom_counterexample(
    structure: Structure,
    k: int,
) -> tuple[tuple[Element, ...], dict] | None:
    """A (x̄, condition) pair with no witness, or None if EA_k holds.

    Exhaustive: O(n^k · 2^atoms · n) structure probes, so use on
    moderate sizes. The numpy-free generic path; adequate for the
    witness sizes the library searches (k ≤ 2).
    """
    if k < 0:
        raise FMTError(f"k must be non-negative, got {k}")
    signature = structure.signature
    conditions = list(extension_conditions(signature, k))
    for xs in itertools.permutations(structure.universe, k):
        forbidden = set(xs)
        for condition in conditions:
            if not any(
                _z_realizes(structure, xs, z, condition)
                for z in structure.universe
                if z not in forbidden
            ):
                return xs, condition
    return None


def satisfies_extension_axiom(structure: Structure, k: int) -> bool:
    """Whether the structure satisfies every level-k extension axiom."""
    return extension_axiom_counterexample(structure, k) is None


def find_extension_witness(
    signature: Signature,
    k: int,
    start_size: int = 8,
    max_size: int = 512,
    seed: int = 0,
) -> Structure:
    """A finite structure satisfying EA_k, found by random search.

    Random structures satisfy EA_k with probability → 1, so doubling the
    size until verification succeeds terminates quickly in practice.
    Raises :class:`FMTError` if ``max_size`` is exhausted (raise it, or
    lower k).
    """
    size = max(start_size, k + 2)
    attempt = 0
    while size <= max_size:
        candidate = random_structure(signature, size, p=0.5, seed=seed * 7919 + attempt)
        if satisfies_extension_axiom(candidate, k):
            return candidate
        attempt += 1
        size = int(size * 1.5) + 1
    raise FMTError(
        f"no EA_{k} witness found up to size {max_size}; raise max_size "
        "(witness sizes grow exponentially with the number of atom patterns)"
    )
