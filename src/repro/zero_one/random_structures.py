"""The probability space STRUC(σ, n) of the 0–1 law.

μ_n(Q) is the probability that a uniformly random structure with domain
[n] satisfies Q. Sampling uniformly means including every possible tuple
of every relation independently with probability 1/2 — exactly what
:func:`repro.structures.builders.random_structure` does; this module adds
the measurement machinery.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import FMTError
from repro.logic.signature import Signature
from repro.structures.builders import random_structure
from repro.structures.structure import Structure

__all__ = ["mu_estimate", "MuEstimate", "mu_curve", "count_structures"]


@dataclass(frozen=True)
class MuEstimate:
    """A Monte-Carlo estimate of μ_n(Q) with a 95% confidence half-width."""

    n: int
    samples: int
    successes: int

    @property
    def value(self) -> float:
        return self.successes / self.samples

    @property
    def half_width(self) -> float:
        """Normal-approximation 95% confidence half-width."""
        p = self.value
        return 1.96 * math.sqrt(max(p * (1 - p), 1e-12) / self.samples)

    def __repr__(self) -> str:
        return f"μ_{self.n} ≈ {self.value:.3f} ± {self.half_width:.3f} ({self.samples} samples)"


def _sample_chunk(payload: tuple) -> int:
    """Worker body: draw and test one contiguous range of sample indices.

    Each index regenerates its structure from the same per-index seed the
    serial loop uses (``seed * 1_000_003 + index``), so the success count
    is independent of how the range was chunked or scheduled.
    """
    query, signature, n, seed, start, stop = payload
    successes = 0
    for index in range(start, stop):
        structure = random_structure(signature, n, p=0.5, seed=seed * 1_000_003 + index)
        if query(structure):
            successes += 1
    return successes


def mu_estimate(
    query: Callable[[Structure], bool],
    signature: Signature,
    n: int,
    samples: int = 200,
    seed: int = 0,
    *,
    max_workers: int | None = None,
) -> MuEstimate:
    """Estimate μ_n(Q) by sampling STRUC(σ, n) uniformly.

    Sampling fans out over the shared worker pool when ``max_workers``
    (or ``REPRO_PARALLEL``) enables it. Seeds are assigned per sample
    index, so the estimate is bit-identical at any worker count; if the
    query cannot cross a process boundary the map itself degrades to the
    serial path.
    """
    if samples < 1:
        raise FMTError(f"need at least one sample, got {samples}")
    from repro.parallel import CHUNKS_PER_WORKER, parallel_map, resolve_workers

    workers = resolve_workers(max_workers)
    if workers <= 1 or samples < 2:
        successes = _sample_chunk((query, signature, n, seed, 0, samples))
        return MuEstimate(n=n, samples=samples, successes=successes)
    size = max(1, math.ceil(samples / (workers * CHUNKS_PER_WORKER)))
    payloads = [
        (query, signature, n, seed, start, min(start + size, samples))
        for start in range(0, samples, size)
    ]
    counts = parallel_map(
        _sample_chunk, payloads, max_workers=workers, chunk_size=1
    )
    return MuEstimate(n=n, samples=samples, successes=sum(counts))


def mu_curve(
    query: Callable[[Structure], bool],
    signature: Signature,
    sizes: list[int],
    samples: int = 200,
    seed: int = 0,
    *,
    max_workers: int | None = None,
) -> list[MuEstimate]:
    """μ_n estimates across a range of sizes — the convergence curve of E12."""
    return [
        mu_estimate(query, signature, n, samples, seed, max_workers=max_workers)
        for n in sizes
    ]


def count_structures(signature: Signature, n: int) -> int:
    """|STRUC(σ, n)|: the exact number of structures with domain [n]."""
    total = 1
    for name in signature.relation_names():
        total *= 2 ** (n ** signature.arity(name))
    return total
