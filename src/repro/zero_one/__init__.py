"""The 0–1 law for FO (S6).

Uniform random structures, extension axioms, and exact almost-sure
decisions μ(φ) ∈ {0, 1}.
"""

from repro.zero_one.asymptotic import (
    SentenceQuery,
    decide_almost_sure,
    decide_via_witness,
    mu_estimate_sentence,
    mu_limit,
)
from repro.zero_one.extension_axioms import (
    extension_atoms,
    extension_axiom_counterexample,
    extension_axiom_formula,
    extension_conditions,
    find_extension_witness,
    satisfies_extension_axiom,
)
from repro.zero_one.random_structures import (
    MuEstimate,
    count_structures,
    mu_curve,
    mu_estimate,
)

__all__ = [
    "mu_estimate", "mu_curve", "MuEstimate", "count_structures",
    "extension_atoms", "extension_conditions", "extension_axiom_formula",
    "satisfies_extension_axiom", "extension_axiom_counterexample",
    "find_extension_witness",
    "decide_almost_sure", "mu_limit", "decide_via_witness",
    "SentenceQuery", "mu_estimate_sentence",
]
