"""Deciding the almost-sure truth value: μ(φ) ∈ {0, 1}, exactly.

The 0–1 law says every FO sentence φ has μ(φ) = lim μ_n(φ) ∈ {0, 1}.
The proof gives an effective decision procedure: the extension axioms
axiomatize a complete "almost-sure theory", so μ(φ) = 1 iff φ holds in
the countable *generic* structure (the Rado-graph analogue for the
signature).

:func:`decide_almost_sure` model-checks φ against the generic structure
symbolically. The key observation: in a model of all extension axioms,
an existential quantifier has a witness for *every* consistent
description of how a new element relates to the ones already named. So
∃x ψ is evaluated by branching over (a) equality with an already-named
element, and (b) every truth assignment to the atoms that involve the
fresh element; ∀x ψ is the dual. No witness structure is materialized —
the procedure is exact and fast for quantifier rank ≤ 4 (the branching
grows doubly exponentially with rank).

:func:`decide_via_witness` is the finite counterpart: evaluate φ on a
finite structure satisfying EA_{qr(φ)−1}; the transfer lemma (tested via
the EF solver) makes this agree with the symbolic route.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import FMTError, FormulaError
from repro.eval.evaluator import evaluate
from repro.logic.analysis import free_variables, quantifier_rank, validate
from repro.logic.signature import Signature
from repro.logic.syntax import (
    And,
    Atom,
    Bottom,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Var,
)
from repro.structures.structure import Structure
from repro.zero_one.extension_axioms import find_extension_witness
from repro.zero_one.random_structures import MuEstimate, mu_estimate

__all__ = [
    "decide_almost_sure",
    "mu_limit",
    "decide_via_witness",
    "SentenceQuery",
    "mu_estimate_sentence",
]


@dataclass(frozen=True)
class SentenceQuery:
    """A picklable "does A ⊨ φ?" query for the Monte-Carlo sampler.

    :func:`repro.zero_one.random_structures.mu_estimate` accepts any
    callable, but only a *picklable* one can cross a process boundary;
    lambdas and closures silently keep the sampler serial. Formulas are
    frozen dataclasses and pickle fine, so this wrapper is all the 0–1
    law experiments need to fan sampling out over worker processes.
    """

    sentence: Formula

    def __call__(self, structure: Structure) -> bool:
        return evaluate(structure, self.sentence)


def mu_estimate_sentence(
    sentence: Formula,
    signature: Signature,
    n: int,
    samples: int = 200,
    seed: int = 0,
    *,
    max_workers: int | None = None,
) -> MuEstimate:
    """Monte-Carlo μ_n(φ) for an FO sentence, sampled across workers.

    The empirical companion to :func:`decide_almost_sure` (E12/E18): the
    estimates converge to the almost-sure truth value as n grows. Seeds
    are per sample index, so the estimate is identical at any worker
    count.
    """
    free = free_variables(sentence)
    if free:
        names = sorted(var.name for var in free)
        raise FormulaError(f"μ is defined for sentences; free variables: {names}")
    validate(sentence, signature)
    return mu_estimate(
        SentenceQuery(sentence), signature, n, samples, seed, max_workers=max_workers
    )


def decide_almost_sure(sentence: Formula, signature: Signature) -> bool:
    """Whether μ(sentence) = 1 (else, by the 0–1 law, μ = 0).

    Exact symbolic model checking against the generic structure of the
    signature. The signature must be purely relational (the 0–1 law
    requires this — the slides stress "here it is important that the
    signature is relational").
    """
    if signature.constants:
        raise FMTError("the 0-1 law requires a purely relational signature")
    free = free_variables(sentence)
    if free:
        names = sorted(var.name for var in free)
        raise FormulaError(f"μ is defined for sentences; free variables: {names}")
    validate(sentence, signature)

    relation_names = signature.relation_names()
    arities = {name: signature.arity(name) for name in relation_names}

    def new_atoms(count: int) -> list[tuple[str, tuple[int, ...]]]:
        """Atom patterns over elements 0..count that involve element `count`."""
        patterns = []
        for name in relation_names:
            for positions in itertools.product(range(count + 1), repeat=arities[name]):
                if count in positions:
                    patterns.append((name, positions))
        return patterns

    def holds(
        node: Formula,
        env: dict[Var, int],
        count: int,
        facts: dict[tuple[str, tuple[int, ...]], bool],
    ) -> bool:
        if isinstance(node, Atom):
            row = tuple(env[term] for term in node.terms)  # type: ignore[index]
            return facts[(node.relation, row)]
        if isinstance(node, Eq):
            return env[node.left] == env[node.right]  # type: ignore[index]
        if isinstance(node, Top):
            return True
        if isinstance(node, Bottom):
            return False
        if isinstance(node, Not):
            return not holds(node.body, env, count, facts)
        if isinstance(node, And):
            return all(holds(child, env, count, facts) for child in node.children)
        if isinstance(node, Or):
            return any(holds(child, env, count, facts) for child in node.children)
        if isinstance(node, Implies):
            return (not holds(node.premise, env, count, facts)) or holds(
                node.conclusion, env, count, facts
            )
        if isinstance(node, Iff):
            return holds(node.left, env, count, facts) == holds(
                node.right, env, count, facts
            )
        if isinstance(node, (Exists, Forall)):
            want = isinstance(node, Exists)
            # (a) the quantified element equals an already-named one;
            for existing in range(count):
                child_env = dict(env)
                child_env[node.var] = existing
                if holds(node.body, child_env, count, facts) == want:
                    return want
            # (b) a fresh generic element, for every consistent
            #     description of its atoms (all realized, by the
            #     extension axioms).
            patterns = new_atoms(count)
            child_env = dict(env)
            child_env[node.var] = count
            for bits in itertools.product((False, True), repeat=len(patterns)):
                extended = dict(facts)
                extended.update(zip(patterns, bits))
                if holds(node.body, child_env, count + 1, extended) == want:
                    return want
            return not want
        raise FormulaError(f"unknown formula node {node!r}")

    return holds(sentence, {}, 0, {})


def mu_limit(sentence: Formula, signature: Signature) -> int:
    """μ(sentence) as an integer 0 or 1."""
    return 1 if decide_almost_sure(sentence, signature) else 0


def decide_via_witness(
    sentence: Formula,
    signature: Signature,
    witness: Structure | None = None,
    seed: int = 0,
) -> bool:
    """Decide μ(sentence) by evaluating on a finite extension-axiom witness.

    A structure satisfying EA_k for k = qr(sentence) − 1 agrees with the
    generic structure on all sentences of rank ≤ qr(sentence) (transfer
    via the EF game: the duplicator answers each round using an
    extension axiom). If ``witness`` is omitted one is searched for —
    feasible for quantifier rank ≤ 2 over graphs; beyond that, pass a
    pre-verified witness or use :func:`decide_almost_sure`.
    """
    rank = quantifier_rank(sentence)
    if witness is None:
        witness = find_extension_witness(signature, max(rank - 1, 0), seed=seed)
    return evaluate(witness, sentence)
