"""Deadlines, budgets, and graceful degradation (S17).

``repro.resilience`` is the admission-control layer that makes every
evaluation path in the toolbox safe to run under load: naive FO
evaluation is PSPACE-hard in combined complexity, so production serving
needs per-query resource governance — a :class:`Budget` (wall-clock
deadline, row budget, solver-node cap) enforced by a cooperative
:class:`CancelToken` threaded through the engine executor, the locality
census, the EF solver, the naive evaluator and the parallel pool — plus
a :class:`FallbackChain` that degrades engine → bounded-degree census →
naive evaluator behind per-rung circuit breakers, and a deterministic
fault injector (``REPRO_FAULT_INJECT``) proving the ladder degrades
without ever returning a wrong answer.
"""

from repro.errors import BudgetExceeded, BudgetExceededError, InjectedFaultError
from repro.resilience.budget import (
    Budget,
    CancelToken,
    as_token,
    default_budget_from_env,
)
from repro.resilience.fallback import (
    CircuitBreaker,
    FallbackChain,
    Rung,
    default_chain,
    resilient_answers,
)
from repro.resilience.faults import (
    FaultInjector,
    arm_faults,
    fault_point,
    faults_armed,
    get_injector,
    injector_from_env,
    reset_injector,
    set_injector,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "BudgetExceededError",
    "CancelToken",
    "CircuitBreaker",
    "FallbackChain",
    "FaultInjector",
    "InjectedFaultError",
    "Rung",
    "arm_faults",
    "as_token",
    "default_budget_from_env",
    "default_chain",
    "fault_point",
    "faults_armed",
    "get_injector",
    "injector_from_env",
    "reset_injector",
    "resilient_answers",
    "set_injector",
]
