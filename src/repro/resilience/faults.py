"""Deterministic fault injection for the degradation ladder (S17).

The fallback chain's claim — *degrade, never lie* — is only testable if
faults actually happen. This module plants named *fault points* inside
the fast evaluation paths (engine execution, locality census, parallel
fan-out, EF solving); each point, when the injector is enabled **and**
armed, raises :class:`~repro.errors.InjectedFaultError` on a
deterministic schedule (every ``period``-th visit per site). The
conformance runner and the resilience tests then assert the chain still
produces answers identical to the fault-free reference.

Two switches must both be on for a fault to fire:

* **enabled** — process-wide, from ``REPRO_FAULT_INJECT`` (``1`` → the
  default period, an integer ≥ 2 → that period) or
  :func:`set_injector`; parsing happens once, lazily.
* **armed** — per-thread, only inside :func:`arm_faults` blocks. The
  fallback chain arms itself around its degradable rungs, so running
  the whole test suite under ``REPRO_FAULT_INJECT=1`` perturbs exactly
  the paths that are built to recover, and nothing else.

The naive reference evaluator deliberately has **no** fault points: the
last rung of every chain is injection-free, which is what lets the
campaign in EXPERIMENTS E20 prove "N injected faults, zero wrong
answers".
"""

from __future__ import annotations

import os
import threading
from collections import defaultdict

from repro.errors import FMTError, InjectedFaultError
from repro.telemetry.metrics import counter as _counter
from repro.telemetry.tracer import is_enabled as _telemetry_enabled

__all__ = [
    "FaultInjector",
    "arm_faults",
    "fault_point",
    "faults_armed",
    "get_injector",
    "injector_from_env",
    "reset_injector",
    "set_injector",
]

#: Default firing period: every 3rd visit of an armed fault point fires.
DEFAULT_PERIOD = 3

_MISSING = object()


class FaultInjector:
    """Counts visits per site and fires every ``period``-th one.

    Deterministic by construction: the same sequence of armed fault-point
    visits produces the same faults, so a failing fuzz case replays.
    ``fired`` and ``visits`` are exposed for campaign accounting (E20).
    """

    def __init__(self, period: int = DEFAULT_PERIOD) -> None:
        if period < 2:
            raise FMTError(f"fault-injection period must be at least 2, got {period}")
        self.period = period
        self.fired = 0
        self.visits = 0
        self._counts: dict[str, int] = defaultdict(int)
        self._lock = threading.Lock()

    def should_fire(self, site: str) -> bool:
        with self._lock:
            self.visits += 1
            self._counts[site] += 1
            if self._counts[site] % self.period == 0:
                self.fired += 1
                return True
            return False

    def counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def __repr__(self) -> str:
        return f"FaultInjector(period={self.period}, fired={self.fired})"


def injector_from_env() -> FaultInjector | None:
    """Parse ``REPRO_FAULT_INJECT``: unset/``0`` → off, ``1`` → default
    period, an integer ≥ 2 → that period."""
    raw = os.environ.get("REPRO_FAULT_INJECT", "").strip().lower()
    if raw in ("", "0", "false", "off", "no"):
        return None
    if raw in ("1", "true", "on", "yes"):
        return FaultInjector()
    try:
        period = int(raw)
    except ValueError:
        raise FMTError(
            f"REPRO_FAULT_INJECT must be 0, 1, or a period >= 2, got {raw!r}"
        ) from None
    return FaultInjector(period=period)


# The process-wide injector. ``_MISSING`` means "not yet resolved from
# the environment"; ``None`` means "resolved: injection off".
_injector: FaultInjector | None | object = _MISSING
_injector_lock = threading.Lock()

_armed = threading.local()


def get_injector() -> FaultInjector | None:
    """The active injector, resolving ``REPRO_FAULT_INJECT`` on first use."""
    global _injector
    if _injector is _MISSING:
        with _injector_lock:
            if _injector is _MISSING:
                _injector = injector_from_env()
    return _injector  # type: ignore[return-value]


def set_injector(injector: FaultInjector | None) -> None:
    """Install (or clear, with ``None``) the process-wide injector.

    Tests use this to drive injection without touching the environment;
    passing ``None`` turns injection off until :func:`reset_injector`.
    """
    global _injector
    with _injector_lock:
        _injector = injector


def reset_injector() -> None:
    """Forget the resolved injector; the next fault point re-reads the env."""
    global _injector
    with _injector_lock:
        _injector = _MISSING


class arm_faults:
    """Context manager arming fault points on the current thread.

    Reentrant: nested arming keeps faults armed until the outermost exit.
    """

    def __enter__(self) -> "arm_faults":
        _armed.depth = getattr(_armed, "depth", 0) + 1
        return self

    def __exit__(self, *exc_info) -> None:
        _armed.depth = getattr(_armed, "depth", 1) - 1


def faults_armed() -> bool:
    return getattr(_armed, "depth", 0) > 0


def fault_point(site: str) -> None:
    """Declare a fault point; raises :class:`InjectedFaultError` when due.

    A no-op (one thread-local read) unless an injector is installed and
    the current thread is inside an :func:`arm_faults` block.
    """
    if getattr(_armed, "depth", 0) <= 0:
        return
    injector = get_injector()
    if injector is None:
        return
    if injector.should_fire(site):
        if _telemetry_enabled():
            _counter(f"resilience.faults.{site}").inc()
            _counter("resilience.faults_injected").inc()
        raise InjectedFaultError(site)
