"""Graceful degradation: the fallback chain and its circuit breakers (S17).

Vardi's combined/data-complexity split is an argument for *tiered*
serving: the planned engine is the fast tier, the Theorem 3.11
bounded-degree census path is the cheap linear-time tier for the
sentences it covers, and the naive recursive evaluator is the
always-correct tier of last resort. All three compute the **same
function** — ans(φ, A) — which is what makes degradation safe: a rung
that fails its budget (or suffers an injected fault) is replaced by a
slower rung, never by a wrong answer.

:class:`FallbackChain` walks its rungs in order; a rung is skipped when
its applicability predicate says no or when its :class:`CircuitBreaker`
is open (too many consecutive failures — stop hammering a tier that is
over budget for this workload and go straight to the next one; after a
cooldown one probe call half-opens it again). Every degradation is
recorded in ``resilience.*`` telemetry counters.

Fault points are armed (:func:`repro.resilience.faults.arm_faults`) only
around *degradable* rungs — every rung except the last — so under
``REPRO_FAULT_INJECT`` the chain absorbs injected faults and the final
rung still answers faithfully.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.errors import BudgetExceededError
from repro.logic.syntax import Formula
from repro.resilience.budget import Budget, CancelToken, as_token
from repro.resilience.faults import arm_faults
from repro.structures.structure import Element, Structure
from repro.telemetry.context import current_trace_id
from repro.telemetry.metrics import counter as _counter
from repro.telemetry.tracer import is_enabled as _telemetry_enabled
from repro.telemetry.tracer import span as _span

__all__ = ["CircuitBreaker", "FallbackChain", "Rung", "default_chain", "resilient_answers"]

Answers = frozenset[tuple[Element, ...]]

AnswerFn = Callable[[Structure, Formula, CancelToken | None], Answers]
ApplicableFn = Callable[[Structure, Formula], tuple[bool, str]]


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open probe after cooldown.

    Closed (normal) → open after ``failure_threshold`` consecutive
    failures → half-open after ``cooldown_s`` (one probe call is let
    through; success closes, failure re-opens and restarts the cooldown).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be positive, got {failure_threshold}")
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be non-negative, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self.failures = 0
        self._opened_at: float | None = None

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.cooldown_s:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """Whether the next call may proceed (half-open admits one probe)."""
        return self.state != "open"

    def record_success(self) -> None:
        self.failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        self.failures += 1
        if self.failures >= self.failure_threshold:
            self._opened_at = self._clock()

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.state}, failures={self.failures})"


@dataclass
class Rung:
    """One tier of the degradation ladder."""

    name: str
    answers: AnswerFn
    applicable: ApplicableFn | None = None

    def is_applicable(self, structure: Structure, formula: Formula) -> tuple[bool, str]:
        if self.applicable is None:
            return True, "always applicable"
        return self.applicable(structure, formula)


@dataclass
class Degradation:
    """One recorded step down the ladder (kept for introspection/tests).

    ``trace_id`` is the request context active when the rung failed
    (``None`` outside a request scope), so a degradation observed in the
    chain joins the access-log line and span tree of the request that
    caused it.
    """

    rung: str
    error: str
    trace_id: str | None = None


class FallbackChain:
    """Try each rung in order; degrade on :class:`BudgetExceededError`.

    Parameters
    ----------
    rungs:
        The ladder, fastest first. The last rung runs with fault
        injection disarmed (it is the tier of last resort).
    failure_threshold / cooldown_s:
        Circuit-breaker tuning, one independent breaker per rung.
    name:
        Telemetry prefix (``resilience.<name>.*``).

    Only budget-shaped failures degrade: a rung raising a non-budget
    error (a genuine bug) propagates immediately — masking it behind a
    slower rung is exactly the silent-fallback failure mode the pickle
    pre-check bugfix in ``repro.parallel`` removes.
    """

    def __init__(
        self,
        rungs: list[Rung],
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        name: str = "chain",
    ) -> None:
        if not rungs:
            raise ValueError("a fallback chain needs at least one rung")
        self.rungs = list(rungs)
        self.name = name
        self.breakers = {
            rung.name: CircuitBreaker(failure_threshold, cooldown_s)
            for rung in self.rungs
        }
        self.degradations: list[Degradation] = []

    def answers(
        self,
        structure: Structure,
        formula: Formula,
        budget: Budget | CancelToken | None = None,
    ) -> Answers:
        """ans(φ, A) through the first rung that stays within budget.

        Raises the last rung's :class:`BudgetExceededError` when every
        applicable rung is over budget — the typed "I could not afford
        this query" outcome, never a hang and never a wrong answer.
        """
        token = as_token(budget)
        last_error: BudgetExceededError | None = None
        with _span(f"resilience.{self.name}") as chain_span:
            for index, rung in enumerate(self.rungs):
                ok, reason = rung.is_applicable(structure, formula)
                if not ok:
                    continue
                breaker = self.breakers[rung.name]
                if not breaker.allow():
                    if _telemetry_enabled():
                        _counter(f"resilience.{self.name}.circuit_skips").inc()
                    continue
                degradable = index < len(self.rungs) - 1
                try:
                    if degradable:
                        with arm_faults():
                            result = rung.answers(structure, formula, token)
                    else:
                        result = rung.answers(structure, formula, token)
                except BudgetExceededError as error:
                    breaker.record_failure()
                    last_error = error
                    self.degradations.append(
                        Degradation(rung.name, str(error), current_trace_id())
                    )
                    if _telemetry_enabled():
                        _counter(f"resilience.{self.name}.degradations").inc()
                        _counter("resilience.degradations", rung=rung.name).inc()
                        _counter(f"resilience.rung.{rung.name}.failures").inc()
                    continue
                breaker.record_success()
                chain_span.set("rung", rung.name)
                if _telemetry_enabled():
                    _counter(f"resilience.rung.{rung.name}.answers").inc()
                    if index > 0:
                        _counter(f"resilience.{self.name}.degraded_answers").inc()
                return result
        if last_error is not None:
            raise last_error
        raise BudgetExceededError(
            f"no applicable rung in fallback chain {self.name!r}"
        )


# -- the default ladder: engine → census → naive ------------------------------


def default_chain(
    engine: Any | None = None,
    degree_bound: int = 3,
    census_max_rank: int = 4,
    failure_threshold: int = 3,
    cooldown_s: float = 30.0,
) -> FallbackChain:
    """The Theorem 3.11 degradation ladder.

    1. ``engine`` — the planned/cached engine (fast path included);
    2. ``bounded-degree`` — the linear-time census evaluator, for
       constant-free sentences within the degree and rank caps, its
       table misses answered by the budget-aware naive evaluator;
    3. ``naive`` — the recursive reference evaluator, fault-free and
       budget-aware, the tier that always has an answer if the budget
       lets it finish.
    """
    # Imported here: repro.engine imports repro.resilience.budget, so the
    # chain module must not import the engine at module load time.
    from repro.engine.engine import Engine
    from repro.eval.evaluator import answers as naive_answers
    from repro.eval.evaluator import evaluate as naive_evaluate
    from repro.locality.bounded_degree import BoundedDegreeEvaluator
    from repro.logic.analysis import constants_of, free_variables, quantifier_rank

    engine = engine if engine is not None else Engine()
    evaluators: dict[Formula, BoundedDegreeEvaluator] = {}

    def engine_rung(
        structure: Structure, formula: Formula, token: CancelToken | None
    ) -> Answers:
        if free_variables(formula):
            return engine.answers(structure, formula, budget=token)
        value = engine.evaluate(structure, formula, budget=token)
        return frozenset({()}) if value else frozenset()

    def census_applicable(structure: Structure, formula: Formula) -> tuple[bool, str]:
        if free_variables(formula):
            return False, "not a sentence"
        if structure.constants or constants_of(formula):
            return False, "constants present"
        rank = quantifier_rank(formula)
        if rank > census_max_rank:
            return False, f"quantifier rank {rank} > census cap {census_max_rank}"
        degree = structure.max_degree()
        if degree > degree_bound:
            return False, f"Gaifman degree {degree} > bound {degree_bound}"
        return True, ""

    def census_fallback(
        structure: Structure, sentence: Formula, cancel_token: CancelToken | None = None
    ) -> bool:
        return naive_evaluate(structure, sentence, cancel_token=cancel_token)

    def census_rung(
        structure: Structure, formula: Formula, token: CancelToken | None
    ) -> Answers:
        evaluator = evaluators.get(formula)
        if evaluator is None:
            evaluator = BoundedDegreeEvaluator(
                formula, degree_bound=degree_bound, fallback=census_fallback
            )
            evaluators[formula] = evaluator
        value = evaluator.evaluate(structure, cancel_token=token)
        return frozenset({()}) if value else frozenset()

    def naive_rung(
        structure: Structure, formula: Formula, token: CancelToken | None
    ) -> Answers:
        return naive_answers(structure, formula, cancel_token=token)

    return FallbackChain(
        [
            Rung("engine", engine_rung),
            Rung("bounded-degree", census_rung, census_applicable),
            Rung("naive", naive_rung),
        ],
        failure_threshold=failure_threshold,
        cooldown_s=cooldown_s,
        name="default",
    )


def resilient_answers(
    structure: Structure,
    formula: Formula,
    budget: Budget | CancelToken | None = None,
    chain: FallbackChain | None = None,
) -> Answers:
    """One-shot ans(φ, A) through a (given or fresh) default chain."""
    chain = chain if chain is not None else default_chain()
    return chain.answers(structure, formula, budget=budget)
