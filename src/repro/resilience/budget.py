"""Budgets and cooperative cancellation (S17).

Naive FO evaluation is PSPACE-hard in combined complexity (§2 of the
paper), so a deployment that serves arbitrary queries needs *admission
control*: every evaluation path must be stoppable — by a wall-clock
deadline, by a cap on materialized rows, by a cap on solver nodes, or by
an explicit external cancellation — and must stop by raising the typed
:class:`~repro.errors.BudgetExceededError`, never by hanging and never
by returning a wrong answer.

Two objects implement this:

* :class:`Budget` — an immutable *specification*: deadline in
  milliseconds, row budget, solver-node budget. Budgets are reusable;
  each :meth:`Budget.start` stamps a fresh live token.
* :class:`CancelToken` — one *live* admission: the absolute monotonic
  deadline plus thread-safe consumption counters. The token is threaded
  through the hot loops of the executor (per operator batch), the
  locality census (per ball), the EF solver (per expanded node), the
  naive evaluator (per quantifier binding) and the parallel pool (per
  chunk). Checks are cooperative: loops call :meth:`CancelToken.tick`
  (amortized — a real clock read every ``stride`` calls) or
  :meth:`CancelToken.check` (always reads the clock).

Tokens do not cross process boundaries (they hold locks); the parallel
layer ships :meth:`CancelToken.to_payload` — the *remaining* allowance —
and workers rebuild a local token with :meth:`CancelToken.from_payload`.
The parent still enforces the deadline on the futures it waits for, so a
straggling worker bounds cleanup time, not answer time.

``REPRO_DEFAULT_DEADLINE_MS`` applies a default deadline to every entry
point that accepts a budget but was given none — the CI resilience job
runs the whole suite under it to prove the checking machinery is
everywhere and changes no answers.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

from repro.errors import BudgetExceededError, FMTError

__all__ = [
    "Budget",
    "CancelToken",
    "as_token",
    "default_budget_from_env",
]

#: How many :meth:`CancelToken.tick` calls elapse between clock reads.
DEFAULT_STRIDE = 64


@dataclass(frozen=True)
class Budget:
    """A resource envelope for one evaluation: the *specification* side.

    ``deadline_ms``
        Wall-clock allowance for the whole call, in milliseconds.
    ``max_rows``
        Cap on rows materialized by plan execution (admission control
        for combined-complexity blowups: a join that explodes trips the
        budget long before it exhausts memory).
    ``max_solver_nodes``
        Cap on game-solver position expansions (EF games are the
        exponential corner of the toolbox).
    ``stride``
        Loop iterations between clock reads in :meth:`CancelToken.tick`.

    A ``Budget`` is immutable and reusable: every :meth:`start` returns
    a fresh :class:`CancelToken` whose deadline is stamped *now*.
    """

    deadline_ms: float | None = None
    max_rows: int | None = None
    max_solver_nodes: int | None = None
    stride: int = DEFAULT_STRIDE

    def __post_init__(self) -> None:
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be positive, got {self.deadline_ms}")
        if self.max_rows is not None and self.max_rows < 1:
            raise ValueError(f"max_rows must be positive, got {self.max_rows}")
        if self.max_solver_nodes is not None and self.max_solver_nodes < 1:
            raise ValueError(
                f"max_solver_nodes must be positive, got {self.max_solver_nodes}"
            )
        if self.stride < 1:
            raise ValueError(f"stride must be positive, got {self.stride}")

    def start(self) -> CancelToken:
        """Stamp a live token: the deadline clock starts now."""
        deadline = None
        if self.deadline_ms is not None:
            deadline = time.monotonic() + self.deadline_ms / 1000.0
        return CancelToken(
            deadline=deadline,
            max_rows=self.max_rows,
            max_solver_nodes=self.max_solver_nodes,
            stride=self.stride,
        )


class CancelToken:
    """One live admission: absolute deadline + thread-safe counters.

    A token is shared by every thread and operator cooperating on one
    evaluation. Reads (deadline comparison, cancelled flag) are
    lock-free; counter consumption takes the token's lock so concurrent
    executor threads cannot double-spend the row budget.
    """

    __slots__ = (
        "deadline",
        "max_rows",
        "max_solver_nodes",
        "stride",
        "rows",
        "nodes",
        "_lock",
        "_cancelled",
        "_reason",
        "_ticks",
    )

    def __init__(
        self,
        deadline: float | None = None,
        max_rows: int | None = None,
        max_solver_nodes: int | None = None,
        stride: int = DEFAULT_STRIDE,
    ) -> None:
        self.deadline = deadline
        self.max_rows = max_rows
        self.max_solver_nodes = max_solver_nodes
        self.stride = max(stride, 1)
        self.rows = 0
        self.nodes = 0
        self._lock = threading.Lock()
        self._cancelled = False
        self._reason = ""
        self._ticks = 0

    # -- external cancellation ----------------------------------------------

    def cancel(self, reason: str = "cancelled") -> None:
        """Flip the token; every cooperating loop raises at its next check."""
        with self._lock:
            self._cancelled = True
            self._reason = reason

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    # -- checks --------------------------------------------------------------

    def check(self, where: str = "") -> None:
        """Raise :class:`BudgetExceededError` if cancelled or past deadline."""
        if self._cancelled:
            site = f" at {where}" if where else ""
            raise BudgetExceededError(f"{self._reason}{site}")
        if self.deadline is not None:
            now = time.monotonic()
            if now > self.deadline:
                site = f" at {where}" if where else ""
                over_ms = int((now - self.deadline) * 1000.0)
                raise BudgetExceededError(
                    f"deadline exceeded{site} ({over_ms}ms past the deadline)"
                )

    def tick(self, where: str = "") -> None:
        """Amortized :meth:`check`: reads the clock every ``stride`` calls.

        The counter is deliberately unlocked — under CPython the ``+=``
        is safe enough, and a lost tick only shifts a clock read by one
        stride, it never skips the check forever.
        """
        self._ticks += 1
        if self._cancelled or self._ticks % self.stride == 0:
            self.check(where)

    def remaining_seconds(self) -> float | None:
        """Seconds until the deadline (``None`` if unbounded, ≥ 0.0)."""
        if self.deadline is None:
            return None
        return max(self.deadline - time.monotonic(), 0.0)

    # -- consumption ---------------------------------------------------------

    def consume_rows(self, amount: int, where: str = "") -> None:
        """Spend ``amount`` rows; raise once the row budget is exhausted.

        Also performs a deadline check — operators call this once per
        materialized batch, which is exactly the per-operator-batch
        cadence the deadline needs.
        """
        with self._lock:
            self.rows += amount
            spent = self.rows
        if self.max_rows is not None and spent > self.max_rows:
            site = f" at {where}" if where else ""
            raise BudgetExceededError(
                f"row budget exceeded{site}", spent=spent, budget=self.max_rows
            )
        self.check(where)

    def consume_nodes(self, amount: int = 1, where: str = "") -> None:
        """Spend solver nodes; deadline-checked every ``stride`` nodes."""
        with self._lock:
            self.nodes += amount
            spent = self.nodes
        if self.max_solver_nodes is not None and spent > self.max_solver_nodes:
            site = f" at {where}" if where else ""
            raise BudgetExceededError(
                f"solver-node budget exceeded{site}",
                spent=spent,
                budget=self.max_solver_nodes,
            )
        self.tick(where)

    # -- crossing process boundaries ----------------------------------------

    def to_payload(self) -> tuple:
        """The *remaining* allowance, as a picklable tuple for workers."""
        remaining = self.remaining_seconds()
        rows_left = None if self.max_rows is None else max(self.max_rows - self.rows, 0)
        nodes_left = (
            None
            if self.max_solver_nodes is None
            else max(self.max_solver_nodes - self.nodes, 0)
        )
        return (remaining, rows_left, nodes_left, self.stride)

    @classmethod
    def from_payload(cls, payload: tuple) -> CancelToken:
        """Rebuild a worker-local token from :meth:`to_payload` output.

        The deadline restarts from the worker's *own* clock, so a chunk
        that waited in the queue gets the allowance that remained at
        submit time — the parent's collection loop still enforces the
        true deadline.
        """
        remaining, rows_left, nodes_left, stride = payload
        deadline = None if remaining is None else time.monotonic() + remaining
        return cls(
            deadline=deadline,
            max_rows=rows_left,
            max_solver_nodes=nodes_left,
            stride=stride,
        )

    def __repr__(self) -> str:
        remaining = self.remaining_seconds()
        clock = "unbounded" if remaining is None else f"{remaining * 1000.0:.0f}ms left"
        state = "cancelled" if self._cancelled else clock
        return (
            f"CancelToken({state}, rows={self.rows}/{self.max_rows}, "
            f"nodes={self.nodes}/{self.max_solver_nodes})"
        )


def default_budget_from_env() -> Budget | None:
    """The ``REPRO_DEFAULT_DEADLINE_MS`` budget, or ``None`` when unset."""
    raw = os.environ.get("REPRO_DEFAULT_DEADLINE_MS", "").strip()
    if not raw or raw == "0":
        return None
    try:
        deadline_ms = float(raw)
    except ValueError:
        raise FMTError(
            f"REPRO_DEFAULT_DEADLINE_MS must be a number, got {raw!r}"
        ) from None
    return Budget(deadline_ms=deadline_ms)


def as_token(budget: Budget | CancelToken | None) -> CancelToken | None:
    """Normalize a ``budget=`` argument into a live token (or ``None``).

    Accepts a :class:`Budget` (started now), an already-live
    :class:`CancelToken` (shared cancellation across calls), or ``None``
    — which falls back to ``REPRO_DEFAULT_DEADLINE_MS`` when set.
    """
    if budget is None:
        env_budget = default_budget_from_env()
        return None if env_budget is None else env_budget.start()
    if isinstance(budget, CancelToken):
        return budget
    if isinstance(budget, Budget):
        return budget.start()
    raise TypeError(f"budget must be a Budget or CancelToken, got {type(budget).__name__}")
