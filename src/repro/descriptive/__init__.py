"""Complexity substrate (S8): QBF, automata, MSO on words, ∃SO.

The executable sides of the complexity results the paper cites:
PSPACE-hardness of combined complexity (QBF reduction), the MSO half of
the Stockmeyer/Vardi theorem (via Büchi–Elgot–Trakhtenbrot), and Fagin's
∃SO = NP.
"""

from repro.descriptive.automata import DFA, NFA
from repro.descriptive.eso import ESOSentence, is_three_colorable, three_colorability_eso
from repro.descriptive.mso import (
    InSet,
    Less,
    Letter,
    MAnd,
    MExists1,
    MExists2,
    MForall1,
    MForall2,
    MNot,
    MOr,
    MSOFormula,
    PosEq,
    PosVar,
    SetVar,
    Succ,
    even_length_sentence,
    first_position,
    last_position,
    length_divisible_sentence,
    mso_equivalent,
    mso_evaluate,
    mso_satisfiable,
    mso_to_nfa,
    mso_witness,
)
from repro.descriptive.qbf import (
    BOOLEAN_SIGNATURE,
    PVar,
    QAnd,
    QBF,
    QExists,
    QForall,
    QNot,
    QOr,
    boolean_structure,
    qbf_to_fo,
    random_qbf,
    solve_qbf,
)

__all__ = [
    # automata
    "NFA", "DFA",
    # qbf
    "QBF", "PVar", "QNot", "QAnd", "QOr", "QExists", "QForall",
    "solve_qbf", "qbf_to_fo", "boolean_structure", "BOOLEAN_SIGNATURE",
    "random_qbf",
    # mso
    "MSOFormula", "PosVar", "SetVar", "Less", "Succ", "PosEq", "Letter",
    "InSet", "MNot", "MAnd", "MOr", "MExists1", "MForall1", "MExists2",
    "MForall2", "first_position", "last_position", "mso_evaluate",
    "mso_to_nfa", "mso_satisfiable", "mso_witness", "mso_equivalent",
    "even_length_sentence", "length_divisible_sentence",
    # eso
    "ESOSentence", "three_colorability_eso", "is_three_colorable",
]
