"""Finite automata over arbitrary hashable alphabets.

The substrate for the MSO-on-words compiler
(:mod:`repro.descriptive.mso`): the Büchi–Elgot–Trakhtenbrot theorem
turns MSO sentences into automata through products (∧), complementation
(¬, via the subset construction), and projection (∃). The toolkit here
implements exactly those operations, plus minimization, emptiness, and
equivalence testing.
"""

from __future__ import annotations

import itertools
from collections import deque
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import AutomatonError

__all__ = ["NFA", "DFA"]

State = object
Symbol = object


@dataclass(frozen=True)
class NFA:
    """A nondeterministic finite automaton (no ε-transitions).

    ``transitions`` maps (state, symbol) to a frozenset of successor
    states. Missing entries mean no move.
    """

    states: frozenset
    alphabet: frozenset
    transitions: dict
    initial: frozenset
    accepting: frozenset

    def __post_init__(self) -> None:
        for (state, symbol), targets in self.transitions.items():
            if state not in self.states:
                raise AutomatonError(f"transition from unknown state {state!r}")
            if symbol not in self.alphabet:
                raise AutomatonError(f"transition on unknown symbol {symbol!r}")
            for target in targets:
                if target not in self.states:
                    raise AutomatonError(f"transition to unknown state {target!r}")
        if not self.initial <= self.states:
            raise AutomatonError("initial states must be states")
        if not self.accepting <= self.states:
            raise AutomatonError("accepting states must be states")

    # -- construction ----------------------------------------------------------

    @staticmethod
    def build(
        states: Iterable,
        alphabet: Iterable,
        transitions: dict,
        initial: Iterable,
        accepting: Iterable,
    ) -> "NFA":
        """Convenience constructor normalizing containers to frozensets."""
        return NFA(
            states=frozenset(states),
            alphabet=frozenset(alphabet),
            transitions={key: frozenset(value) for key, value in transitions.items()},
            initial=frozenset(initial),
            accepting=frozenset(accepting),
        )

    # -- language queries ----------------------------------------------------

    def step(self, current: frozenset, symbol: Symbol) -> frozenset:
        if symbol not in self.alphabet:
            raise AutomatonError(f"symbol {symbol!r} is not in the alphabet")
        result: set = set()
        for state in current:
            result |= self.transitions.get((state, symbol), frozenset())
        return frozenset(result)

    def accepts(self, word: Sequence) -> bool:
        """Whether the automaton accepts the word."""
        current = self.initial
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return False
        return bool(current & self.accepting)

    def is_empty(self) -> bool:
        """Whether the language is empty (BFS reachability)."""
        seen = set(self.initial)
        queue = deque(self.initial)
        while queue:
            state = queue.popleft()
            if state in self.accepting:
                return False
            for symbol in self.alphabet:
                for target in self.transitions.get((state, symbol), frozenset()):
                    if target not in seen:
                        seen.add(target)
                        queue.append(target)
        return True

    def shortest_accepted(self) -> tuple | None:
        """A shortest accepted word, or None if the language is empty."""
        queue: deque[tuple[frozenset, tuple]] = deque([(self.initial, ())])
        seen = {self.initial}
        while queue:
            current, word = queue.popleft()
            if current & self.accepting:
                return word
            for symbol in sorted(self.alphabet, key=repr):
                target = self.step(current, symbol)
                if target and target not in seen:
                    seen.add(target)
                    queue.append((target, word + (symbol,)))
        return None

    # -- the Boolean/projection operations of the MSO compiler -----------------

    def determinize(self) -> "DFA":
        """Subset construction. States of the DFA are frozensets of NFA states."""
        initial = self.initial
        states = {initial}
        transitions: dict = {}
        queue = deque([initial])
        while queue:
            current = queue.popleft()
            for symbol in self.alphabet:
                target = self.step(current, symbol)
                transitions[(current, symbol)] = target
                if target not in states:
                    states.add(target)
                    queue.append(target)
        accepting = frozenset(state for state in states if state & self.accepting)
        return DFA(
            states=frozenset(states),
            alphabet=self.alphabet,
            transitions=transitions,
            initial=initial,
            accepting=accepting,
        )

    def complement(self) -> "NFA":
        """The complement language, via determinization."""
        return self.determinize().complement().to_nfa()

    def union(self, other: "NFA") -> "NFA":
        """L(self) ∪ L(other) (disjoint-union of the automata)."""
        self._require_alphabet(other)
        left = self._tag(0)
        right = other._tag(1)
        return NFA(
            states=left.states | right.states,
            alphabet=self.alphabet,
            transitions={**left.transitions, **right.transitions},
            initial=left.initial | right.initial,
            accepting=left.accepting | right.accepting,
        )

    def intersection(self, other: "NFA") -> "NFA":
        """L(self) ∩ L(other) (product construction)."""
        self._require_alphabet(other)
        states = frozenset(itertools.product(self.states, other.states))
        transitions: dict = {}
        for (first, second) in states:
            for symbol in self.alphabet:
                targets_first = self.transitions.get((first, symbol), frozenset())
                targets_second = other.transitions.get((second, symbol), frozenset())
                if targets_first and targets_second:
                    transitions[((first, second), symbol)] = frozenset(
                        itertools.product(targets_first, targets_second)
                    )
        return NFA(
            states=states,
            alphabet=self.alphabet,
            transitions=transitions,
            initial=frozenset(itertools.product(self.initial, other.initial)),
            accepting=frozenset(itertools.product(self.accepting, other.accepting)),
        )

    def project(self, mapping) -> "NFA":
        """Relabel symbols through ``mapping`` (a callable); merges moves.

        This is the ∃-step of the MSO compiler: dropping one track of a
        product alphabet maps each symbol to its projection.
        """
        new_alphabet = frozenset(mapping(symbol) for symbol in self.alphabet)
        transitions: dict = {}
        for (state, symbol), targets in self.transitions.items():
            key = (state, mapping(symbol))
            transitions[key] = transitions.get(key, frozenset()) | targets
        return NFA(
            states=self.states,
            alphabet=new_alphabet,
            transitions=transitions,
            initial=self.initial,
            accepting=self.accepting,
        )

    def equivalent(self, other: "NFA") -> bool:
        """Language equality, via minimized DFAs."""
        self._require_alphabet(other)
        return self.determinize().minimize().isomorphic_to(other.determinize().minimize())

    def _require_alphabet(self, other: "NFA") -> None:
        if self.alphabet != other.alphabet:
            raise AutomatonError("operation requires identical alphabets")

    def _tag(self, tag: int) -> "NFA":
        relabel = {state: (tag, state) for state in self.states}
        return NFA(
            states=frozenset(relabel.values()),
            alphabet=self.alphabet,
            transitions={
                (relabel[state], symbol): frozenset(relabel[target] for target in targets)
                for (state, symbol), targets in self.transitions.items()
            },
            initial=frozenset(relabel[state] for state in self.initial),
            accepting=frozenset(relabel[state] for state in self.accepting),
        )

    def __repr__(self) -> str:
        return f"NFA({len(self.states)} states, alphabet {sorted(map(repr, self.alphabet))})"


@dataclass(frozen=True)
class DFA:
    """A complete deterministic finite automaton."""

    states: frozenset
    alphabet: frozenset
    transitions: dict
    initial: object
    accepting: frozenset

    def __post_init__(self) -> None:
        if self.initial not in self.states:
            raise AutomatonError("initial state must be a state")
        for state in self.states:
            for symbol in self.alphabet:
                if (state, symbol) not in self.transitions:
                    raise AutomatonError(
                        f"DFA is incomplete: no transition from {state!r} on {symbol!r}"
                    )

    def accepts(self, word: Sequence) -> bool:
        current = self.initial
        for symbol in word:
            if symbol not in self.alphabet:
                raise AutomatonError(f"symbol {symbol!r} is not in the alphabet")
            current = self.transitions[(current, symbol)]
        return current in self.accepting

    def complement(self) -> "DFA":
        return DFA(
            states=self.states,
            alphabet=self.alphabet,
            transitions=self.transitions,
            initial=self.initial,
            accepting=self.states - self.accepting,
        )

    def to_nfa(self) -> NFA:
        return NFA(
            states=self.states,
            alphabet=self.alphabet,
            transitions={
                key: frozenset([target]) for key, target in self.transitions.items()
            },
            initial=frozenset([self.initial]),
            accepting=self.accepting,
        )

    def reachable(self) -> "DFA":
        """Restrict to states reachable from the initial state."""
        seen = {self.initial}
        queue = deque([self.initial])
        while queue:
            state = queue.popleft()
            for symbol in self.alphabet:
                target = self.transitions[(state, symbol)]
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        return DFA(
            states=frozenset(seen),
            alphabet=self.alphabet,
            transitions={
                (state, symbol): target
                for (state, symbol), target in self.transitions.items()
                if state in seen
            },
            initial=self.initial,
            accepting=self.accepting & frozenset(seen),
        )

    def minimize(self) -> "DFA":
        """Moore's partition-refinement minimization (on reachable states)."""
        dfa = self.reachable()
        partition: dict = {}
        for state in dfa.states:
            partition[state] = 1 if state in dfa.accepting else 0
        while True:
            signatures: dict = {}
            for state in dfa.states:
                signature = (
                    partition[state],
                    tuple(
                        partition[dfa.transitions[(state, symbol)]]
                        for symbol in sorted(dfa.alphabet, key=repr)
                    ),
                )
                signatures[state] = signature
            ordering = {
                signature: index
                for index, signature in enumerate(sorted(set(signatures.values()), key=repr))
            }
            new_partition = {state: ordering[signatures[state]] for state in dfa.states}
            if len(set(new_partition.values())) == len(set(partition.values())):
                partition = new_partition
                break
            partition = new_partition
        blocks = sorted(set(partition.values()))
        transitions = {}
        for state in dfa.states:
            for symbol in dfa.alphabet:
                transitions[(partition[state], symbol)] = partition[
                    dfa.transitions[(state, symbol)]
                ]
        return DFA(
            states=frozenset(blocks),
            alphabet=dfa.alphabet,
            transitions=transitions,
            initial=partition[dfa.initial],
            accepting=frozenset(partition[state] for state in dfa.accepting),
        )

    def isomorphic_to(self, other: "DFA") -> bool:
        """Whether two (minimal) DFAs are isomorphic — i.e. same language."""
        if self.alphabet != other.alphabet:
            return False
        if len(self.states) != len(other.states):
            return False
        mapping = {self.initial: other.initial}
        queue = deque([self.initial])
        while queue:
            state = queue.popleft()
            for symbol in self.alphabet:
                mine = self.transitions[(state, symbol)]
                theirs = other.transitions[(mapping[state], symbol)]
                if mine in mapping:
                    if mapping[mine] != theirs:
                        return False
                else:
                    mapping[mine] = theirs
                    queue.append(mine)
        if len(set(mapping.values())) != len(mapping):
            return False
        return all(
            (state in self.accepting) == (mapping[state] in other.accepting)
            for state in mapping
        )

    def __repr__(self) -> str:
        return f"DFA({len(self.states)} states, alphabet {sorted(map(repr, self.alphabet))})"
