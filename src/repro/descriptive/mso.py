"""Monadic second-order logic on words, compiled to automata.

The Büchi–Elgot–Trakhtenbrot theorem: a language of finite words is
regular iff it is MSO-definable. This module implements both directions
of the *effective* version used throughout database theory (and cited in
the paper via the Stockmeyer/Vardi MSO model-checking result):

* a naive MSO evaluator over word structures (exponential — it
  enumerates subsets for set quantifiers), and
* a compiler from MSO sentences to :class:`~repro.descriptive.automata.NFA`
  (linear-time evaluation per word once compiled), built from products,
  complements, and projections.

The two must agree on every word — a test-suite invariant mirroring the
evaluator triangle of the FO engines. The compiler also makes
*EVEN length* executable as an MSO sentence, the canonical query that FO
cannot express (E4) but MSO can (E14).

Word model convention: a word w = a₀...a_{n-1} is the structure with
universe {0..n-1}, order <, successor, and letter predicates Q_a.
First-order variables range over positions; set variables over sets of
positions. The compiled automata run over the product alphabet
Σ × P(tracks), one Boolean track per free variable.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import AutomatonError, FormulaError
from repro.descriptive.automata import NFA

__all__ = [
    "MSOFormula",
    "PosVar",
    "SetVar",
    "Less",
    "Succ",
    "PosEq",
    "Letter",
    "InSet",
    "MNot",
    "MAnd",
    "MOr",
    "MExists1",
    "MForall1",
    "MExists2",
    "MForall2",
    "first_position",
    "last_position",
    "mso_evaluate",
    "mso_to_nfa",
    "mso_satisfiable",
    "mso_witness",
    "mso_equivalent",
    "even_length_sentence",
    "length_divisible_sentence",
]


@dataclass(frozen=True)
class PosVar:
    """A first-order (position) variable."""

    name: str


@dataclass(frozen=True)
class SetVar:
    """A monadic second-order (set-of-positions) variable."""

    name: str


class MSOFormula:
    """Base class of MSO formula nodes."""

    __slots__ = ()

    def __and__(self, other: "MSOFormula") -> "MAnd":
        return MAnd(self, other)

    def __or__(self, other: "MSOFormula") -> "MOr":
        return MOr(self, other)

    def __invert__(self) -> "MNot":
        return MNot(self)


@dataclass(frozen=True)
class Less(MSOFormula):
    left: PosVar
    right: PosVar


@dataclass(frozen=True)
class Succ(MSOFormula):
    left: PosVar
    right: PosVar


@dataclass(frozen=True)
class PosEq(MSOFormula):
    left: PosVar
    right: PosVar


@dataclass(frozen=True)
class Letter(MSOFormula):
    """Q_a(x): position x carries letter a."""

    symbol: object
    var: PosVar


@dataclass(frozen=True)
class InSet(MSOFormula):
    var: PosVar
    set_var: SetVar


@dataclass(frozen=True)
class MNot(MSOFormula):
    body: MSOFormula


@dataclass(frozen=True)
class MAnd(MSOFormula):
    left: MSOFormula
    right: MSOFormula


@dataclass(frozen=True)
class MOr(MSOFormula):
    left: MSOFormula
    right: MSOFormula


@dataclass(frozen=True)
class MExists1(MSOFormula):
    var: PosVar
    body: MSOFormula


@dataclass(frozen=True)
class MForall1(MSOFormula):
    var: PosVar
    body: MSOFormula


@dataclass(frozen=True)
class MExists2(MSOFormula):
    var: SetVar
    body: MSOFormula


@dataclass(frozen=True)
class MForall2(MSOFormula):
    var: SetVar
    body: MSOFormula


def first_position(x: PosVar) -> MSOFormula:
    """x is the first position: ¬∃y Succ(y, x)."""
    y = PosVar(f"_before_{x.name}")
    return MNot(MExists1(y, Succ(y, x)))


def last_position(x: PosVar) -> MSOFormula:
    """x is the last position: ¬∃y Succ(x, y)."""
    y = PosVar(f"_after_{x.name}")
    return MNot(MExists1(y, Succ(x, y)))


def free_tracks(formula: MSOFormula) -> tuple[frozenset[str], frozenset[str]]:
    """(free position variables, free set variables), by name."""
    if isinstance(formula, (Less, Succ, PosEq)):
        return frozenset({formula.left.name, formula.right.name}), frozenset()
    if isinstance(formula, Letter):
        return frozenset({formula.var.name}), frozenset()
    if isinstance(formula, InSet):
        return frozenset({formula.var.name}), frozenset({formula.set_var.name})
    if isinstance(formula, MNot):
        return free_tracks(formula.body)
    if isinstance(formula, (MAnd, MOr)):
        left1, left2 = free_tracks(formula.left)
        right1, right2 = free_tracks(formula.right)
        return left1 | right1, left2 | right2
    if isinstance(formula, (MExists1, MForall1)):
        pos, sets = free_tracks(formula.body)
        return pos - {formula.var.name}, sets
    if isinstance(formula, (MExists2, MForall2)):
        pos, sets = free_tracks(formula.body)
        return pos, sets - {formula.var.name}
    raise FormulaError(f"unknown MSO node {formula!r}")


# ---------------------------------------------------------------------------
# Naive evaluation over word models
# ---------------------------------------------------------------------------


def mso_evaluate(
    word: Sequence,
    formula: MSOFormula,
    position_env: dict[str, int] | None = None,
    set_env: dict[str, frozenset[int]] | None = None,
) -> bool:
    """Evaluate MSO directly on a word (exponential in set quantifiers).

    The ground-truth semantics the automaton compiler is tested against.
    """
    positions = range(len(word))
    env1 = dict(position_env or {})
    env2 = dict(set_env or {})

    def run(node: MSOFormula) -> bool:
        if isinstance(node, Less):
            return env1[node.left.name] < env1[node.right.name]
        if isinstance(node, Succ):
            return env1[node.left.name] + 1 == env1[node.right.name]
        if isinstance(node, PosEq):
            return env1[node.left.name] == env1[node.right.name]
        if isinstance(node, Letter):
            return word[env1[node.var.name]] == node.symbol
        if isinstance(node, InSet):
            return env1[node.var.name] in env2[node.set_var.name]
        if isinstance(node, MNot):
            return not run(node.body)
        if isinstance(node, MAnd):
            return run(node.left) and run(node.right)
        if isinstance(node, MOr):
            return run(node.left) or run(node.right)
        if isinstance(node, (MExists1, MForall1)):
            want = isinstance(node, MExists1)
            shadow, had = env1.get(node.var.name), node.var.name in env1
            result = not want
            for value in positions:
                env1[node.var.name] = value
                if run(node.body) == want:
                    result = want
                    break
            if had:
                env1[node.var.name] = shadow  # type: ignore[assignment]
            else:
                env1.pop(node.var.name, None)
            return result
        if isinstance(node, (MExists2, MForall2)):
            want = isinstance(node, MExists2)
            shadow, had = env2.get(node.var.name), node.var.name in env2
            result = not want
            for size in range(len(word) + 1):
                stop = False
                for subset in itertools.combinations(positions, size):
                    env2[node.var.name] = frozenset(subset)
                    if run(node.body) == want:
                        result = want
                        stop = True
                        break
                if stop:
                    break
            if had:
                env2[node.var.name] = shadow  # type: ignore[assignment]
            else:
                env2.pop(node.var.name, None)
            return result
        raise FormulaError(f"unknown MSO node {node!r}")

    return run(formula)


# ---------------------------------------------------------------------------
# Compilation to automata
# ---------------------------------------------------------------------------
#
# Automaton symbols are pairs (letter, frozenset of active track names).


def _symbols(alphabet: frozenset, tracks: frozenset[str]) -> list[tuple]:
    track_list = sorted(tracks)
    result = []
    for letter in sorted(alphabet, key=repr):
        for size in range(len(track_list) + 1):
            for active in itertools.combinations(track_list, size):
                result.append((letter, frozenset(active)))
    return result


def _cylindrify(nfa: NFA, alphabet: frozenset, tracks: frozenset[str]) -> NFA:
    """Expand an automaton over fewer tracks to the full track set.

    Every transition on (letter, active) becomes transitions on every
    (letter, active ∪ extra) for extra ⊆ new tracks.
    """
    current_tracks: set[str] = set()
    for letter, active in nfa.alphabet:
        current_tracks |= active
    new = tracks - frozenset(current_tracks)
    if not new and frozenset(_symbols(alphabet, tracks)) == nfa.alphabet:
        return nfa
    extras = [
        frozenset(active)
        for size in range(len(new) + 1)
        for active in itertools.combinations(sorted(new), size)
    ]
    transitions: dict = {}
    for (state, (letter, active)), targets in nfa.transitions.items():
        for extra in extras:
            key = (state, (letter, active | extra))
            transitions[key] = transitions.get(key, frozenset()) | targets
    return NFA(
        states=nfa.states,
        alphabet=frozenset(_symbols(alphabet, tracks)),
        transitions=transitions,
        initial=nfa.initial,
        accepting=nfa.accepting,
    )


def _marked(symbol: tuple, track: str) -> bool:
    return track in symbol[1]


def _two_state_scan(
    alphabet: frozenset,
    tracks: frozenset[str],
    track: str,
    good,
) -> NFA:
    """Automaton: exactly one position is marked on ``track`` and
    satisfies ``good(symbol)``; other positions must be unmarked."""
    symbols = _symbols(alphabet, tracks)
    transitions: dict = {}
    for symbol in symbols:
        if not _marked(symbol, track):
            transitions[("wait", symbol)] = frozenset(["wait"])
            transitions[("done", symbol)] = frozenset(["done"])
        elif good(symbol):
            transitions[("wait", symbol)] = frozenset(["done"])
    return NFA(
        states=frozenset(["wait", "done"]),
        alphabet=frozenset(symbols),
        transitions=transitions,
        initial=frozenset(["wait"]),
        accepting=frozenset(["done"]),
    )


def _singleton(alphabet: frozenset, tracks: frozenset[str], track: str) -> NFA:
    """Exactly one mark on ``track`` (the validity constraint for FO vars)."""
    return _two_state_scan(alphabet, tracks, track, lambda symbol: True)


def _atom_automaton(formula: MSOFormula, alphabet: frozenset, tracks: frozenset[str]) -> NFA:
    symbols = _symbols(alphabet, tracks)
    if isinstance(formula, Letter):
        return _two_state_scan(
            alphabet, tracks, formula.var.name, lambda symbol: symbol[0] == formula.symbol
        )
    if isinstance(formula, InSet):
        return _two_state_scan(
            alphabet,
            tracks,
            formula.var.name,
            lambda symbol: _marked(symbol, formula.set_var.name),
        )
    if isinstance(formula, PosEq):
        x, y = formula.left.name, formula.right.name
        if x == y:
            return _singleton(alphabet, tracks, x)
        return _two_state_scan(alphabet, tracks, x, lambda symbol: _marked(symbol, y))
    if isinstance(formula, (Less, Succ)):
        x, y = formula.left.name, formula.right.name
        if x == y:
            # x < x and Succ(x, x) are unsatisfiable: empty automaton.
            return NFA(
                states=frozenset(["dead"]),
                alphabet=frozenset(symbols),
                transitions={},
                initial=frozenset(["dead"]),
                accepting=frozenset(),
            )
        transitions: dict = {}
        adjacent = isinstance(formula, Succ)
        for symbol in symbols:
            has_x, has_y = _marked(symbol, x), _marked(symbol, y)
            if not has_x and not has_y:
                transitions[("start", symbol)] = frozenset(["start"])
                transitions[("done", symbol)] = frozenset(["done"])
                if not adjacent:
                    transitions[("mid", symbol)] = frozenset(["mid"])
            if has_x and not has_y:
                transitions[("start", symbol)] = transitions.get(
                    ("start", symbol), frozenset()
                ) | frozenset(["mid"])
            if has_y and not has_x:
                transitions[("mid", symbol)] = transitions.get(
                    ("mid", symbol), frozenset()
                ) | frozenset(["done"])
            # A symbol with both marks never moves forward: x < y and
            # Succ(x, y) both require distinct positions.
        return NFA(
            states=frozenset(["start", "mid", "done"]),
            alphabet=frozenset(symbols),
            transitions=transitions,
            initial=frozenset(["start"]),
            accepting=frozenset(["done"]),
        )
    raise FormulaError(f"not an MSO atom: {formula!r}")


def mso_to_nfa(formula: MSOFormula, alphabet: Iterable) -> NFA:
    """Compile an MSO formula to an NFA (Büchi–Elgot–Trakhtenbrot).

    For a *sentence* the result runs over the plain alphabet (tracks are
    all projected away), accepting exactly the words satisfying the
    sentence — so ``mso_to_nfa(φ, Σ).accepts(w)`` agrees with
    :func:`mso_evaluate` on every word, which the test suite verifies.

    A formula with free variables yields an automaton over the product
    alphabet Σ × P(track names); to keep the semantics exact, the result
    is intersected with the singleton constraint of every free position
    variable.
    """
    alphabet = frozenset(alphabet)
    if not alphabet:
        raise AutomatonError("MSO compilation requires a non-empty alphabet")

    def reduce(nfa: NFA) -> NFA:
        # Keep intermediate automata canonical and small: determinize and
        # minimize after every construction step. Without this, nested
        # complements over multi-track alphabets blow up multiplicatively.
        return nfa.determinize().minimize().to_nfa()

    def compile_node(node: MSOFormula) -> NFA:
        return reduce(_compile_raw(node))

    def _compile_raw(node: MSOFormula) -> NFA:
        pos_free, set_free = free_tracks(node)
        tracks = pos_free | set_free
        if isinstance(node, (Less, Succ, PosEq, Letter, InSet)):
            return _atom_automaton(node, alphabet, tracks)
        if isinstance(node, MNot):
            inner = compile_node(node.body)
            result = inner.complement()
            # Complementation can accept invalid (non-singleton) track
            # words; re-impose the constraint for free position vars.
            for name in sorted(pos_free):
                result = result.intersection(_singleton(alphabet, tracks, name))
            return result
        if isinstance(node, (MAnd, MOr)):
            left = _cylindrify(compile_node(node.left), alphabet, tracks)
            right = _cylindrify(compile_node(node.right), alphabet, tracks)
            return left.intersection(right) if isinstance(node, MAnd) else left.union(right)
        if isinstance(node, MExists1):
            inner_tracks = tracks | {node.var.name}
            inner = _cylindrify(compile_node(node.body), alphabet, inner_tracks)
            constrained = inner.intersection(
                _singleton(alphabet, inner_tracks, node.var.name)
            )
            projected = constrained.project(
                lambda symbol: (symbol[0], symbol[1] - {node.var.name})
            )
            return projected
        if isinstance(node, MForall1):
            return compile_node(MNot(MExists1(node.var, MNot(node.body))))
        if isinstance(node, MExists2):
            inner_tracks = tracks | {node.var.name}
            inner = _cylindrify(compile_node(node.body), alphabet, inner_tracks)
            return inner.project(lambda symbol: (symbol[0], symbol[1] - {node.var.name}))
        if isinstance(node, MForall2):
            return compile_node(MNot(MExists2(node.var, MNot(node.body))))
        raise FormulaError(f"unknown MSO node {node!r}")

    result = compile_node(formula)
    pos_free, set_free = free_tracks(formula)
    if not pos_free and not set_free:
        # Strip the (empty) track component: symbols (a, ∅) → a.
        return result.project(lambda symbol: symbol[0])
    return result


# ---------------------------------------------------------------------------
# Library sentences
# ---------------------------------------------------------------------------


def even_length_sentence() -> MSOFormula:
    """|w| is even — MSO-definable though not FO-definable (E4 vs E14).

    ∃X: the first position is in X, X alternates along successors, and
    the last position is not in X (X = the odd-indexed positions
    1st, 3rd, ...; the empty word is accepted vacuously).
    """
    X = SetVar("X")
    x, y = PosVar("x"), PosVar("y")
    first_in = MForall1(x, MOr(MNot(first_position(x)), InSet(x, X)))
    alternates = MForall1(
        x,
        MForall1(
            y,
            MOr(
                MNot(Succ(x, y)),
                MOr(
                    MAnd(InSet(x, X), MNot(InSet(y, X))),
                    MAnd(MNot(InSet(x, X)), InSet(y, X)),
                ),
            ),
        ),
    )
    last_out = MForall1(x, MOr(MNot(last_position(x)), MNot(InSet(x, X))))
    return MExists2(X, MAnd(first_in, MAnd(alternates, last_out)))


def length_divisible_sentence(k: int) -> MSOFormula:
    """|w| ≡ 0 (mod k), via k interleaved set variables X₀..X_{k-1}.

    Position i must lie in X_{i mod k}; the last position must lie in
    X_{k-1}. The empty word is accepted vacuously.
    """
    if k < 1:
        raise FormulaError(f"k must be at least 1, got {k}")
    if k == 1:
        x = PosVar("x")
        return MNot(MExists1(x, MAnd(Less(x, x), MNot(Less(x, x)))))  # trivially true
    sets = [SetVar(f"X{index}") for index in range(k)]
    x, y = PosVar("x"), PosVar("y")

    def in_only(position: PosVar, index: int) -> MSOFormula:
        clause: MSOFormula = InSet(position, sets[index])
        for other in range(k):
            if other != index:
                clause = MAnd(clause, MNot(InSet(position, sets[other])))
        return clause

    first_rule = MForall1(x, MOr(MNot(first_position(x)), in_only(x, 0)))
    step_rules: MSOFormula | None = None
    for index in range(k):
        rule = MForall1(
            x,
            MForall1(
                y,
                MOr(
                    MNot(MAnd(Succ(x, y), InSet(x, sets[index]))),
                    in_only(y, (index + 1) % k),
                ),
            ),
        )
        step_rules = rule if step_rules is None else MAnd(step_rules, rule)
    last_rule = MForall1(x, MOr(MNot(last_position(x)), InSet(x, sets[k - 1])))
    body = MAnd(first_rule, MAnd(step_rules, last_rule))  # type: ignore[arg-type]
    for set_var in reversed(sets):
        body = MExists2(set_var, body)
    return body


# ---------------------------------------------------------------------------
# Decision procedures (the algorithmic payoff of the compilation)
# ---------------------------------------------------------------------------


def mso_satisfiable(formula: MSOFormula, alphabet: Iterable) -> bool:
    """Whether some finite word over the alphabet satisfies the sentence.

    Decidable because the compiled automaton's emptiness is decidable —
    the classical contrast with Trakhtenbrot's theorem for FO over
    arbitrary finite structures.
    """
    return not mso_to_nfa(formula, alphabet).is_empty()


def mso_witness(formula: MSOFormula, alphabet: Iterable) -> tuple | None:
    """A shortest satisfying word, or None when unsatisfiable."""
    return mso_to_nfa(formula, alphabet).shortest_accepted()


def mso_equivalent(first: MSOFormula, second: MSOFormula, alphabet: Iterable) -> bool:
    """Whether two MSO sentences define the same language of finite words."""
    return mso_to_nfa(first, alphabet).equivalent(mso_to_nfa(second, alphabet))
