"""Existential second-order logic: Fagin's theorem, demonstrated.

Fagin's theorem (the opening result of descriptive complexity, part of
the toolbox the paper surveys) says ∃SO captures NP. This module makes
the ∃SO side executable: an :class:`ESOSentence` guesses relations and
checks an FO matrix, by brute force over all interpretations — a
faithful (exponential) implementation of the "guess and verify"
semantics, with an explicit work budget.

The canonical example, 3-colorability, is provided together with an
independent backtracking solver so the two can be cross-validated.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping

from repro.errors import BudgetExceededError, FormulaError
from repro.eval.evaluator import evaluate
from repro.logic.analysis import free_variables
from repro.logic.parser import parse
from repro.logic.syntax import Formula
from repro.structures.gaifman import gaifman_adjacency
from repro.structures.structure import Element, Structure

__all__ = ["ESOSentence", "three_colorability_eso", "is_three_colorable"]


class ESOSentence:
    """∃R₁...∃R_k φ where φ is FO over the base signature plus the Rᵢ.

    ``guessed`` maps each guessed relation name to its arity. ``check``
    enumerates all interpretations of the guessed relations (there are
    2^(n^arity) per relation — NP's witness space) and returns whether
    some choice satisfies the matrix.
    """

    def __init__(self, guessed: Mapping[str, int], matrix: Formula) -> None:
        free = free_variables(matrix)
        if free:
            names = sorted(var.name for var in free)
            raise FormulaError(f"ESO matrix must be a sentence; free: {names}")
        if not guessed:
            raise FormulaError("an ESO sentence must guess at least one relation")
        self.guessed = dict(guessed)
        self.matrix = matrix

    def witness_count(self, structure: Structure) -> int:
        """The size of the witness space on this structure (2^Σ n^arity)."""
        exponent = sum(structure.size**arity for arity in self.guessed.values())
        return 2**exponent

    def check(
        self,
        structure: Structure,
        budget: int = 1_000_000,
    ) -> dict[str, frozenset[tuple[Element, ...]]] | None:
        """Search for witness relations; return them, or ``None``.

        Raises :class:`BudgetExceededError` when the witness space
        exceeds ``budget`` candidates (the search is exhaustive).
        """
        overlap = set(self.guessed) & set(structure.signature.relations)
        if overlap:
            raise FormulaError(f"guessed relations shadow base relations: {sorted(overlap)}")
        space = self.witness_count(structure)
        if space > budget:
            raise BudgetExceededError(
                "ESO witness space too large", spent=space, budget=budget
            )
        names = sorted(self.guessed)
        all_tuples = {
            name: list(itertools.product(structure.universe, repeat=self.guessed[name]))
            for name in names
        }

        def candidates(index: int, chosen: dict[str, frozenset]):
            if index == len(names):
                yield dict(chosen)
                return
            name = names[index]
            rows = all_tuples[name]
            for size in range(len(rows) + 1):
                for subset in itertools.combinations(rows, size):
                    chosen[name] = frozenset(subset)
                    yield from candidates(index + 1, chosen)
            chosen.pop(name, None)

        extended_signature = structure.signature.extend(self.guessed)
        for witness in candidates(0, {}):
            extended = Structure(
                extended_signature,
                structure.universe,
                {**structure.relations, **witness},
                structure.constants,
            )
            if evaluate(extended, self.matrix):
                return witness
        return None

    def holds(self, structure: Structure, budget: int = 1_000_000) -> bool:
        """Whether the ∃SO sentence is true in the structure."""
        return self.check(structure, budget) is not None


def three_colorability_eso() -> ESOSentence:
    """3-colorability as an ∃SO sentence (Fagin's canonical NP example).

    Guesses three unary relations R, G, B and checks: every node has a
    color, colors are exclusive, and no Gaifman edge is monochromatic.
    """
    matrix = parse(
        "forall x ((R(x) | G(x) | B(x))"
        " & ~(R(x) & G(x)) & ~(R(x) & B(x)) & ~(G(x) & B(x)))"
        " & forall x forall y (~E(x, y) | x = y |"
        " (~(R(x) & R(y)) & ~(G(x) & G(y)) & ~(B(x) & B(y))))"
    )
    return ESOSentence({"R": 1, "G": 1, "B": 1}, matrix)


def is_three_colorable(structure: Structure) -> bool:
    """An independent 3-colorability decision (backtracking on the
    Gaifman graph), used to validate :func:`three_colorability_eso`."""
    adjacency = gaifman_adjacency(structure)
    order = sorted(structure.universe, key=lambda element: -len(adjacency[element]))
    colors: dict[Element, int] = {}

    def backtrack(index: int) -> bool:
        if index == len(order):
            return True
        node = order[index]
        for color in range(3):
            if all(colors.get(neighbor) != color for neighbor in adjacency[node]):
                colors[node] = color
                if backtrack(index + 1):
                    return True
                del colors[node]
        return False

    return backtrack(0)
