"""Quantified Boolean formulas and the PSPACE-hardness reduction.

The paper's combined-complexity lower bound (Stockmeyer/Vardi) reduces
QBF satisfiability to FO model checking: each propositional variable p
becomes a first-order variable x_p ranging over a fixed two-element
structure ({0, 1} with a unary relation T = {1}), p becomes T(x_p), and
the quantifiers carry over. This module implements QBF, a solver, and
the reduction — experiment E1 validates the reduction by running both
sides on random instances.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass

from repro.errors import FormulaError
from repro.logic.signature import Signature
from repro.logic.syntax import (
    And as FOAnd,
    Atom as FOAtom,
    Exists as FOExists,
    Forall as FOForall,
    Formula,
    Not as FONot,
    Or as FOOr,
    Var as FOVar,
)
from repro.structures.structure import Structure

__all__ = [
    "QBF",
    "PVar",
    "QNot",
    "QAnd",
    "QOr",
    "QExists",
    "QForall",
    "solve_qbf",
    "qbf_to_fo",
    "boolean_structure",
    "BOOLEAN_SIGNATURE",
    "random_qbf",
]


class QBF:
    """Base class of QBF nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class PVar(QBF):
    """A propositional variable."""

    name: str


@dataclass(frozen=True)
class QNot(QBF):
    body: QBF


@dataclass(frozen=True)
class QAnd(QBF):
    left: QBF
    right: QBF


@dataclass(frozen=True)
class QOr(QBF):
    left: QBF
    right: QBF


@dataclass(frozen=True)
class QExists(QBF):
    var: str
    body: QBF


@dataclass(frozen=True)
class QForall(QBF):
    var: str
    body: QBF


def solve_qbf(formula: QBF, assignment: dict[str, bool] | None = None) -> bool:
    """Evaluate a QBF (free variables read from ``assignment``).

    The naive recursive algorithm — polynomial space, exponential time,
    exactly the evaluation strategy whose FO analogue experiment E1
    measures.
    """
    env = dict(assignment or {})

    def run(node: QBF) -> bool:
        if isinstance(node, PVar):
            try:
                return env[node.name]
            except KeyError:
                raise FormulaError(f"unbound propositional variable {node.name!r}") from None
        if isinstance(node, QNot):
            return not run(node.body)
        if isinstance(node, QAnd):
            return run(node.left) and run(node.right)
        if isinstance(node, QOr):
            return run(node.left) or run(node.right)
        if isinstance(node, (QExists, QForall)):
            want = isinstance(node, QExists)
            shadow = env.get(node.var)
            had = node.var in env
            result = not want
            for value in (False, True):
                env[node.var] = value
                if run(node.body) == want:
                    result = want
                    break
            if had:
                env[node.var] = shadow  # type: ignore[assignment]
            else:
                env.pop(node.var, None)
            return result
        raise FormulaError(f"unknown QBF node {node!r}")

    return run(formula)


#: The target signature of the reduction: one unary relation T ("true").
BOOLEAN_SIGNATURE = Signature({"T": 1})


def boolean_structure() -> Structure:
    """The fixed two-element structure ({0,1}, T = {1}) of the reduction."""
    return Structure(BOOLEAN_SIGNATURE, [0, 1], {"T": [(1,)]})


def qbf_to_fo(formula: QBF) -> Formula:
    """Translate a QBF into an FO formula over :data:`BOOLEAN_SIGNATURE`.

    ``solve_qbf(φ)`` iff ``evaluate(boolean_structure(), qbf_to_fo(φ))``
    for closed φ — the PSPACE-hardness reduction for FO model checking.
    """
    if isinstance(formula, PVar):
        return FOAtom("T", (FOVar(formula.name),))
    if isinstance(formula, QNot):
        return FONot(qbf_to_fo(formula.body))
    if isinstance(formula, QAnd):
        return FOAnd((qbf_to_fo(formula.left), qbf_to_fo(formula.right)))
    if isinstance(formula, QOr):
        return FOOr((qbf_to_fo(formula.left), qbf_to_fo(formula.right)))
    if isinstance(formula, QExists):
        return FOExists(FOVar(formula.var), qbf_to_fo(formula.body))
    if isinstance(formula, QForall):
        return FOForall(FOVar(formula.var), qbf_to_fo(formula.body))
    raise FormulaError(f"unknown QBF node {formula!r}")


def random_qbf(variables: int, depth: int, seed: int = 0) -> QBF:
    """A random closed QBF with the given quantifier count.

    The matrix is a random Boolean combination of the variables;
    quantifiers alternate ∃/∀ with a random start. Used for validating
    the reduction on many instances.
    """
    rng = _random.Random(seed)
    names = [f"p{index}" for index in range(variables)]

    def matrix(level: int) -> QBF:
        if level == 0 or rng.random() < 0.3:
            return PVar(rng.choice(names))
        kind = rng.randrange(3)
        if kind == 0:
            return QNot(matrix(level - 1))
        if kind == 1:
            return QAnd(matrix(level - 1), matrix(level - 1))
        return QOr(matrix(level - 1), matrix(level - 1))

    body: QBF = matrix(depth)
    flip = rng.random() < 0.5
    for index, name in enumerate(reversed(names)):
        if (index % 2 == 0) == flip:
            body = QExists(name, body)
        else:
            body = QForall(name, body)
    return body
