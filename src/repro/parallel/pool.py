"""Chunked fan-out over a shared worker pool, with a serial fallback.

The locality census, the batch engine API, and the 0–1 law sampler are
all embarrassingly parallel per item (per element, per query, per
sample).  This module gives them one shared scheduling layer:

* :func:`parallel_map` — apply a function to every item of a sequence,
  fanning chunks out over a process (or thread) pool, and reassemble the
  results **in input order**, so parallel and serial runs are
  byte-identical;
* :class:`ParallelConfig` / :func:`config_from_env` — configuration from
  the ``REPRO_PARALLEL`` / ``REPRO_PARALLEL_WORKERS`` /
  ``REPRO_PARALLEL_BACKEND`` environment variables;
* a lazily created, **shared** executor per backend, so repeated calls
  reuse warm workers instead of paying pool start-up per call.

**Serial is the default.**  With ``REPRO_PARALLEL`` unset (or ``0``) and
no explicit ``max_workers``, :func:`parallel_map` is a plain list
comprehension — zero scheduling overhead, no worker processes, identical
results.  The process backend additionally pre-checks that the payload
pickles; un-picklable work degrades to the serial path instead of
crashing, so callers can pass closures without caring about the backend.
The pre-check only swallows *pickling* failures
(``pickle.PicklingError``/``TypeError``/``AttributeError``); any other
exception raised while reducing the payload is a real bug and
propagates, and worker exceptions always re-raise in the caller with the
original traceback chained — the serial fallback never masks a failure.

**Cancellation.**  ``cancel_token=`` (a
:class:`repro.resilience.budget.CancelToken`) makes the fan-out
deadline-aware at chunk granularity: the serial path checks between
items, the parallel path checks before submission and bounds every
``future.result`` wait by the remaining allowance, cancelling the
not-yet-started chunks when the budget trips.  Thread workers share the
token object; process workers get the remaining allowance shipped as a
payload and rebuild a local token, so in-flight chunks also stop
cooperatively instead of running to completion.

Telemetry (when enabled): ``parallel.tasks`` and ``parallel.chunks``
counters, a ``parallel.chunk_ms`` histogram of per-chunk worker time,
``parallel.serial_fallbacks`` for degraded calls,
``parallel.cancelled_chunks`` for budget-cancelled work, and a
``parallel.workers`` gauge recording the pool width in use.

**Trace propagation.**  When the calling thread is recording (a sampled
request scope, or tracing enabled globally), the current trace identity
ships with every chunk exactly the way the cancel token's allowance
does: :func:`repro.telemetry.context.propagation_payload` on the parent
side, a rebuilt recording scope in the worker, and the worker's
finished span trees returned alongside the results, where
:func:`repro.telemetry.tracer.adopt_spans` grafts them back under the
parent trace.  A request's span tree therefore stays whole even when
parts of it ran in other processes; when nothing is recording the
payload is ``None`` and workers skip span collection entirely.
"""

from __future__ import annotations

import math
import os
import pickle
import threading
import time
from collections.abc import Callable, Iterable, Mapping
from concurrent.futures import Executor as _FuturesExecutor
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeoutError
from dataclasses import dataclass
from typing import Any

from repro.errors import BudgetExceededError, ParallelError
from repro.resilience.budget import CancelToken
from repro.resilience.faults import fault_point
from repro.telemetry.context import propagation_payload, scope_from_payload
from repro.telemetry.metrics import counter as _counter
from repro.telemetry.metrics import gauge as _gauge
from repro.telemetry.metrics import histogram as _histogram
from repro.telemetry.tracer import adopt_spans as _adopt_spans
from repro.telemetry.tracer import is_enabled as _telemetry_enabled
from repro.telemetry.tracer import span as _span

__all__ = [
    "ParallelConfig",
    "config_from_env",
    "cpu_count",
    "resolve_workers",
    "parallel_map",
    "shutdown",
]

#: Chunks per worker when no explicit chunk size is given: small enough
#: to balance uneven chunks, large enough to amortize submission cost.
CHUNKS_PER_WORKER = 4

_BACKENDS = ("process", "thread")

_OFF_VALUES = ("", "0", "false", "off", "no")
_AUTO_VALUES = ("1", "true", "on", "yes", "auto")


def cpu_count() -> int:
    """The number of CPUs the pool may use (at least 1)."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class ParallelConfig:
    """How :func:`parallel_map` should run when the caller does not say.

    ``max_workers=1`` means serial; the backend then never engages.
    """

    max_workers: int = 1
    backend: str = "process"
    chunk_size: int | None = None


def config_from_env(env: Mapping[str, str] | None = None) -> ParallelConfig:
    """Parse ``REPRO_PARALLEL*`` into a :class:`ParallelConfig`.

    ``REPRO_PARALLEL`` — unset/``0`` → serial (the default); ``1`` →
    one worker per CPU; an integer ≥ 2 → exactly that many workers.
    ``REPRO_PARALLEL_WORKERS`` — overrides the worker count.
    ``REPRO_PARALLEL_BACKEND`` — ``process`` (default) or ``thread``.
    """
    env = os.environ if env is None else env
    raw = str(env.get("REPRO_PARALLEL", "")).strip().lower()
    if raw in _OFF_VALUES:
        workers = 1
    elif raw in _AUTO_VALUES:
        workers = cpu_count()
    else:
        try:
            workers = int(raw)
        except ValueError:
            raise ParallelError(
                f"REPRO_PARALLEL must be 0, 1, or a worker count, got {raw!r}"
            ) from None
        if workers < 0:
            raise ParallelError(f"REPRO_PARALLEL must be non-negative, got {workers}")
        workers = max(workers, 1)
    override = str(env.get("REPRO_PARALLEL_WORKERS", "")).strip()
    if override:
        try:
            workers = max(int(override), 1)
        except ValueError:
            raise ParallelError(
                f"REPRO_PARALLEL_WORKERS must be an integer, got {override!r}"
            ) from None
    backend = str(env.get("REPRO_PARALLEL_BACKEND", "")).strip().lower() or "process"
    if backend not in _BACKENDS:
        raise ParallelError(
            f"REPRO_PARALLEL_BACKEND must be one of {_BACKENDS}, got {backend!r}"
        )
    return ParallelConfig(max_workers=workers, backend=backend)


def resolve_workers(max_workers: int | None) -> int:
    """An explicit worker count if given, else the environment's."""
    if max_workers is not None:
        if max_workers < 0:
            raise ParallelError(f"max_workers must be non-negative, got {max_workers}")
        return max(max_workers, 1)
    return config_from_env().max_workers


# -- the shared executors ----------------------------------------------------

_lock = threading.Lock()
_executors: dict[str, tuple[int, _FuturesExecutor]] = {}


def _shared_executor(backend: str, workers: int) -> _FuturesExecutor:
    """The (lazily created) shared pool for one backend, resized on demand."""
    with _lock:
        current = _executors.get(backend)
        if current is not None and current[0] == workers:
            return current[1]
        if current is not None:
            current[1].shutdown(wait=False)
        executor: _FuturesExecutor
        if backend == "process":
            executor = ProcessPoolExecutor(max_workers=workers)
        elif backend == "thread":
            executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-parallel"
            )
        else:
            raise ParallelError(f"unknown parallel backend {backend!r}")
        _executors[backend] = (workers, executor)
        return executor


def shutdown() -> None:
    """Shut down every shared pool (used by tests and at-exit cleanup).

    Idempotent and safe to interleave with in-flight :func:`parallel_map`
    calls: the executors are unhooked from the shared table *under* the
    lock but shut down *outside* it, so a concurrent caller never blocks
    on a dying pool's drain — it simply creates a fresh pool (and a
    caller whose pool dies between its submits resubmits or degrades to
    serial; see :func:`parallel_map`). No stale executor stays reachable
    from the module after this returns.
    """
    with _lock:
        doomed = list(_executors.values())
        _executors.clear()
    for _, executor in doomed:
        executor.shutdown(wait=True)


# -- the map -----------------------------------------------------------------


def _run_chunk(
    fn: Callable[[Any], Any],
    chunk: list,
    token_arg: Any = None,
    trace_arg: tuple[str, str] | None = None,
) -> tuple[list, float, list[dict] | None]:
    """Worker-side body: apply ``fn`` item-wise, timing the whole chunk.

    ``token_arg`` is either a live :class:`CancelToken` (thread backend —
    shared memory), a :meth:`CancelToken.to_payload` tuple (process
    backend), or ``None``. A cancelled/expired token stops the chunk
    between items with :class:`BudgetExceededError`.

    ``trace_arg`` is a :func:`propagation_payload` tuple or ``None``.
    When present the chunk runs under a rebuilt recording scope with the
    parent's trace id, wrapped in a ``parallel.chunk`` span, and the
    third return slot carries the finished span trees (serialized) for
    the parent to adopt; when absent it is ``None`` and tracing costs
    nothing here.
    """
    if token_arg is None:
        token = None
    elif isinstance(token_arg, CancelToken):
        token = token_arg
    else:
        token = CancelToken.from_payload(token_arg)

    def run() -> list:
        if token is None:
            return [fn(item) for item in chunk]
        results = []
        for item in chunk:
            token.tick("parallel.chunk")
            results.append(fn(item))
        return results

    start = time.perf_counter()
    if trace_arg is None:
        return run(), time.perf_counter() - start, None
    scope = scope_from_payload(tuple(trace_arg))
    with scope:
        with _span("parallel.chunk") as chunk_span:
            results = run()
            chunk_span.set("items", len(chunk))
    span_dicts = [root.to_dict() for root in scope.roots]
    return results, time.perf_counter() - start, span_dicts


#: Exceptions that mean "this payload does not pickle" — and nothing
#: else. ``pickle.dumps`` runs arbitrary ``__reduce__``/``__getstate__``
#: code, so a broader catch would silently swallow real bugs in the
#: payload and degrade to serial, masking the failure.
_PICKLE_FAILURES = (pickle.PicklingError, TypeError, AttributeError)


def _payload_pickles(fn: Callable, probe: Any) -> bool:
    try:
        pickle.dumps((fn, probe))
        return True
    except _PICKLE_FAILURES:
        return False


def _serial_map(
    fn: Callable[[Any], Any], items: list, cancel_token: CancelToken | None
) -> list:
    if cancel_token is None:
        return [fn(item) for item in items]
    results = []
    for item in items:
        cancel_token.tick("parallel.map")
        results.append(fn(item))
    return results


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    max_workers: int | None = None,
    backend: str | None = None,
    chunk_size: int | None = None,
    cancel_token: CancelToken | None = None,
) -> list:
    """``[fn(item) for item in items]``, possibly across workers.

    Results are always returned in input order, so a parallel run is
    indistinguishable from a serial one (the determinism contract the
    census and batch-API tests assert).  The serial path is taken when
    the resolved worker count is 1, when there are fewer than two items,
    or when the process backend cannot pickle the payload.

    ``cancel_token`` bounds the call: cancellation and deadlines are
    enforced between items (serial), at submission, inside worker chunks,
    and on every wait for an outstanding future, raising
    :class:`~repro.errors.BudgetExceededError` with not-yet-started
    chunks cancelled. Worker exceptions re-raise here with the original
    traceback chained.
    """
    items = list(items)
    config = config_from_env()
    workers = resolve_workers(max_workers) if max_workers is not None else config.max_workers
    chosen_backend = backend if backend is not None else config.backend
    if chosen_backend not in _BACKENDS:
        raise ParallelError(f"backend must be one of {_BACKENDS}, got {chosen_backend!r}")

    telemetry_on = _telemetry_enabled()
    if cancel_token is not None:
        cancel_token.check("parallel.map")
        fault_point("parallel.map")
    if workers <= 1 or len(items) <= 1:
        return _serial_map(fn, items, cancel_token)
    if chosen_backend == "process" and not _payload_pickles(fn, items[0]):
        if telemetry_on:
            _counter("parallel.serial_fallbacks").inc()
        return _serial_map(fn, items, cancel_token)

    size = chunk_size if chunk_size is not None else (config.chunk_size or 0)
    if size < 1:
        size = max(1, math.ceil(len(items) / (workers * CHUNKS_PER_WORKER)))
    chunks = [items[start : start + size] for start in range(0, len(items), size)]

    if cancel_token is None:
        token_arg = None
    elif chosen_backend == "thread":
        token_arg = cancel_token  # shared memory: workers see cancel() live
    else:
        token_arg = cancel_token.to_payload()
    trace_arg = propagation_payload()

    executor = _shared_executor(chosen_backend, workers)
    futures = []
    for chunk in chunks:
        try:
            futures.append(executor.submit(_run_chunk, fn, chunk, token_arg, trace_arg))
        except RuntimeError:
            # The shared pool was shut down between our lookup and this
            # submit (shutdown() is allowed to interleave). Get a fresh
            # pool once; if that one dies too, finish the chunk serially
            # rather than fail a correct computation.
            executor = _shared_executor(chosen_backend, workers)
            try:
                futures.append(
                    executor.submit(_run_chunk, fn, chunk, token_arg, trace_arg)
                )
            except RuntimeError:
                futures.append(
                    _CompletedChunk(_run_chunk(fn, chunk, token_arg, trace_arg))
                )

    results: list = []
    failure: BaseException | None = None
    for index, future in enumerate(futures):
        if failure is not None:
            future.cancel()
            continue
        timeout = cancel_token.remaining_seconds() if cancel_token is not None else None
        try:
            if cancel_token is not None and cancel_token.cancelled:
                cancel_token.check("parallel.collect")
            chunk_results, seconds, chunk_spans = future.result(timeout=timeout)
        except _FuturesTimeoutError:
            failure = BudgetExceededError(
                f"deadline exceeded at parallel.collect "
                f"({len(futures) - index} of {len(futures)} chunks outstanding)"
            )
            future.cancel()
            if telemetry_on:
                _counter("parallel.cancelled_chunks").inc()
            continue
        except BaseException as error:
            # Worker (or budget) failure: stop waiting, cancel the rest,
            # and re-raise below with the original traceback intact.
            failure = error
            continue
        results.extend(chunk_results)
        if chunk_spans:
            _adopt_spans(chunk_spans)
        if telemetry_on:
            _histogram("parallel.chunk_ms").observe(seconds * 1000.0)
    if failure is not None:
        raise failure
    if telemetry_on:
        _counter("parallel.tasks").inc(len(items))
        _counter("parallel.chunks").inc(len(chunks))
        _gauge("parallel.workers").set(workers)
    return results


class _CompletedChunk:
    """A future-shaped wrapper for a chunk that had to run in the caller."""

    def __init__(self, value: tuple[list, float, list[dict] | None]) -> None:
        self._value = value

    def result(
        self, timeout: float | None = None
    ) -> tuple[list, float, list[dict] | None]:
        return self._value

    def cancel(self) -> bool:
        return False
