"""Chunked fan-out over a shared worker pool, with a serial fallback.

The locality census, the batch engine API, and the 0–1 law sampler are
all embarrassingly parallel per item (per element, per query, per
sample).  This module gives them one shared scheduling layer:

* :func:`parallel_map` — apply a function to every item of a sequence,
  fanning chunks out over a process (or thread) pool, and reassemble the
  results **in input order**, so parallel and serial runs are
  byte-identical;
* :class:`ParallelConfig` / :func:`config_from_env` — configuration from
  the ``REPRO_PARALLEL`` / ``REPRO_PARALLEL_WORKERS`` /
  ``REPRO_PARALLEL_BACKEND`` environment variables;
* a lazily created, **shared** executor per backend, so repeated calls
  reuse warm workers instead of paying pool start-up per call.

**Serial is the default.**  With ``REPRO_PARALLEL`` unset (or ``0``) and
no explicit ``max_workers``, :func:`parallel_map` is a plain list
comprehension — zero scheduling overhead, no worker processes, identical
results.  The process backend additionally pre-checks that the payload
pickles; un-picklable work degrades to the serial path instead of
crashing, so callers can pass closures without caring about the backend.

Telemetry (when enabled): ``parallel.tasks`` and ``parallel.chunks``
counters, a ``parallel.chunk_ms`` histogram of per-chunk worker time,
``parallel.serial_fallbacks`` for degraded calls, and a
``parallel.workers`` gauge recording the pool width in use.
"""

from __future__ import annotations

import math
import os
import pickle
import threading
import time
from collections.abc import Callable, Iterable, Mapping
from concurrent.futures import Executor as _FuturesExecutor
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.errors import ParallelError
from repro.telemetry.metrics import counter as _counter
from repro.telemetry.metrics import gauge as _gauge
from repro.telemetry.metrics import histogram as _histogram
from repro.telemetry.tracer import is_enabled as _telemetry_enabled

__all__ = [
    "ParallelConfig",
    "config_from_env",
    "cpu_count",
    "resolve_workers",
    "parallel_map",
    "shutdown",
]

#: Chunks per worker when no explicit chunk size is given: small enough
#: to balance uneven chunks, large enough to amortize submission cost.
CHUNKS_PER_WORKER = 4

_BACKENDS = ("process", "thread")

_OFF_VALUES = ("", "0", "false", "off", "no")
_AUTO_VALUES = ("1", "true", "on", "yes", "auto")


def cpu_count() -> int:
    """The number of CPUs the pool may use (at least 1)."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class ParallelConfig:
    """How :func:`parallel_map` should run when the caller does not say.

    ``max_workers=1`` means serial; the backend then never engages.
    """

    max_workers: int = 1
    backend: str = "process"
    chunk_size: int | None = None


def config_from_env(env: Mapping[str, str] | None = None) -> ParallelConfig:
    """Parse ``REPRO_PARALLEL*`` into a :class:`ParallelConfig`.

    ``REPRO_PARALLEL`` — unset/``0`` → serial (the default); ``1`` →
    one worker per CPU; an integer ≥ 2 → exactly that many workers.
    ``REPRO_PARALLEL_WORKERS`` — overrides the worker count.
    ``REPRO_PARALLEL_BACKEND`` — ``process`` (default) or ``thread``.
    """
    env = os.environ if env is None else env
    raw = str(env.get("REPRO_PARALLEL", "")).strip().lower()
    if raw in _OFF_VALUES:
        workers = 1
    elif raw in _AUTO_VALUES:
        workers = cpu_count()
    else:
        try:
            workers = int(raw)
        except ValueError:
            raise ParallelError(
                f"REPRO_PARALLEL must be 0, 1, or a worker count, got {raw!r}"
            ) from None
        if workers < 0:
            raise ParallelError(f"REPRO_PARALLEL must be non-negative, got {workers}")
        workers = max(workers, 1)
    override = str(env.get("REPRO_PARALLEL_WORKERS", "")).strip()
    if override:
        try:
            workers = max(int(override), 1)
        except ValueError:
            raise ParallelError(
                f"REPRO_PARALLEL_WORKERS must be an integer, got {override!r}"
            ) from None
    backend = str(env.get("REPRO_PARALLEL_BACKEND", "")).strip().lower() or "process"
    if backend not in _BACKENDS:
        raise ParallelError(
            f"REPRO_PARALLEL_BACKEND must be one of {_BACKENDS}, got {backend!r}"
        )
    return ParallelConfig(max_workers=workers, backend=backend)


def resolve_workers(max_workers: int | None) -> int:
    """An explicit worker count if given, else the environment's."""
    if max_workers is not None:
        if max_workers < 0:
            raise ParallelError(f"max_workers must be non-negative, got {max_workers}")
        return max(max_workers, 1)
    return config_from_env().max_workers


# -- the shared executors ----------------------------------------------------

_lock = threading.Lock()
_executors: dict[str, tuple[int, _FuturesExecutor]] = {}


def _shared_executor(backend: str, workers: int) -> _FuturesExecutor:
    """The (lazily created) shared pool for one backend, resized on demand."""
    with _lock:
        current = _executors.get(backend)
        if current is not None and current[0] == workers:
            return current[1]
        if current is not None:
            current[1].shutdown(wait=False)
        executor: _FuturesExecutor
        if backend == "process":
            executor = ProcessPoolExecutor(max_workers=workers)
        elif backend == "thread":
            executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-parallel"
            )
        else:
            raise ParallelError(f"unknown parallel backend {backend!r}")
        _executors[backend] = (workers, executor)
        return executor


def shutdown() -> None:
    """Shut down every shared pool (used by tests and at-exit cleanup)."""
    with _lock:
        for _, executor in _executors.values():
            executor.shutdown(wait=True)
        _executors.clear()


# -- the map -----------------------------------------------------------------


def _run_chunk(fn: Callable[[Any], Any], chunk: list) -> tuple[list, float]:
    """Worker-side body: apply ``fn`` item-wise, timing the whole chunk."""
    start = time.perf_counter()
    results = [fn(item) for item in chunk]
    return results, time.perf_counter() - start


def _payload_pickles(fn: Callable, probe: Any) -> bool:
    try:
        pickle.dumps((fn, probe))
        return True
    except Exception:
        return False


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    max_workers: int | None = None,
    backend: str | None = None,
    chunk_size: int | None = None,
) -> list:
    """``[fn(item) for item in items]``, possibly across workers.

    Results are always returned in input order, so a parallel run is
    indistinguishable from a serial one (the determinism contract the
    census and batch-API tests assert).  The serial path is taken when
    the resolved worker count is 1, when there are fewer than two items,
    or when the process backend cannot pickle the payload.
    """
    items = list(items)
    config = config_from_env()
    workers = resolve_workers(max_workers) if max_workers is not None else config.max_workers
    chosen_backend = backend if backend is not None else config.backend
    if chosen_backend not in _BACKENDS:
        raise ParallelError(f"backend must be one of {_BACKENDS}, got {chosen_backend!r}")

    telemetry_on = _telemetry_enabled()
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if chosen_backend == "process" and not _payload_pickles(fn, items[0]):
        if telemetry_on:
            _counter("parallel.serial_fallbacks").inc()
        return [fn(item) for item in items]

    size = chunk_size if chunk_size is not None else (config.chunk_size or 0)
    if size < 1:
        size = max(1, math.ceil(len(items) / (workers * CHUNKS_PER_WORKER)))
    chunks = [items[start : start + size] for start in range(0, len(items), size)]

    executor = _shared_executor(chosen_backend, workers)
    futures = [executor.submit(_run_chunk, fn, chunk) for chunk in chunks]
    results: list = []
    for future in futures:
        chunk_results, seconds = future.result()
        results.extend(chunk_results)
        if telemetry_on:
            _histogram("parallel.chunk_ms").observe(seconds * 1000.0)
    if telemetry_on:
        _counter("parallel.tasks").inc(len(items))
        _counter("parallel.chunks").inc(len(chunks))
        _gauge("parallel.workers").set(workers)
    return results
