"""Multicore fan-out for the toolbox's hot paths (S15).

``repro.parallel`` is the work-scheduling layer behind the parallel
locality census, the engine's batch API, and the 0–1 law sampler:
deterministic chunked :func:`parallel_map` over a shared process or
thread pool, configured by ``REPRO_PARALLEL`` (serial by default).
"""

from repro.parallel.pool import (
    CHUNKS_PER_WORKER,
    ParallelConfig,
    config_from_env,
    cpu_count,
    parallel_map,
    resolve_workers,
    shutdown,
)

__all__ = [
    "CHUNKS_PER_WORKER",
    "ParallelConfig",
    "config_from_env",
    "cpu_count",
    "parallel_map",
    "resolve_workers",
    "shutdown",
]
