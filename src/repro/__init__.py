"""fmtoolbox — the finite model theory toolbox of a database theoretician.

An executable reproduction of L. Libkin's PODS 2009 survey: databases as
finite relational structures, FO as a query language, and the survey's
proof tools — Ehrenfeucht–Fraïssé games, locality (BNDP / Gaifman /
Hanf / threshold-Hanf / Gaifman's theorem), 0–1 laws — implemented as
working, tested algorithms.

Subpackages
-----------
``repro.logic``
    FO syntax, parser, builder DSL, quantifier rank, transformations,
    Hintikka formulas (S1).
``repro.structures``
    Finite relational structures, canonical families, isomorphism,
    Gaifman geometry (S2).
``repro.eval``
    Three query evaluation back-ends: naive, relational algebra, AC⁰
    circuits (S3).
``repro.engine``
    The production query engine: normalization, catalog statistics, a
    cost-based planner over the relational algebra, hash-join/antijoin
    execution with plan + answer caches, and a bounded-degree fast path
    (Theorem 3.11) — the default way to answer queries at scale.
``repro.games``
    Exact EF and pebble game solvers, a duplicator strategy library,
    separating sentences (S4).
``repro.locality``
    BNDP, Gaifman and Hanf locality, threshold-Hanf, Gaifman's theorem,
    linear-time bounded-degree evaluation (S5).
``repro.zero_one``
    Random structures, extension axioms, exact μ(φ) ∈ {0, 1} decisions
    (S6).
``repro.fixpoint``
    Datalog (semi-naive, stratified) and LFP operators — the non-FO
    queries (S7).
``repro.descriptive``
    QBF + the PSPACE reduction, automata, MSO on words, ∃SO / Fagin
    (S8).
``repro.queries``
    The canonical query zoo and the §3.3 reduction tricks (S9).
``repro.telemetry``
    Observability: span tracing, a counter/gauge/histogram metrics
    registry, and the engine's EXPLAIN ANALYZE support. Off by default —
    enable with ``repro.telemetry.enable()`` or ``REPRO_TELEMETRY=1``
    (S14).
``repro.server``
    The multi-tenant FO query service: stable HTTP/JSON wire format,
    content-addressed structure store, prepared queries, per-tenant
    budgets + fallback chains as admission control, and a stdlib
    ``ThreadingHTTPServer`` transport — ``python -m repro.server``
    (S18).

Quickstart
----------
>>> from repro import parse, evaluate, linear_order, ef_equivalent
>>> evaluate(linear_order(3), parse("forall x forall y (x < y | y < x | x = y)"))
True
>>> ef_equivalent(linear_order(4), linear_order(5), 2)   # Theorem 3.1
True
"""

from repro.errors import (
    BudgetExceededError,
    DatalogError,
    EvaluationError,
    FMTError,
    FormulaError,
    GameError,
    LocalityError,
    ParseError,
    SignatureError,
    StaleStreamError,
    StructureError,
)
from repro.engine import (
    Engine,
    default_engine,
    engine_answers,
    engine_evaluate,
)
from repro.eval import (
    BooleanQuery,
    Query,
    algebra_answers,
    answers,
    compile_query,
    evaluate,
    evaluate_circuit,
)
from repro.games import (
    distinguishing_sentence,
    ef_equivalent,
    linear_order_duplicator,
    play_ef_game,
    solve_ef_game,
)
from repro.locality import (
    BoundedDegreeEvaluator,
    hanf_equivalent,
    neighborhood_census,
    threshold_hanf_equivalent,
)
from repro.logic import (
    GRAPH,
    ORDER,
    SET,
    SUCCESSOR,
    Signature,
    parse,
    quantifier_rank,
)
from repro.structures import (
    Structure,
    bare_set,
    linear_order,
    neighborhood,
    random_graph,
    undirected_cycle,
)
from repro.zero_one import decide_almost_sure, mu_estimate
from repro import telemetry

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "FMTError", "SignatureError", "FormulaError", "ParseError",
    "StructureError", "EvaluationError", "GameError", "LocalityError",
    "DatalogError", "BudgetExceededError", "StaleStreamError",
    # logic
    "Signature", "GRAPH", "ORDER", "SUCCESSOR", "SET", "parse",
    "quantifier_rank",
    # structures
    "Structure", "bare_set", "linear_order", "random_graph",
    "undirected_cycle", "neighborhood",
    # eval
    "evaluate", "answers", "algebra_answers", "compile_query",
    "evaluate_circuit", "Query", "BooleanQuery",
    # engine
    "Engine", "default_engine", "engine_answers", "engine_evaluate",
    # games
    "solve_ef_game", "ef_equivalent", "play_ef_game",
    "linear_order_duplicator", "distinguishing_sentence",
    # locality
    "hanf_equivalent", "threshold_hanf_equivalent", "neighborhood_census",
    "BoundedDegreeEvaluator",
    # zero-one
    "decide_almost_sure", "mu_estimate",
    # observability
    "telemetry",
]
