"""Exception hierarchy for fmtoolbox.

Every error raised deliberately by the library derives from
:class:`FMTError`, so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class FMTError(Exception):
    """Base class for all errors raised by fmtoolbox."""


class SignatureError(FMTError):
    """A symbol was used inconsistently with its signature declaration.

    Raised, for example, when a relation atom has the wrong arity, when a
    structure interprets a symbol absent from its signature, or when two
    structures over different signatures are combined.
    """


class FormulaError(FMTError):
    """A formula is malformed or used where a different shape is required.

    Raised, for example, when a sentence is required but the formula has
    free variables, or when an AST node carries ill-typed children.
    """


class ParseError(FMTError):
    """The formula parser rejected its input."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class StructureError(FMTError):
    """A structure is malformed: tuples outside the universe, bad arity, etc."""


class EvaluationError(FMTError):
    """Query evaluation failed, e.g. a free variable had no binding."""


class ParallelError(FMTError):
    """The parallel layer was misconfigured.

    Raised, for example, when ``REPRO_PARALLEL`` holds a value that is
    neither a switch nor a worker count, or when an unknown backend is
    requested.
    """


class GameError(FMTError):
    """A game was configured or played incorrectly.

    Raised, for example, when a strategy returns an element outside the
    structure it was asked to play in.
    """


class LocalityError(FMTError):
    """A locality tool was applied outside its domain of validity.

    Raised, for example, when the bounded-degree evaluator is given a
    structure whose degree exceeds the bound it was compiled for.
    """


class DatalogError(FMTError):
    """A Datalog program is unsafe, unstratifiable, or otherwise invalid."""


class AutomatonError(FMTError):
    """An automaton is malformed (unknown states, bad alphabet, ...)."""


class ServerError(FMTError):
    """A request to the query service failed at the service layer.

    Carries the HTTP ``status`` the wire layer should answer with: 404
    for references to unknown tenants/structures/prepared queries, 409
    for conflicting re-preparation, 400 for malformed requests.  Budget
    refusals are *not* server errors — they raise
    :class:`BudgetExceededError` and map to 429/503.
    """

    def __init__(self, message: str, *, status: int = 400) -> None:
        self.status = status
        super().__init__(message)


class UnknownResourceError(ServerError):
    """A request referenced a tenant, structure, or prepared query that
    does not exist (HTTP 404)."""

    def __init__(self, message: str) -> None:
        super().__init__(message, status=404)


class StaleStreamError(FMTError):
    """An :class:`~repro.incremental.enumeration.AnswerStream` was pulled
    after its structure mutated.

    A stream pins the structure's epoch at creation; ``insert``/``delete``
    invalidate the preprocessing the constant-delay guarantee rests on, so
    rather than silently yielding answers for a structure that no longer
    exists, ``next()`` raises this error.  Re-plan with
    :meth:`Engine.enumerate` to stream the updated answers.
    """

    def __init__(self, pinned_epoch: int, current_epoch: int) -> None:
        self.pinned_epoch = pinned_epoch
        self.current_epoch = current_epoch
        super().__init__(
            "answer stream is stale: structure moved from epoch "
            f"{pinned_epoch} to {current_epoch} after preprocessing"
        )


class BudgetExceededError(FMTError):
    """A computation exceeded an explicit resource budget supplied by the caller.

    Exact solvers in this library (EF games, isomorphism, ∃SO checking) run
    exponential-time algorithms; callers may bound the work and receive this
    error instead of an unbounded computation.  The resilience layer
    (:mod:`repro.resilience`) raises the same type for wall-clock deadlines,
    row budgets, and cooperative cancellation, so "ran out of resources" is
    one catchable condition across every evaluation path.

    ``spent``/``budget`` quantify the overrun when the overrun is countable
    (solver nodes, rows, elapsed milliseconds); both default to 0 for purely
    qualitative exhaustion such as an external ``CancelToken.cancel()``.
    """

    def __init__(self, message: str, *, spent: int = 0, budget: int = 0) -> None:
        self.spent = spent
        self.budget = budget
        if spent or budget:
            message = f"{message}: spent {spent} of budget {budget}"
        super().__init__(message)


#: The name the resilience layer uses for the same condition.
BudgetExceeded = BudgetExceededError


class InjectedFaultError(BudgetExceededError):
    """A deliberately injected fault (``REPRO_FAULT_INJECT``).

    Subclasses :class:`BudgetExceededError` so the fallback chain and the
    conformance runner treat an injected failure exactly like a genuine
    resource exhaustion: degrade or report, never return a wrong answer.
    """

    def __init__(self, site: str) -> None:
        self.site = site
        super().__init__(f"injected fault at {site}")
