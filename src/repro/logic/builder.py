"""A small DSL for building formulas readably.

The raw AST constructors are verbose; this module provides the shorthand
used throughout the library, tests, and examples::

    from repro.logic.builder import V, atom, exists, forall, and_, not_

    x, y, z = V("x"), V("y"), V("z")
    connected_to_all = forall(y, atom("E", x, y) | (x == y))

Smart constructors flatten nested conjunctions/disjunctions and drop
identity elements, which keeps machine-generated formulas (Hintikka
formulas, circuit inputs) small without changing their meaning.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.logic.syntax import (
    FALSE,
    TRUE,
    And,
    Atom,
    Bottom,
    Const,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Term,
    Top,
    Var,
)

__all__ = [
    "V",
    "C",
    "variables",
    "atom",
    "eq",
    "neq",
    "not_",
    "and_",
    "or_",
    "implies",
    "iff",
    "exists",
    "forall",
    "exists_many",
    "forall_many",
    "distinct",
]


class _EqVar(Var):
    """A :class:`Var` whose ``==`` builds an :class:`Eq` atom.

    This gives the DSL the pleasant ``x == y`` syntax while plain
    :class:`Var` keeps structural equality (needed for hashing and sets).
    Only variables created through :func:`V` get the sugar.
    """

    __hash__ = Var.__hash__

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (Var, Const)):
            return Eq(Var(self.name), other if not isinstance(other, Var) else Var(other.name))
        return NotImplemented

    def __ne__(self, other: object):  # type: ignore[override]
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return Not(result)


def V(name: str) -> Var:
    """Create a variable with ``==``/``!=`` sugar for building equalities."""
    return _EqVar(name)


def C(name: str) -> Const:
    """Create a constant term."""
    return Const(name)


def variables(names: str) -> tuple[Var, ...]:
    """Create several variables at once from a space-separated string.

    >>> x, y = variables("x y")
    """
    return tuple(V(name) for name in names.split())


def _as_term(value: Term | str) -> Term:
    if isinstance(value, (Var, Const)):
        # Normalize _EqVar back to plain Var so formulas hash uniformly.
        if isinstance(value, Var):
            return Var(value.name)
        return value
    if isinstance(value, str):
        return Var(value)
    raise TypeError(f"expected a term or variable name, got {value!r}")


def atom(relation: str, *terms: Term | str) -> Atom:
    """Build the atom ``relation(terms...)``; bare strings become variables."""
    return Atom(relation, tuple(_as_term(term) for term in terms))


def eq(left: Term | str, right: Term | str) -> Eq:
    """Build the equality ``left = right``."""
    return Eq(_as_term(left), _as_term(right))


def neq(left: Term | str, right: Term | str) -> Not:
    """Build the disequality ``left ≠ right``."""
    return Not(eq(left, right))


def not_(body: Formula) -> Formula:
    """Negation with double-negation and constant collapsing."""
    if isinstance(body, Not):
        return body.body
    if isinstance(body, Top):
        return FALSE
    if isinstance(body, Bottom):
        return TRUE
    return Not(body)


def _flatten(kind: type, parts: Iterable[Formula]) -> list[Formula]:
    flat: list[Formula] = []
    for part in parts:
        if isinstance(part, kind):
            flat.extend(part.children)  # type: ignore[attr-defined]
        else:
            flat.append(part)
    return flat


def and_(*parts: Formula) -> Formula:
    """N-ary conjunction; flattens, deduplicates, and short-circuits ⊥."""
    flat = _flatten(And, parts)
    seen: list[Formula] = []
    for part in flat:
        if isinstance(part, Bottom):
            return FALSE
        if isinstance(part, Top) or part in seen:
            continue
        seen.append(part)
    if not seen:
        return TRUE
    if len(seen) == 1:
        return seen[0]
    return And(tuple(seen))


def or_(*parts: Formula) -> Formula:
    """N-ary disjunction; flattens, deduplicates, and short-circuits ⊤."""
    flat = _flatten(Or, parts)
    seen: list[Formula] = []
    for part in flat:
        if isinstance(part, Top):
            return TRUE
        if isinstance(part, Bottom) or part in seen:
            continue
        seen.append(part)
    if not seen:
        return FALSE
    if len(seen) == 1:
        return seen[0]
    return Or(tuple(seen))


def implies(premise: Formula, conclusion: Formula) -> Formula:
    """Implication ``premise → conclusion``."""
    return Implies(premise, conclusion)


def iff(left: Formula, right: Formula) -> Formula:
    """Biconditional ``left ↔ right``."""
    return Iff(left, right)


def exists(var: Var | str, body: Formula) -> Exists:
    """Existential quantification ``∃var body``."""
    return Exists(Var(var) if isinstance(var, str) else Var(var.name), body)


def forall(var: Var | str, body: Formula) -> Forall:
    """Universal quantification ``∀var body``."""
    return Forall(Var(var) if isinstance(var, str) else Var(var.name), body)


def exists_many(vars_: Iterable[Var | str], body: Formula) -> Formula:
    """``∃x1 ... ∃xn body`` for the given variables, outermost first."""
    result = body
    for var in reversed(list(vars_)):
        result = exists(var, result)
    return result


def forall_many(vars_: Iterable[Var | str], body: Formula) -> Formula:
    """``∀x1 ... ∀xn body`` for the given variables, outermost first."""
    result = body
    for var in reversed(list(vars_)):
        result = forall(var, result)
    return result


def distinct(*vars_: Var | str) -> Formula:
    """The conjunction asserting all given variables are pairwise distinct.

    This is the body of the paper's λ_n sentences ("there are at least n
    elements"), used in the finite-compactness counterexample.
    """
    terms = [_as_term(var) for var in vars_]
    clauses = [
        neq(terms[i], terms[j])
        for i in range(len(terms))
        for j in range(i + 1, len(terms))
    ]
    return and_(*clauses)
