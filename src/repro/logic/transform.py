"""Formula transformations: substitution, NNF, prenex form, simplification.

All transformations are semantics-preserving; the test suite checks this
by evaluating the original and the transformed formula on random
structures (the library's central "evaluator triangle" invariant).
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping

from repro.errors import FormulaError
from repro.logic.analysis import all_variables, free_variables
from repro.logic.builder import and_, not_, or_
from repro.logic.syntax import (
    FALSE,
    TRUE,
    And,
    Atom,
    Bottom,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Term,
    Top,
    Var,
)

__all__ = [
    "substitute",
    "rename_free",
    "standardize_apart",
    "fresh_variable",
    "eliminate_arrows",
    "to_nnf",
    "to_prenex",
    "simplify",
    "relativize",
]


def fresh_variable(taken: set[Var], stem: str = "v") -> Var:
    """Return a variable named ``stem``/``stem0``/``stem1``... not in ``taken``."""
    candidate = Var(stem)
    if candidate not in taken:
        return candidate
    for index in itertools.count():
        candidate = Var(f"{stem}{index}")
        if candidate not in taken:
            return candidate
    raise AssertionError("unreachable")


def substitute(formula: Formula, mapping: Mapping[Var, Term]) -> Formula:
    """Capture-avoiding substitution of terms for free variables.

    Bound variables that would capture a substituted term are renamed to
    fresh names first.
    """

    def subst_term(term: Term) -> Term:
        if isinstance(term, Var):
            return mapping.get(term, term)
        return term

    if isinstance(formula, Atom):
        return Atom(formula.relation, tuple(subst_term(term) for term in formula.terms))
    if isinstance(formula, Eq):
        return Eq(subst_term(formula.left), subst_term(formula.right))
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(substitute(formula.body, mapping))
    if isinstance(formula, And):
        return And(tuple(substitute(child, mapping) for child in formula.children))
    if isinstance(formula, Or):
        return Or(tuple(substitute(child, mapping) for child in formula.children))
    if isinstance(formula, Implies):
        return Implies(substitute(formula.premise, mapping), substitute(formula.conclusion, mapping))
    if isinstance(formula, Iff):
        return Iff(substitute(formula.left, mapping), substitute(formula.right, mapping))
    if isinstance(formula, (Exists, Forall)):
        node = type(formula)
        # Drop bindings shadowed by the quantifier.
        inner = {var: term for var, term in mapping.items() if var != formula.var}
        if not inner:
            return node(formula.var, formula.body)
        # Rename the bound variable if any substituted term would be captured.
        captured = any(
            isinstance(term, Var) and term == formula.var for term in inner.values()
        )
        if captured:
            taken = set(all_variables(formula.body))
            taken.update(
                term for term in inner.values() if isinstance(term, Var)
            )
            taken.update(inner.keys())
            fresh = fresh_variable(taken, formula.var.name)
            renamed = substitute(formula.body, {formula.var: fresh})
            return node(fresh, substitute(renamed, inner))
        return node(formula.var, substitute(formula.body, inner))
    raise FormulaError(f"unknown formula node {formula!r}")


def rename_free(formula: Formula, mapping: Mapping[Var, Var]) -> Formula:
    """Rename free variables according to ``mapping`` (capture-avoiding)."""
    return substitute(formula, dict(mapping))


def standardize_apart(formula: Formula, reserved: set[Var] | None = None) -> Formula:
    """Rename bound variables so each quantifier binds a distinct variable.

    After this transformation no variable is bound twice and no bound
    variable collides with a free variable (or with ``reserved``). This is
    the precondition for the naive prenexing step.
    """
    taken: set[Var] = set(free_variables(formula))
    if reserved:
        taken |= reserved

    def walk(node: Formula) -> Formula:
        if isinstance(node, (Atom, Eq, Top, Bottom)):
            return node
        if isinstance(node, Not):
            return Not(walk(node.body))
        if isinstance(node, And):
            return And(tuple(walk(child) for child in node.children))
        if isinstance(node, Or):
            return Or(tuple(walk(child) for child in node.children))
        if isinstance(node, Implies):
            return Implies(walk(node.premise), walk(node.conclusion))
        if isinstance(node, Iff):
            return Iff(walk(node.left), walk(node.right))
        if isinstance(node, (Exists, Forall)):
            kind = type(node)
            if node.var in taken:
                fresh = fresh_variable(taken, node.var.name)
                taken.add(fresh)
                body = substitute(node.body, {node.var: fresh})
                return kind(fresh, walk(body))
            taken.add(node.var)
            return kind(node.var, walk(node.body))
        raise FormulaError(f"unknown formula node {node!r}")

    return walk(formula)


def eliminate_arrows(formula: Formula) -> Formula:
    """Rewrite ``→`` and ``↔`` in terms of ``¬``, ``∧``, ``∨``."""
    if isinstance(formula, (Atom, Eq, Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(eliminate_arrows(formula.body))
    if isinstance(formula, And):
        return And(tuple(eliminate_arrows(child) for child in formula.children))
    if isinstance(formula, Or):
        return Or(tuple(eliminate_arrows(child) for child in formula.children))
    if isinstance(formula, Implies):
        return Or((Not(eliminate_arrows(formula.premise)), eliminate_arrows(formula.conclusion)))
    if isinstance(formula, Iff):
        left = eliminate_arrows(formula.left)
        right = eliminate_arrows(formula.right)
        return And((Or((Not(left), right)), Or((Not(right), left))))
    if isinstance(formula, (Exists, Forall)):
        return type(formula)(formula.var, eliminate_arrows(formula.body))
    raise FormulaError(f"unknown formula node {formula!r}")


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form: negations pushed down to atoms.

    Arrows are eliminated first. The result contains only atoms, negated
    atoms, ∧, ∨, ∃, ∀, ⊤, ⊥.
    """
    return _nnf(eliminate_arrows(formula), positive=True)


def _nnf(formula: Formula, positive: bool) -> Formula:
    if isinstance(formula, (Atom, Eq)):
        return formula if positive else Not(formula)
    if isinstance(formula, Top):
        return TRUE if positive else FALSE
    if isinstance(formula, Bottom):
        return FALSE if positive else TRUE
    if isinstance(formula, Not):
        return _nnf(formula.body, not positive)
    if isinstance(formula, And):
        children = tuple(_nnf(child, positive) for child in formula.children)
        return And(children) if positive else Or(children)
    if isinstance(formula, Or):
        children = tuple(_nnf(child, positive) for child in formula.children)
        return Or(children) if positive else And(children)
    if isinstance(formula, Exists):
        body = _nnf(formula.body, positive)
        return Exists(formula.var, body) if positive else Forall(formula.var, body)
    if isinstance(formula, Forall):
        body = _nnf(formula.body, positive)
        return Forall(formula.var, body) if positive else Exists(formula.var, body)
    raise FormulaError(f"arrows must be eliminated before NNF: {formula!r}")


def to_prenex(formula: Formula) -> Formula:
    """Prenex normal form: all quantifiers pulled to the front.

    The input is first converted to NNF and standardized apart, after
    which quantifiers commute freely with ∧ and ∨. The quantifier prefix
    preserves the left-to-right order of quantifiers in the NNF.
    """
    nnf = standardize_apart(to_nnf(formula))
    prefix, matrix = _strip(nnf)
    result: Formula = matrix
    for kind, var in reversed(prefix):
        result = kind(var, result)
    return result


def _strip(formula: Formula) -> tuple[list[tuple[type, Var]], Formula]:
    if isinstance(formula, (Exists, Forall)):
        prefix, matrix = _strip(formula.body)
        return [(type(formula), formula.var)] + prefix, matrix
    if isinstance(formula, And):
        all_prefix: list[tuple[type, Var]] = []
        matrices = []
        for child in formula.children:
            prefix, matrix = _strip(child)
            all_prefix.extend(prefix)
            matrices.append(matrix)
        return all_prefix, And(tuple(matrices))
    if isinstance(formula, Or):
        all_prefix = []
        matrices = []
        for child in formula.children:
            prefix, matrix = _strip(child)
            all_prefix.extend(prefix)
            matrices.append(matrix)
        return all_prefix, Or(tuple(matrices))
    return [], formula


def simplify(formula: Formula) -> Formula:
    """Bottom-up constant folding and trivial-equality elimination.

    Removes ⊤/⊥ subformulas, collapses ``t = t`` to ⊤, flattens nested
    ∧/∨ and drops duplicate conjuncts/disjuncts. The result is logically
    equivalent to the input.
    """
    if isinstance(formula, (Atom, Top, Bottom)):
        return formula
    if isinstance(formula, Eq):
        if formula.left == formula.right:
            return TRUE
        return formula
    if isinstance(formula, Not):
        return not_(simplify(formula.body))
    if isinstance(formula, And):
        return and_(*(simplify(child) for child in formula.children))
    if isinstance(formula, Or):
        return or_(*(simplify(child) for child in formula.children))
    if isinstance(formula, Implies):
        premise = simplify(formula.premise)
        conclusion = simplify(formula.conclusion)
        if isinstance(premise, Top):
            return conclusion
        if isinstance(premise, Bottom) or isinstance(conclusion, Top):
            return TRUE
        if isinstance(conclusion, Bottom):
            return not_(premise)
        return Implies(premise, conclusion)
    if isinstance(formula, Iff):
        left = simplify(formula.left)
        right = simplify(formula.right)
        if isinstance(left, Top):
            return right
        if isinstance(right, Top):
            return left
        if isinstance(left, Bottom):
            return not_(right)
        if isinstance(right, Bottom):
            return not_(left)
        if left == right:
            return TRUE
        return Iff(left, right)
    if isinstance(formula, (Exists, Forall)):
        body = simplify(formula.body)
        if isinstance(body, (Top, Bottom)):
            # Valid because structures have non-empty universes (the
            # library enforces this, matching the usual FMT convention).
            return body
        return type(formula)(formula.var, body)
    raise FormulaError(f"unknown formula node {formula!r}")


def relativize(formula: Formula, guard_relation: str) -> Formula:
    """Relativize all quantifiers to a unary guard relation.

    ``∃x φ`` becomes ``∃x (G(x) ∧ φ)`` and ``∀x φ`` becomes
    ``∀x (G(x) → φ)``. Used to interpret a formula inside a definable
    substructure — e.g. inside a ball, for Gaifman's theorem (E11).
    """
    if isinstance(formula, (Atom, Eq, Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(relativize(formula.body, guard_relation))
    if isinstance(formula, And):
        return And(tuple(relativize(child, guard_relation) for child in formula.children))
    if isinstance(formula, Or):
        return Or(tuple(relativize(child, guard_relation) for child in formula.children))
    if isinstance(formula, Implies):
        return Implies(
            relativize(formula.premise, guard_relation),
            relativize(formula.conclusion, guard_relation),
        )
    if isinstance(formula, Iff):
        return Iff(
            relativize(formula.left, guard_relation),
            relativize(formula.right, guard_relation),
        )
    if isinstance(formula, Exists):
        guard = Atom(guard_relation, (formula.var,))
        return Exists(formula.var, And((guard, relativize(formula.body, guard_relation))))
    if isinstance(formula, Forall):
        guard = Atom(guard_relation, (formula.var,))
        return Forall(formula.var, Implies(guard, relativize(formula.body, guard_relation)))
    raise FormulaError(f"unknown formula node {formula!r}")
