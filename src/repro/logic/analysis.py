"""Static analysis of formulas: quantifier rank, free variables, validation.

Quantifier rank (Definition on slide 41 / §3.2 of the paper) is the
nesting depth of quantifiers; it is the syntactic measure that the
Ehrenfeucht–Fraïssé theorem ties to the number of game rounds.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import FormulaError, SignatureError
from repro.logic.signature import Signature
from repro.logic.syntax import (
    And,
    Atom,
    Bottom,
    Const,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Top,
    Var,
)

__all__ = [
    "quantifier_rank",
    "free_variables",
    "all_variables",
    "constants_of",
    "relations_of",
    "is_sentence",
    "require_sentence",
    "formula_size",
    "formula_depth",
    "subformulas",
    "validate",
]


def quantifier_rank(formula: Formula) -> int:
    """Return the quantifier rank qr(φ): maximal quantifier nesting depth.

    >>> from repro.logic.parser import parse
    >>> quantifier_rank(parse("forall x (exists w P(x, w) & exists y exists z R(x, y, z))"))
    3
    """
    if isinstance(formula, (Atom, Eq, Top, Bottom)):
        return 0
    if isinstance(formula, Not):
        return quantifier_rank(formula.body)
    if isinstance(formula, (And, Or)):
        return max((quantifier_rank(child) for child in formula.children), default=0)
    if isinstance(formula, Implies):
        return max(quantifier_rank(formula.premise), quantifier_rank(formula.conclusion))
    if isinstance(formula, Iff):
        return max(quantifier_rank(formula.left), quantifier_rank(formula.right))
    if isinstance(formula, (Exists, Forall)):
        return quantifier_rank(formula.body) + 1
    raise FormulaError(f"unknown formula node {formula!r}")


def free_variables(formula: Formula) -> frozenset[Var]:
    """Return the set of variables occurring free in ``formula``."""
    if isinstance(formula, Atom):
        return frozenset(term for term in formula.terms if isinstance(term, Var))
    if isinstance(formula, Eq):
        return frozenset(term for term in (formula.left, formula.right) if isinstance(term, Var))
    if isinstance(formula, (Top, Bottom)):
        return frozenset()
    if isinstance(formula, Not):
        return free_variables(formula.body)
    if isinstance(formula, (And, Or)):
        result: frozenset[Var] = frozenset()
        for child in formula.children:
            result |= free_variables(child)
        return result
    if isinstance(formula, Implies):
        return free_variables(formula.premise) | free_variables(formula.conclusion)
    if isinstance(formula, Iff):
        return free_variables(formula.left) | free_variables(formula.right)
    if isinstance(formula, (Exists, Forall)):
        return free_variables(formula.body) - {formula.var}
    raise FormulaError(f"unknown formula node {formula!r}")


def all_variables(formula: Formula) -> frozenset[Var]:
    """Return every variable occurring in ``formula``, free or bound."""
    result: set[Var] = set()
    for node in subformulas(formula):
        if isinstance(node, Atom):
            result.update(term for term in node.terms if isinstance(term, Var))
        elif isinstance(node, Eq):
            result.update(term for term in (node.left, node.right) if isinstance(term, Var))
        elif isinstance(node, (Exists, Forall)):
            result.add(node.var)
    return frozenset(result)


def constants_of(formula: Formula) -> frozenset[str]:
    """Return the names of all constant symbols occurring in ``formula``."""
    result: set[str] = set()
    for node in subformulas(formula):
        if isinstance(node, Atom):
            result.update(term.name for term in node.terms if isinstance(term, Const))
        elif isinstance(node, Eq):
            result.update(
                term.name for term in (node.left, node.right) if isinstance(term, Const)
            )
    return frozenset(result)


def relations_of(formula: Formula) -> frozenset[str]:
    """Return the names of all relation symbols occurring in ``formula``."""
    return frozenset(
        node.relation for node in subformulas(formula) if isinstance(node, Atom)
    )


def is_sentence(formula: Formula) -> bool:
    """Whether ``formula`` has no free variables (i.e. is a Boolean query)."""
    return not free_variables(formula)


def require_sentence(formula: Formula) -> Formula:
    """Return ``formula`` unchanged, raising if it has free variables."""
    free = free_variables(formula)
    if free:
        names = sorted(var.name for var in free)
        raise FormulaError(f"expected a sentence, but variables {names} occur free")
    return formula


def formula_size(formula: Formula) -> int:
    """Number of AST nodes — the ``k`` in the O(n^k) evaluation bound."""
    return sum(1 for _ in subformulas(formula))


def formula_depth(formula: Formula) -> int:
    """Height of the AST (atoms have depth 1).

    The AC⁰ circuit compiled from a query has depth bounded by this value,
    independently of the structure it is evaluated on — that is experiment
    E2's measured claim.
    """
    if isinstance(formula, (Atom, Eq, Top, Bottom)):
        return 1
    if isinstance(formula, Not):
        return 1 + formula_depth(formula.body)
    if isinstance(formula, (And, Or)):
        return 1 + max((formula_depth(child) for child in formula.children), default=0)
    if isinstance(formula, Implies):
        return 1 + max(formula_depth(formula.premise), formula_depth(formula.conclusion))
    if isinstance(formula, Iff):
        return 1 + max(formula_depth(formula.left), formula_depth(formula.right))
    if isinstance(formula, (Exists, Forall)):
        return 1 + formula_depth(formula.body)
    raise FormulaError(f"unknown formula node {formula!r}")


def subformulas(formula: Formula) -> Iterator[Formula]:
    """Yield every subformula of ``formula`` (including itself), preorder."""
    stack = [formula]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, Not):
            stack.append(node.body)
        elif isinstance(node, (And, Or)):
            stack.extend(node.children)
        elif isinstance(node, Implies):
            stack.append(node.premise)
            stack.append(node.conclusion)
        elif isinstance(node, Iff):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, (Exists, Forall)):
            stack.append(node.body)


def validate(formula: Formula, signature: Signature) -> None:
    """Check that ``formula`` is well-formed over ``signature``.

    Verifies that every atom uses a declared relation at the declared
    arity and that every constant is declared. Raises
    :class:`SignatureError` on the first violation.
    """
    for node in subformulas(formula):
        if isinstance(node, Atom):
            arity = signature.arity(node.relation)
            if len(node.terms) != arity:
                raise SignatureError(
                    f"atom {node!r} has {len(node.terms)} arguments, "
                    f"but {node.relation!r} has arity {arity}"
                )
    for name in constants_of(formula):
        if not signature.has_constant(name):
            raise SignatureError(f"constant {name!r} is not declared in {signature!r}")
