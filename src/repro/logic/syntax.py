"""Abstract syntax of first-order logic over relational signatures.

The AST is a small family of frozen dataclasses. Formulas are immutable
and hashable, so they can be memoization keys (the evaluator and the game
machinery rely on this). Connectives ``And``/``Or`` are n-ary, which keeps
the enormous conjunctions produced by Hintikka formulas shallow.

The public constructors perform light validation only; semantic questions
(does an atom match the signature's arity?) are checked when a formula
meets a structure, by :func:`repro.logic.analysis.validate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import FormulaError

__all__ = [
    "Term",
    "Var",
    "Const",
    "Formula",
    "Atom",
    "Eq",
    "Top",
    "Bottom",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Exists",
    "Forall",
    "TRUE",
    "FALSE",
]


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    """A first-order variable, identified by name."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise FormulaError(f"variable name must be a non-empty string, got {self.name!r}")

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant symbol (interpreted by structures as a fixed element)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise FormulaError(f"constant name must be a non-empty string, got {self.name!r}")

    def __repr__(self) -> str:
        return f"!{self.name}"


Term = Union[Var, Const]


def _check_term(term: object, where: str) -> None:
    if not isinstance(term, (Var, Const)):
        raise FormulaError(f"{where} expects Var/Const terms, got {term!r}")


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


class Formula:
    """Base class of all formula AST nodes.

    Provides operator sugar so formulas compose readably::

        Atom("E", (x, y)) & ~Eq(x, y)
    """

    __slots__ = ()

    def __and__(self, other: "Formula") -> "And":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Implies":
        return Implies(self, other)


def _check_formula(child: object, where: str) -> None:
    if not isinstance(child, Formula):
        raise FormulaError(f"{where} expects Formula children, got {child!r}")


@dataclass(frozen=True, repr=False)
class Atom(Formula):
    """A relational atom ``R(t1, ..., tn)``."""

    relation: str
    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.relation or not isinstance(self.relation, str):
            raise FormulaError(f"relation name must be a non-empty string, got {self.relation!r}")
        object.__setattr__(self, "terms", tuple(self.terms))
        for term in self.terms:
            _check_term(term, f"Atom({self.relation})")

    def __repr__(self) -> str:
        return f"{self.relation}({', '.join(map(repr, self.terms))})"


@dataclass(frozen=True, repr=False)
class Eq(Formula):
    """The equality atom ``t1 = t2`` (identity is always available)."""

    left: Term
    right: Term

    def __post_init__(self) -> None:
        _check_term(self.left, "Eq")
        _check_term(self.right, "Eq")

    def __repr__(self) -> str:
        return f"{self.left!r} = {self.right!r}"


@dataclass(frozen=True, repr=False)
class Top(Formula):
    """The true constant ⊤ (the empty conjunction)."""

    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True, repr=False)
class Bottom(Formula):
    """The false constant ⊥ (the empty disjunction)."""

    def __repr__(self) -> str:
        return "false"


#: Canonical instances — `Top()`/`Bottom()` compare equal to these anyway.
TRUE = Top()
FALSE = Bottom()


@dataclass(frozen=True, repr=False)
class Not(Formula):
    """Negation ``¬φ``."""

    body: Formula

    def __post_init__(self) -> None:
        _check_formula(self.body, "Not")

    def __repr__(self) -> str:
        return f"~({self.body!r})"


@dataclass(frozen=True, repr=False)
class And(Formula):
    """N-ary conjunction. ``And(())`` is equivalent to ⊤."""

    children: tuple[Formula, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", tuple(self.children))
        for child in self.children:
            _check_formula(child, "And")

    def __repr__(self) -> str:
        if not self.children:
            return "true"
        return "(" + " & ".join(map(repr, self.children)) + ")"


@dataclass(frozen=True, repr=False)
class Or(Formula):
    """N-ary disjunction. ``Or(())`` is equivalent to ⊥."""

    children: tuple[Formula, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", tuple(self.children))
        for child in self.children:
            _check_formula(child, "Or")

    def __repr__(self) -> str:
        if not self.children:
            return "false"
        return "(" + " | ".join(map(repr, self.children)) + ")"


@dataclass(frozen=True, repr=False)
class Implies(Formula):
    """Implication ``φ → ψ``."""

    premise: Formula
    conclusion: Formula

    def __post_init__(self) -> None:
        _check_formula(self.premise, "Implies")
        _check_formula(self.conclusion, "Implies")

    def __repr__(self) -> str:
        return f"({self.premise!r} -> {self.conclusion!r})"


@dataclass(frozen=True, repr=False)
class Iff(Formula):
    """Biconditional ``φ ↔ ψ``."""

    left: Formula
    right: Formula

    def __post_init__(self) -> None:
        _check_formula(self.left, "Iff")
        _check_formula(self.right, "Iff")

    def __repr__(self) -> str:
        return f"({self.left!r} <-> {self.right!r})"


@dataclass(frozen=True, repr=False)
class Exists(Formula):
    """Existential quantification ``∃x φ``."""

    var: Var
    body: Formula

    def __post_init__(self) -> None:
        if not isinstance(self.var, Var):
            raise FormulaError(f"Exists binds a Var, got {self.var!r}")
        _check_formula(self.body, "Exists")

    def __repr__(self) -> str:
        return f"exists {self.var!r}. ({self.body!r})"


@dataclass(frozen=True, repr=False)
class Forall(Formula):
    """Universal quantification ``∀x φ``."""

    var: Var
    body: Formula

    def __post_init__(self) -> None:
        if not isinstance(self.var, Var):
            raise FormulaError(f"Forall binds a Var, got {self.var!r}")
        _check_formula(self.body, "Forall")

    def __repr__(self) -> str:
        return f"forall {self.var!r}. ({self.body!r})"
