"""Bounded exhaustive enumeration of formulas.

Used by experiment E13 to validate the Ehrenfeucht–Fraïssé theorem in
the logic→game direction: if the solver says A ∼_{G_n} B, then A and B
must agree on *every* sentence of quantifier rank ≤ n — and we check
agreement on an exhaustively enumerated (size-bounded) family of them.

The enumeration is canonical: conjunctions/disjunctions are built from
ordered pairs, variables come from a fixed pool x1..xv, and syntactic
duplicates produced by the smart constructors are filtered out.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator

from repro.logic.analysis import free_variables, quantifier_rank
from repro.logic.builder import and_, not_, or_
from repro.logic.signature import Signature
from repro.logic.syntax import Atom, Eq, Exists, Forall, Formula, Var

__all__ = ["enumerate_formulas", "enumerate_sentences"]


def _atoms(signature: Signature, variables: tuple[Var, ...], with_equality: bool) -> list[Formula]:
    result: list[Formula] = []
    if with_equality:
        for left, right in itertools.combinations(variables, 2):
            result.append(Eq(left, right))
    for name in signature.relation_names():
        arity = signature.arity(name)
        for terms in itertools.product(variables, repeat=arity):
            result.append(Atom(name, terms))
    return result


def enumerate_formulas(
    signature: Signature,
    max_rank: int,
    max_connectives: int,
    num_variables: int = 2,
    with_equality: bool = True,
) -> Iterator[Formula]:
    """Yield all formulas over x1..x{num_variables} within the bounds.

    ``max_connectives`` bounds the number of ¬/∧/∨ applications (atoms are
    free); ``max_rank`` bounds the quantifier rank. The stream is
    deterministic and duplicate-free.
    """
    variables = tuple(Var(f"x{index + 1}") for index in range(num_variables))
    seen: set[Formula] = set()

    # layers[(rank, budget)] maps to the list of formulas built with
    # exactly that many quantifiers available and connective budget left.
    base = _atoms(signature, variables, with_equality)

    def emit(formula: Formula) -> Iterator[Formula]:
        if formula not in seen:
            seen.add(formula)
            yield formula

    # Build by connective budget, interleaving quantifiers (which consume
    # rank instead of connective budget).
    for atom in base:
        yield from emit(atom)

    for _ in range(max_connectives):
        new: list[Formula] = []
        pool = sorted(seen, key=repr)
        for formula in pool:
            candidate = not_(formula)
            if quantifier_rank(candidate) <= max_rank:
                for out in emit(candidate):
                    new.append(out)
                    yield out
        for left, right in itertools.combinations(pool, 2):
            for candidate in (and_(left, right), or_(left, right)):
                if quantifier_rank(candidate) <= max_rank:
                    for out in emit(candidate):
                        new.append(out)
                        yield out
        for formula in pool:
            for var in variables:
                if var not in free_variables(formula):
                    continue
                for node in (Exists, Forall):
                    candidate = node(var, formula)
                    if quantifier_rank(candidate) <= max_rank:
                        for out in emit(candidate):
                            new.append(out)
                            yield out
        if not new:
            break


def enumerate_sentences(
    signature: Signature,
    max_rank: int,
    max_connectives: int,
    num_variables: int = 2,
    with_equality: bool = True,
) -> Iterator[Formula]:
    """Yield only the *sentences* among :func:`enumerate_formulas`."""
    for formula in enumerate_formulas(
        signature, max_rank, max_connectives, num_variables, with_equality
    ):
        if not free_variables(formula):
            yield formula
