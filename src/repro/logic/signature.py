"""Relational signatures (vocabularies).

Following the convention of the paper (and of most of finite model theory),
signatures are *relational*: they contain relation symbols with fixed
arities and optionally constant symbols, but no function symbols. The
paper's Exercise 3.2 justifies this restriction — function symbols can be
replaced by their graph relations.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.errors import SignatureError

__all__ = ["Signature", "GRAPH", "ORDER", "SUCCESSOR", "SET", "EMPTY"]


@dataclass(frozen=True)
class Signature:
    """A finite relational signature.

    Parameters
    ----------
    relations:
        Mapping from relation-symbol name to arity (a positive integer).
    constants:
        Optional constant-symbol names. Constants are interpreted by
        structures as distinguished elements.

    Signatures are immutable and hashable, so they can be dictionary keys
    and safely shared between structures.

    >>> sig = Signature({"E": 2})
    >>> sig.arity("E")
    2
    """

    relations: Mapping[str, int]
    constants: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        rels = dict(self.relations)
        for name, arity in rels.items():
            if not isinstance(name, str) or not name:
                raise SignatureError(f"relation name must be a non-empty string, got {name!r}")
            if not isinstance(arity, int) or arity < 1:
                raise SignatureError(f"relation {name!r} must have positive integer arity, got {arity!r}")
        consts = frozenset(self.constants)
        overlap = consts & rels.keys()
        if overlap:
            raise SignatureError(f"symbols used both as relation and constant: {sorted(overlap)}")
        # Store an immutable snapshot so hashing/eq are well defined.
        object.__setattr__(self, "relations", _FrozenDict(rels))
        object.__setattr__(self, "constants", consts)

    # -- queries ---------------------------------------------------------

    def arity(self, name: str) -> int:
        """Return the arity of relation symbol ``name``.

        Raises :class:`SignatureError` if the symbol is not declared.
        """
        try:
            return self.relations[name]
        except KeyError:
            raise SignatureError(f"unknown relation symbol {name!r}; signature has {sorted(self.relations)}") from None

    def has_relation(self, name: str) -> bool:
        """Return whether ``name`` is a declared relation symbol."""
        return name in self.relations

    def has_constant(self, name: str) -> bool:
        """Return whether ``name`` is a declared constant symbol."""
        return name in self.constants

    def relation_names(self) -> tuple[str, ...]:
        """All relation names, in sorted order (deterministic)."""
        return tuple(sorted(self.relations))

    def max_arity(self) -> int:
        """The largest arity among the relations (0 for the empty signature)."""
        return max(self.relations.values(), default=0)

    def is_relational(self) -> bool:
        """Whether the signature is purely relational (no constants)."""
        return not self.constants

    # -- construction ----------------------------------------------------

    def extend(
        self,
        relations: Mapping[str, int] | None = None,
        constants: Iterable[str] = (),
    ) -> "Signature":
        """Return a new signature with extra symbols added.

        Raises :class:`SignatureError` if an added relation clashes with an
        existing one at a different arity.
        """
        merged = dict(self.relations)
        for name, arity in (relations or {}).items():
            if name in merged and merged[name] != arity:
                raise SignatureError(
                    f"relation {name!r} redeclared with arity {arity}, was {merged[name]}"
                )
            merged[name] = arity
        return Signature(merged, self.constants | frozenset(constants))

    def restrict(self, names: Iterable[str]) -> "Signature":
        """Return the sub-signature containing only the given relation names."""
        keep = set(names)
        unknown = keep - set(self.relations)
        if unknown:
            raise SignatureError(f"cannot restrict to unknown relations {sorted(unknown)}")
        return Signature(
            {name: arity for name, arity in self.relations.items() if name in keep},
            self.constants,
        )

    def __or__(self, other: "Signature") -> "Signature":
        """Union of two signatures (arities must agree on shared symbols)."""
        return self.extend(dict(other.relations), other.constants)

    def __contains__(self, name: str) -> bool:
        return name in self.relations or name in self.constants

    def __repr__(self) -> str:
        rels = ", ".join(f"{name}/{arity}" for name, arity in sorted(self.relations.items()))
        if self.constants:
            rels += "; " + ", ".join(sorted(self.constants))
        return f"Signature({{{rels}}})"


class _FrozenDict(dict):
    """A hashable dict used internally to freeze ``Signature.relations``."""

    def __hash__(self) -> int:  # type: ignore[override]
        return hash(frozenset(self.items()))

    def __reduce__(self) -> tuple:
        # Default dict-subclass pickling repopulates via the (blocked)
        # __setitem__; rebuild through the constructor instead.
        return (_FrozenDict, (dict(self),))

    def _blocked(self, *args: object, **kwargs: object) -> None:
        raise TypeError("Signature.relations is immutable")

    __setitem__ = __delitem__ = _blocked  # type: ignore[assignment]
    clear = pop = popitem = setdefault = update = _blocked  # type: ignore[assignment]


#: The signature of directed graphs: one binary edge relation ``E``.
GRAPH = Signature({"E": 2})

#: The signature of strict linear orders: one binary relation ``<``.
ORDER = Signature({"<": 2})

#: The signature of successor structures: one binary relation ``S``.
SUCCESSOR = Signature({"S": 2})

#: The empty signature — structures over it are bare sets (§3.2 of the paper).
SET = Signature({})

#: Alias for the empty signature.
EMPTY = SET
