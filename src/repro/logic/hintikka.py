"""Rank-n Hintikka (characteristic) formulas.

The rank-n Hintikka formula φⁿ_{A,ā} describes the tuple ā in A up to
n-round EF games: for every B and b̄,

    B ⊨ φⁿ_{A,ā}[b̄]   iff   the duplicator wins the n-round game from
                              position (ā, b̄).

In particular the *sentence* φⁿ_A is true in exactly the structures
n-game-equivalent to A, so when the spoiler wins G_n(A, B) it is a
concrete separating sentence of quantifier rank n — this is how the
"games are a complete method" statement of §3.2 becomes executable
(:func:`repro.games.separators.distinguishing_sentence`).

Construction (standard, e.g. Libkin's *Elements of Finite Model Theory*):

* rank 0: the conjunction of all atomic and negated atomic facts about ā
  (over the finitely many atoms in variables x₁..x_m);
* rank n+1:  ⋀_{a∈A} ∃x_{m+1} φⁿ_{A,āa}  ∧  ∀x_{m+1} ⋁_{a∈A} φⁿ_{A,āa}.

Sizes grow as a tower in n, so keep n ≤ 3 and structures small; children
are deduplicated, which collapses most of the blow-up on symmetric
structures.
"""

from __future__ import annotations

import itertools

from repro.errors import FormulaError
from repro.logic.builder import and_, exists, forall, not_, or_
from repro.logic.syntax import Atom, Eq, Formula, Var
from repro.structures.structure import Element, Structure

__all__ = ["hintikka_formula", "hintikka_sentence", "atomic_type"]


def _variables(count: int) -> tuple[Var, ...]:
    return tuple(Var(f"x{index + 1}") for index in range(count))


def atomic_type(structure: Structure, elements: tuple[Element, ...]) -> Formula:
    """The complete atomic type of ā: every (in)equality and relational fact.

    The conjunction of every atomic or negated atomic formula in the
    variables x₁..x_m that is true of ``elements`` in ``structure``. Two
    tuples have the same atomic type iff they are related by a partial
    isomorphism — this is the rank-0 Hintikka formula.
    """
    variables = _variables(len(elements))
    conjuncts: list[Formula] = []
    for i in range(len(elements)):
        for j in range(i + 1, len(elements)):
            fact = Eq(variables[i], variables[j])
            conjuncts.append(fact if elements[i] == elements[j] else not_(fact))
    for name in structure.signature.relation_names():
        arity = structure.signature.arity(name)
        for positions in itertools.product(range(len(elements)), repeat=arity):
            fact = Atom(name, tuple(variables[p] for p in positions))
            row = tuple(elements[p] for p in positions)
            conjuncts.append(fact if structure.holds(name, row) else not_(fact))
    return and_(*conjuncts)


def hintikka_formula(
    structure: Structure,
    elements: tuple[Element, ...],
    rank: int,
) -> Formula:
    """φ^rank_{A,ā}: the rank-``rank`` characteristic formula of ā in A.

    Free variables are x₁..x_m for m = len(elements). Raises
    :class:`FormulaError` for negative rank.
    """
    if rank < 0:
        raise FormulaError(f"rank must be non-negative, got {rank}")
    if structure.signature.constants:
        raise FormulaError("Hintikka formulas require a constant-free signature")
    cache: dict[tuple[tuple[Element, ...], int], Formula] = {}

    def build(tuple_: tuple[Element, ...], n: int) -> Formula:
        key = (tuple_, n)
        cached = cache.get(key)
        if cached is not None:
            return cached
        if n == 0:
            result = atomic_type(structure, tuple_)
        else:
            next_var = Var(f"x{len(tuple_) + 1}")
            children = {build(tuple_ + (a,), n - 1) for a in structure.universe}
            ordered = sorted(children, key=repr)
            go_out = and_(*(exists(next_var, child) for child in ordered))
            cover = forall(next_var, or_(*ordered))
            result = and_(go_out, cover)
        cache[key] = result
        return result

    return build(tuple(elements), rank)


def hintikka_sentence(structure: Structure, rank: int) -> Formula:
    """φ^rank_A: the sentence characterizing A up to ≡_rank.

    For every B: B ⊨ φ^rank_A iff the duplicator wins G_rank(A, B).
    """
    return hintikka_formula(structure, (), rank)
