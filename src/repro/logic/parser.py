"""A recursive-descent parser for first-order formulas.

Grammar (precedence from loosest to tightest)::

    formula  := iff
    iff      := implies ("<->" implies)*
    implies  := or ("->" implies)?            # right associative
    or       := and (("|" | "or") and)*
    and      := unary (("&" | "and") unary)*
    unary    := ("~" | "not") unary
              | ("exists" | "forall") ident+ "." formula     # dot: wide scope
              | ("exists" | "forall") ident+ unary           # no dot: tight
              | "(" formula ")"
              | "true" | "false"
              | ident "(" term ("," term)* ")"               # atom
              | term ("=" | "!=" | "<") term                 # infix atoms
    term     := ident

Identifiers name variables by default; pass ``constants={"c", ...}`` (or a
:class:`~repro.logic.signature.Signature` with constants) to have those
identifiers parse as constant symbols. ``x < y`` is sugar for the atom
``<(x, y)`` over the order signature.

Convention: in the binding list of a quantifier, bound variables are
*lowercase* identifiers; an identifier starting with an uppercase letter
ends the list (it begins a relation atom). Write ``exists x P(x)``,
not ``exists x p(x)`` — relation symbols used in the concrete syntax
should start with an uppercase letter (``<`` being the one infix
exception). The AST itself has no such restriction; only the parser's
disambiguation rule does.

>>> parse("forall x exists y E(x, y)")
forall x. (exists y. (E(x, y)))
"""

from __future__ import annotations

import re
from collections.abc import Iterable

from repro.errors import ParseError
from repro.logic.builder import and_, or_
from repro.logic.signature import Signature
from repro.logic.syntax import (
    FALSE,
    TRUE,
    Atom,
    Const,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Term,
    Var,
)

__all__ = ["parse", "parse_term"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<iff><->)
  | (?P<implies>->)
  | (?P<neq>!=)
  | (?P<op>[()=<,.&|~])
  | (?P<ident>[A-Za-z_][A-Za-z0-9_']*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"exists", "forall", "not", "and", "or", "true", "false"}


def _tokenize(text: str) -> list[tuple[str, str, int]]:
    tokens: list[tuple[str, str, int]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", pos)
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "ws":
            if kind == "ident" and value in _KEYWORDS:
                kind = value
            tokens.append((kind, value, pos))
        pos = match.end()
    tokens.append(("eof", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str, constants: frozenset[str]) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0
        self.constants = constants

    # -- token plumbing ----------------------------------------------------

    def peek(self) -> tuple[str, str, int]:
        return self.tokens[self.index]

    def advance(self) -> tuple[str, str, int]:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def accept(self, kind: str, value: str | None = None) -> bool:
        tok_kind, tok_value, _ = self.peek()
        if tok_kind == kind and (value is None or tok_value == value):
            self.index += 1
            return True
        return False

    def expect(self, kind: str, value: str | None = None) -> tuple[str, str, int]:
        tok_kind, tok_value, pos = self.peek()
        if tok_kind != kind or (value is not None and tok_value != value):
            want = value if value is not None else kind
            raise ParseError(f"expected {want!r}, found {tok_value or 'end of input'!r}", pos)
        return self.advance()

    # -- grammar -------------------------------------------------------------

    def formula(self) -> Formula:
        return self.iff()

    def iff(self) -> Formula:
        left = self.implies()
        while self.accept("iff"):
            right = self.implies()
            left = Iff(left, right)
        return left

    def implies(self) -> Formula:
        left = self.or_()
        if self.accept("implies"):
            right = self.implies()
            return Implies(left, right)
        return left

    def or_(self) -> Formula:
        parts = [self.and_()]
        while self.accept("op", "|") or self.accept("or"):
            parts.append(self.and_())
        if len(parts) == 1:
            return parts[0]
        return or_(*parts)

    def and_(self) -> Formula:
        parts = [self.unary()]
        while self.accept("op", "&") or self.accept("and"):
            parts.append(self.unary())
        if len(parts) == 1:
            return parts[0]
        return and_(*parts)

    def unary(self) -> Formula:
        if self.accept("op", "~") or self.accept("not"):
            return Not(self.unary())
        tok_kind, tok_value, _ = self.peek()
        if tok_kind in ("exists", "forall"):
            return self.quantified()
        return self.atomic()

    def quantified(self) -> Formula:
        kind, _, pos = self.advance()
        names: list[str] = []
        # Binding list: lowercase identifiers. An identifier followed by
        # '=', '!=' or '<' starts the body (an infix atom) instead, and an
        # uppercase identifier is a relation atom — see module docstring.
        while True:
            tok_kind, tok_value, _ = self.peek()
            if tok_kind != "ident" or not tok_value[0].islower():
                break
            next_kind, next_value, _ = self.tokens[self.index + 1]
            if (next_kind, next_value) in {("op", "="), ("neq", "!="), ("op", "<")}:
                break
            names.append(self.advance()[1])
        if not names:
            raise ParseError(f"{kind} requires at least one variable", pos)
        # A dot makes the quantifier scope extend as far right as possible;
        # without it, the body is a single unary formula.
        body = self.formula() if self.accept("op", ".") else self.unary()
        node = Exists if kind == "exists" else Forall
        result = body
        for name in reversed(names):
            result = node(Var(name), result)
        return result

    def atomic(self) -> Formula:
        tok_kind, tok_value, pos = self.peek()
        if self.accept("op", "("):
            inner = self.formula()
            self.expect("op", ")")
            return self._maybe_infix_atom_continuation(inner)
        if self.accept("true"):
            return TRUE
        if self.accept("false"):
            return FALSE
        if tok_kind == "ident":
            self.advance()
            if self.accept("op", "("):
                terms = [self.term()]
                while self.accept("op", ","):
                    terms.append(self.term())
                self.expect("op", ")")
                return Atom(tok_value, tuple(terms))
            left = self._make_term(tok_value)
            return self._infix_atom(left)
        raise ParseError(f"expected a formula, found {tok_value or 'end of input'!r}", pos)

    def _maybe_infix_atom_continuation(self, inner: Formula) -> Formula:
        # Nothing to do: "(t)" as a term is not in the grammar, so a
        # parenthesized expression is always a formula.
        return inner

    def _infix_atom(self, left: Term) -> Formula:
        if self.accept("op", "="):
            return Eq(left, self.term())
        if self.accept("neq"):
            return Not(Eq(left, self.term()))
        if self.accept("op", "<"):
            return Atom("<", (left, self.term()))
        _, tok_value, pos = self.peek()
        raise ParseError(
            f"expected '=', '!=' or '<' after term, found {tok_value or 'end of input'!r}", pos
        )

    def term(self) -> Term:
        _, tok_value, _ = self.expect("ident")
        return self._make_term(tok_value)

    def _make_term(self, name: str) -> Term:
        if name in self.constants:
            return Const(name)
        return Var(name)


def _constant_set(constants: Iterable[str] | Signature | None) -> frozenset[str]:
    if constants is None:
        return frozenset()
    if isinstance(constants, Signature):
        return constants.constants
    return frozenset(constants)


def parse(text: str, constants: Iterable[str] | Signature | None = None) -> Formula:
    """Parse ``text`` into a :class:`Formula`.

    Parameters
    ----------
    text:
        The formula in the concrete syntax described in the module docstring.
    constants:
        Identifiers to treat as constant symbols — either an iterable of
        names or a :class:`Signature` (whose constants are used).
    """
    parser = _Parser(text, _constant_set(constants))
    result = parser.formula()
    kind, value, pos = parser.peek()
    if kind != "eof":
        raise ParseError(f"unexpected trailing input {value!r}", pos)
    return result


def parse_term(text: str, constants: Iterable[str] | Signature | None = None) -> Term:
    """Parse a single term (a variable or constant name)."""
    parser = _Parser(text, _constant_set(constants))
    result = parser.term()
    kind, value, pos = parser.peek()
    if kind != "eof":
        raise ParseError(f"unexpected trailing input {value!r}", pos)
    return result
