"""First-order logic over relational signatures (S1).

Syntax, a parser, a builder DSL, and static analysis (quantifier rank,
free variables), plus semantics-preserving transformations.
"""

from repro.logic.analysis import (
    formula_depth,
    formula_size,
    free_variables,
    is_sentence,
    quantifier_rank,
    require_sentence,
    validate,
)
from repro.logic.builder import (
    C,
    V,
    and_,
    atom,
    distinct,
    eq,
    exists,
    exists_many,
    forall,
    forall_many,
    iff,
    implies,
    neq,
    not_,
    or_,
    variables,
)
from repro.logic.parser import parse
from repro.logic.signature import EMPTY, GRAPH, ORDER, SET, SUCCESSOR, Signature
from repro.logic.syntax import (
    FALSE,
    TRUE,
    And,
    Atom,
    Bottom,
    Const,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Term,
    Top,
    Var,
)
from repro.logic.transform import (
    simplify,
    standardize_apart,
    substitute,
    to_nnf,
    to_prenex,
)

__all__ = [
    # signature
    "Signature", "GRAPH", "ORDER", "SUCCESSOR", "SET", "EMPTY",
    # syntax
    "Formula", "Atom", "Eq", "Top", "Bottom", "Not", "And", "Or",
    "Implies", "Iff", "Exists", "Forall", "Var", "Const", "Term",
    "TRUE", "FALSE",
    # builder
    "V", "C", "variables", "atom", "eq", "neq", "not_", "and_", "or_",
    "implies", "iff", "exists", "forall", "exists_many", "forall_many",
    "distinct",
    # parser
    "parse",
    # analysis
    "quantifier_rank", "free_variables", "is_sentence", "require_sentence",
    "formula_size", "formula_depth", "validate",
    # transforms
    "substitute", "standardize_apart", "to_nnf", "to_prenex", "simplify",
]
