"""The query zoo (S9): canonical queries, the §3.3 reduction tricks, and
conjunctive queries with the Chandra–Merlin toolbox."""

from repro.queries.conjunctive import ConjunctiveQuery, homomorphism, is_homomorphic
from repro.queries.zoo import (
    acyclicity_query,
    connectivity_query,
    connectivity_via_tc,
    even_query,
    fo_boolean_corpus,
    fo_graph_corpus,
    order_successor_formula,
    order_to_acyclicity_graph,
    order_to_connectivity_graph,
    tc_query,
)

__all__ = [
    "even_query", "connectivity_query", "acyclicity_query", "tc_query",
    "order_successor_formula", "order_to_connectivity_graph",
    "order_to_acyclicity_graph", "connectivity_via_tc",
    "fo_graph_corpus", "fo_boolean_corpus",
    "ConjunctiveQuery", "homomorphism", "is_homomorphic",
]
