"""Conjunctive queries and the Chandra–Merlin theorem.

The survey's audience is database theoreticians, and the first theorem
such an audience meets after "FO = relational algebra" is Chandra–Merlin:
containment, equivalence, and minimization of conjunctive queries (the
SELECT–PROJECT–JOIN fragment) are decidable via *homomorphisms of
canonical databases*. This module implements the full circle:

* :class:`ConjunctiveQuery` — head variables + body atoms, parseable
  from rule syntax (``q(X, Y) :- E(X, Z), E(Z, Y).``);
* evaluation by homomorphism enumeration (and, for cross-checking, a
  compilation to an FO formula run through the standard evaluator);
* :func:`homomorphism` — structure homomorphisms with distinguished
  elements;
* containment (Q₁ ⊆ Q₂ iff canonical(Q₂) → canonical(Q₁)), equivalence,
  and minimization to the core by atom deletion.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.errors import FormulaError
from repro.fixpoint.datalog import DVar, Literal, parse_program
from repro.logic.builder import and_, exists_many
from repro.logic.signature import Signature
from repro.logic.syntax import Atom as FOAtom, Formula, Var as FOVar
from repro.structures.structure import Element, Structure

__all__ = ["ConjunctiveQuery", "homomorphism", "is_homomorphic"]


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query: head(x̄) :- R₁(ū₁), ..., R_k(ū_k).

    ``head`` lists the answer variables (:class:`DVar`); body atoms are
    positive :class:`Literal` objects whose arguments are variables or
    constants. Every head variable must occur in the body (safety).
    """

    head: tuple[DVar, ...]
    body: tuple[Literal, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "head", tuple(self.head))
        object.__setattr__(self, "body", tuple(self.body))
        if not self.body:
            raise FormulaError("a conjunctive query needs at least one body atom")
        for literal in self.body:
            if literal.negated:
                raise FormulaError(f"conjunctive queries are negation-free: {literal!r}")
        body_vars = self.variables()
        for var in self.head:
            if not isinstance(var, DVar):
                raise FormulaError(f"head entries must be variables, got {var!r}")
            if var not in body_vars:
                raise FormulaError(f"unsafe head variable {var.name!r}: not in the body")

    # -- construction -----------------------------------------------------

    @staticmethod
    def from_rule(text: str) -> "ConjunctiveQuery":
        """Parse one rule in Datalog syntax into a conjunctive query.

        >>> path2 = ConjunctiveQuery.from_rule("q(X, Y) :- E(X, Z), E(Z, Y).")
        """
        program = parse_program(text)
        if len(program.rules) != 1:
            raise FormulaError("expected exactly one rule")
        rule = program.rules[0]
        head_vars = []
        for argument in rule.head.arguments:
            if not isinstance(argument, DVar):
                raise FormulaError(
                    f"head argument {argument!r} is a constant; use a variable plus "
                    "an equality atom in the body instead"
                )
            head_vars.append(argument)
        return ConjunctiveQuery(tuple(head_vars), rule.body)

    # -- structure views ------------------------------------------------------

    def variables(self) -> frozenset[DVar]:
        result: set[DVar] = set()
        for literal in self.body:
            result |= literal.variables()
        return frozenset(result)

    def constants(self) -> frozenset:
        result: set = set()
        for literal in self.body:
            result |= {arg for arg in literal.arguments if not isinstance(arg, DVar)}
        return frozenset(result)

    def signature(self) -> Signature:
        relations: dict[str, int] = {}
        for literal in self.body:
            known = relations.setdefault(literal.predicate, len(literal.arguments))
            if known != len(literal.arguments):
                raise FormulaError(f"predicate {literal.predicate!r} used at two arities")
        return Signature(relations)

    def canonical_structure(self) -> tuple[Structure, tuple[Element, ...]]:
        """The canonical (frozen) database and its distinguished tuple.

        Universe = variables (as their names) ∪ constants; one tuple per
        body atom. Returns (structure, head-elements). Chandra–Merlin
        works with homomorphisms of these.
        """
        universe: list[Element] = [var.name for var in sorted(self.variables(), key=lambda v: v.name)]
        universe += sorted(self.constants(), key=repr)
        relations: dict[str, list[tuple]] = {}
        for literal in self.body:
            row = tuple(
                arg.name if isinstance(arg, DVar) else arg for arg in literal.arguments
            )
            relations.setdefault(literal.predicate, []).append(row)
        structure = Structure(self.signature(), universe, relations)
        return structure, tuple(var.name for var in self.head)

    def to_formula(self) -> Formula:
        """The FO rendering: ∃(non-head vars) ⋀ atoms — for cross-checks."""
        body = and_(
            *(
                FOAtom(
                    literal.predicate,
                    tuple(
                        FOVar(arg.name) if isinstance(arg, DVar) else FOVar(f"_c_{arg}")
                        for arg in literal.arguments
                    ),
                )
                for literal in self.body
            )
        )
        if self.constants():
            raise FormulaError(
                "to_formula supports constant-free queries (constants would need "
                "signature constants); evaluate() handles constants directly"
            )
        head_names = {var.name for var in self.head}
        bound = sorted(
            (var.name for var in self.variables() if var.name not in head_names),
        )
        return exists_many([FOVar(name) for name in bound], body)

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, structure: Structure) -> frozenset[tuple[Element, ...]]:
        """All answers: images of the head under homomorphisms body → structure."""
        answers: set[tuple[Element, ...]] = set()
        for binding in self._homomorphisms_into(structure):
            answers.add(tuple(binding[var] for var in self.head))
        return frozenset(answers)

    def boolean(self, structure: Structure) -> bool:
        """Whether some homomorphism exists (Boolean CQ semantics)."""
        for _ in self._homomorphisms_into(structure):
            return True
        return False

    def _homomorphisms_into(self, structure: Structure) -> Iterable[dict[DVar, Element]]:
        # Order atoms to bind variables early (simple greedy join order:
        # prefer atoms sharing variables with what is already bound).
        remaining = list(self.body)
        ordered: list[Literal] = []
        bound: set[DVar] = set()
        while remaining:
            best_index = max(
                range(len(remaining)),
                key=lambda index: len(remaining[index].variables() & bound),
            )
            chosen = remaining.pop(best_index)
            ordered.append(chosen)
            bound |= chosen.variables()

        def extend(index: int, binding: dict[DVar, Element]) -> Iterable[dict[DVar, Element]]:
            if index == len(ordered):
                yield dict(binding)
                return
            literal = ordered[index]
            for row in structure.tuples(literal.predicate):
                candidate = dict(binding)
                if self._match(literal, row, candidate):
                    yield from extend(index + 1, candidate)

        yield from extend(0, {})

    @staticmethod
    def _match(literal: Literal, row: tuple, binding: dict[DVar, Element]) -> bool:
        for arg, value in zip(literal.arguments, row):
            if isinstance(arg, DVar):
                known = binding.get(arg)
                if known is None:
                    binding[arg] = value
                elif known != value:
                    return False
            elif arg != value:
                return False
        return True

    # -- Chandra–Merlin ----------------------------------------------------------

    def contained_in(self, other: "ConjunctiveQuery") -> bool:
        """Q ⊆ Q' iff there is a homomorphism canonical(Q') → canonical(Q)
        carrying head to head (Chandra–Merlin)."""
        if len(self.head) != len(other.head):
            raise FormulaError("containment requires equal head arities")
        mine, my_head = self.canonical_structure()
        theirs, their_head = other.canonical_structure()
        return homomorphism(theirs, mine, dict(zip(their_head, my_head)), fixed=self.constants() | other.constants()) is not None

    def equivalent_to(self, other: "ConjunctiveQuery") -> bool:
        """Semantic equivalence, decided by two containment checks."""
        return self.contained_in(other) and other.contained_in(self)

    def minimize(self) -> "ConjunctiveQuery":
        """The core: a minimal equivalent subquery, by atom deletion.

        Repeatedly drop a body atom if the smaller query is still
        equivalent; the fixpoint is unique up to isomorphism (the core of
        the canonical database).
        """
        current = self
        changed = True
        while changed:
            changed = False
            for index in range(len(current.body)):
                body = current.body[:index] + current.body[index + 1 :]
                if not body:
                    continue
                try:
                    candidate = ConjunctiveQuery(current.head, body)
                except FormulaError:
                    continue  # dropping this atom would unsafely free a head variable
                if candidate.equivalent_to(current):
                    current = candidate
                    changed = True
                    break
        return current

    def __repr__(self) -> str:
        head = ", ".join(var.name for var in self.head)
        body = ", ".join(map(repr, self.body))
        return f"q({head}) :- {body}."


def homomorphism(
    source: Structure,
    target: Structure,
    seed_mapping: Mapping[Element, Element] | None = None,
    fixed: frozenset = frozenset(),
) -> dict[Element, Element] | None:
    """A homomorphism source → target extending ``seed_mapping``.

    A homomorphism maps every tuple of every relation of ``source`` to a
    tuple of the same relation of ``target`` (it need not be injective).
    Elements in ``fixed`` must map to themselves (constants). Returns a
    full mapping or None. Backtracking; exponential in the worst case
    (the problem is NP-complete), fine on canonical databases of
    realistic queries.
    """
    if set(source.signature.relations) - set(target.signature.relations):
        return None
    mapping: dict[Element, Element] = dict(seed_mapping or {})
    for element in fixed:
        if element in source:
            if element not in target:
                return None
            if mapping.get(element, element) != element:
                return None
            mapping[element] = element

    incidence: dict[Element, list[tuple[str, tuple]]] = {}
    for name in source.signature.relation_names():
        for row in source.relations[name]:
            for element in row:
                incidence.setdefault(element, []).append((name, row))

    order = sorted(
        (element for element in source.universe if element not in mapping),
        key=lambda element: -len(incidence.get(element, ())),
    )

    def consistent(element: Element) -> bool:
        for name, row in incidence.get(element, ()):
            if all(value in mapping for value in row):
                image = tuple(mapping[value] for value in row)
                if not target.holds(name, image):
                    return False
        return True

    for element in list(mapping):
        if element in source and not consistent(element):
            return None

    def backtrack(index: int) -> bool:
        if index == len(order):
            return True
        element = order[index]
        for candidate in target.universe:
            mapping[element] = candidate
            if consistent(element) and backtrack(index + 1):
                return True
            del mapping[element]
        return False

    if backtrack(0):
        return dict(mapping)
    return None


def is_homomorphic(source: Structure, target: Structure) -> bool:
    """Whether any homomorphism source → target exists."""
    return homomorphism(source, target) is not None
