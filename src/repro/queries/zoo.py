"""The paper's canonical queries and reduction tricks, in one place.

Contains:

* the non-FO queries every tool is aimed at — EVEN, connectivity,
  acyclicity, transitive closure, same-generation;
* the §3.3 reduction constructions from linear orders to graphs (the
  two figures of the paper), *expressed as FO queries over orders* and
  executed, with the parity correspondences they prove;
* an FO query corpus used by the locality experiments: a spread of
  definable queries that must pass every locality check.
"""

from __future__ import annotations

from repro.eval.evaluator import BooleanQuery, Query
from repro.fixpoint.lfp import has_directed_cycle, transitive_closure
from repro.logic.builder import V, and_, atom, exists, not_, or_
from repro.logic.parser import parse
from repro.structures.gaifman import is_connected
from repro.structures.structure import Element, Structure

__all__ = [
    "even_query",
    "connectivity_query",
    "acyclicity_query",
    "tc_query",
    "order_successor_formula",
    "order_to_connectivity_graph",
    "order_to_acyclicity_graph",
    "connectivity_via_tc",
    "fo_graph_corpus",
    "fo_boolean_corpus",
]


# ---------------------------------------------------------------------------
# The non-FO queries
# ---------------------------------------------------------------------------


def even_query(structure: Structure) -> bool:
    """EVEN(σ): the domain has even cardinality (§3.2)."""
    return structure.size % 2 == 0


def connectivity_query(structure: Structure) -> bool:
    """CONN: the (Gaifman) graph is connected (§3.3)."""
    return is_connected(structure)


def acyclicity_query(structure: Structure) -> bool:
    """ACYCL: the directed graph has no cycle (§3.3)."""
    return not has_directed_cycle(structure)


def tc_query(structure: Structure) -> frozenset[tuple[Element, Element]]:
    """TC: the transitive closure of the edge relation, as a binary query."""
    return transitive_closure(structure)


# ---------------------------------------------------------------------------
# Order vocabulary: FO-definable positions in a linear order
# ---------------------------------------------------------------------------


def order_successor_formula(x: str = "x", y: str = "y"):
    """succ(x, y) over <: y is the immediate successor of x."""
    z = V("z")
    vx, vy = V(x), V(y)
    between = exists(z, and_(atom("<", vx, z), atom("<", z, vy)))
    return and_(atom("<", vx, vy), not_(between))


def _order_position_formulas():
    """first, last, and successor as FO formula builders.

    The bound variables are fresh names (``_b``, ``_a``, ``_m``) so the
    builders can safely be applied to any of the free variables x, y, z.
    """
    below, above, mid = V("_b"), V("_a"), V("_m")

    def first(var):
        return not_(exists(below, atom("<", below, var)))

    def last(var):
        return not_(exists(above, atom("<", var, above)))

    def succ(a, b):
        return and_(
            atom("<", a, b),
            not_(exists(mid, and_(atom("<", a, mid), atom("<", mid, b)))),
        )

    return first, last, succ


def order_to_connectivity_graph(order: Structure) -> Structure:
    """The paper's first figure: 2nd-successor edges plus two wrap edges.

    For each element an edge to its 2nd successor; plus an edge from the
    last element to the 2nd element and from the penultimate to the
    first. The construction is FO (the defining formula is evaluated by
    the standard evaluator), and the resulting graph is connected iff
    the order has odd size — the reduction that kills CONN (E5).
    """
    from repro.engine import engine_answers as answers
    from repro.logic.signature import GRAPH

    x, y, z, u, v = V("x"), V("y"), V("z"), V("u"), V("v")
    first, last, succ = _order_position_formulas()
    second_succ = exists(z, and_(succ(x, z), succ(z, y)))
    second = exists(u, and_(first(u), succ(u, y)))
    penultimate = exists(v, and_(last(v), succ(x, v)))
    edge = or_(
        second_succ,
        and_(last(x), second),
        and_(penultimate, first(y)),
    )
    pairs = answers(order, edge, free_order=(x, y))
    symmetric = pairs | frozenset((b, a) for a, b in pairs)
    return Structure(GRAPH, order.universe, {"E": symmetric})


def order_to_acyclicity_graph(order: Structure) -> Structure:
    """The paper's second figure: 2nd-successor edges plus one back edge.

    Edges to 2nd successors, plus last → first. Acyclic iff the order
    has even size — the reduction that kills ACYCL (E5).
    """
    from repro.engine import engine_answers as answers
    from repro.logic.signature import GRAPH

    x, y, z = V("x"), V("y"), V("z")
    first, last, succ = _order_position_formulas()
    second_succ = exists(z, and_(succ(x, z), succ(z, y)))
    edge = or_(second_succ, and_(last(x), first(y)))
    pairs = answers(order, edge, free_order=(x, y))
    return Structure(GRAPH, order.universe, {"E": pairs})


def connectivity_via_tc(structure: Structure) -> bool:
    """CONN from TC, the paper's third trick: symmetrize, close, check complete.

    Add an edge (x, y) for each edge (y, x), compute the transitive
    closure, and test whether the result relates every pair — so if TC
    were FO-definable, CONN would be too (E5).
    """
    edges = structure.tuples("E")
    symmetric = edges | frozenset((b, a) for a, b in edges)
    doubled = Structure(structure.signature, structure.universe, {"E": symmetric})
    closure = transitive_closure(doubled)
    for a in structure.universe:
        for b in structure.universe:
            if a != b and (a, b) not in closure:
                return False
    return True


# ---------------------------------------------------------------------------
# An FO corpus for the locality experiments
# ---------------------------------------------------------------------------


def fo_graph_corpus() -> list[Query]:
    """FO-definable graph queries of arities 1 and 2.

    Every query here must pass every locality check (Gaifman, BNDP) at a
    suitable radius — the positive half of experiments E6/E7/E9.
    """
    x, y = V("x"), V("y")
    return [
        Query(parse("exists y E(x, y)"), (x,), name="has-out-edge"),
        Query(parse("exists y E(y, x)"), (x,), name="has-in-edge"),
        Query(parse("E(x, x)"), (x,), name="has-loop"),
        Query(
            parse("exists y exists z (E(x, y) & E(y, z) & E(z, x))"),
            (x,),
            name="on-triangle",
        ),
        Query(
            parse("forall y (~E(x, y) | E(y, x))"),
            (x,),
            name="out-edges-reciprocated",
        ),
        Query(parse("E(x, y)"), (x, y), name="edge"),
        Query(parse("E(x, y) & E(y, x)"), (x, y), name="mutual-edge"),
        Query(
            parse("exists z (E(x, z) & E(z, y)) & ~E(x, y)"),
            (x, y),
            name="distance-two",
        ),
        Query(
            parse("~(x = y) & forall z ((~E(x, z) | E(y, z)))"),
            (x, y),
            name="out-dominated",
        ),
    ]


def fo_boolean_corpus() -> list[BooleanQuery]:
    """FO-definable Boolean graph queries for the Hanf experiments (E8/E9)."""
    return [
        BooleanQuery(parse("exists x E(x, x)"), name="has-some-loop"),
        BooleanQuery(parse("exists x exists y (E(x, y) & E(y, x))"), name="has-mutual-pair"),
        BooleanQuery(
            parse("forall x exists y (E(x, y) | E(y, x))"), name="no-isolated-node"
        ),
        BooleanQuery(
            parse("exists x exists y exists z (E(x, y) & E(y, z) & E(z, x))"),
            name="has-triangle",
        ),
        BooleanQuery(
            parse("exists x (exists y E(x, y) & forall y forall z (~E(x, y) | ~E(x, z) | y = z))"),
            name="has-out-degree-exactly-one",
        ),
    ]
