"""Delta-maintained locality censuses.

The census {type id: #elements realizing it} is the most expensive
derived index in the system — O(n) ball keys plus registry probes.  But
the neighborhood map is itself local: inserting or deleting a tuple t
can only change N_r(b) for elements b within distance r of set(t) in the
*final* Gaifman graph.

Soundness of the dirty set.  Let S be the union of set(t) over the
applied deltas and let B be the radius-r ball around S in the current
(post-delta) graph.  Claim: any element b whose r-neighborhood differs
between the recorded state and now satisfies d_now(S, b) ≤ r.  For a
single delta this is the usual maintenance lemma: an insert only adds
edges inside set(t), so any newly-reachable-within-r element is within r
of S afterwards; for a delete, take a pre-delete path from set(t) to b
of length ≤ r witnessing the change — its suffix after the last visit to
set(t) avoids the removed edges among set(t) except possibly at its
first vertex, so it survives and again d_now(S, b) ≤ r.  For a
*sequence* of deltas, consider any intermediate-state path of length ≤ r
from some touched tuple to b: the first edge of it missing in the final
graph was removed by a later delta whose endpoints are both in S, and
the surviving suffix from that endpoint bounds d_final(S, b) ≤ r.
Elements outside B keep both their ball and their incident rows, hence
their ball key, hence their type.

The index therefore recomputes ball keys for |B| elements instead of n —
on bounded-degree structures |B| is a constant independent of n.
"""

from __future__ import annotations

from collections import Counter, OrderedDict

from repro.structures.structure import Structure, _sort_key
from repro.telemetry.metrics import counter as _counter
from repro.telemetry.tracer import is_enabled as _telemetry_enabled
from repro.telemetry.tracer import span as _span

__all__ = ["CensusIndex", "CENSUS_RECORDS_LIMIT"]

#: How many (structure uid, radius) census records an index retains.
CENSUS_RECORDS_LIMIT = 32


class _CensusRecord:
    __slots__ = ("epoch", "census", "types")

    def __init__(self, epoch: int, census: Counter, types: dict) -> None:
        self.epoch = epoch
        self.census = census
        self.types = types  # element -> type id, the per-element ball index


class CensusIndex:
    """Maintained censuses keyed by (structure uid, radius).

    Content-hash memoization (the registry's ``census_memo``) answers
    "have I seen this exact structure before"; this index answers the
    incremental question — "I censused an *earlier epoch* of this very
    object; which elements can have changed type?".  Records keep the
    per-element type assignment so the census Counter can be adjusted
    type-by-type.
    """

    def __init__(self, capacity: int = CENSUS_RECORDS_LIMIT) -> None:
        self.capacity = capacity
        self._records: OrderedDict[tuple[int, int], _CensusRecord] = OrderedDict()
        self.patched = 0
        self.reused = 0
        self.dirty_elements = 0

    def record(
        self, structure: Structure, radius: int, census: Counter, types: dict
    ) -> None:
        """Remember a freshly computed census with its type assignment."""
        key = (structure.uid, radius)
        self._records[key] = _CensusRecord(structure.epoch, Counter(census), dict(types))
        self._records.move_to_end(key)
        while len(self._records) > self.capacity:
            self._records.popitem(last=False)

    def patch(self, structure: Structure, radius: int, registry) -> Counter | None:
        """Bring the record up to ``structure.epoch`` and return the census.

        Returns ``None`` when there is no usable record (never censused,
        or the structure's delta log no longer reaches back to the
        recorded epoch) — the caller computes from scratch and calls
        :meth:`record`.
        """
        from repro.locality.neighborhoods import ball_key
        from repro.structures.gaifman import neighborhood

        key = (structure.uid, radius)
        record = self._records.get(key)
        if record is None:
            return None
        deltas = structure.deltas_since(record.epoch)
        if deltas is None:
            del self._records[key]
            return None
        self._records.move_to_end(key)
        if not deltas:
            self.reused += 1
            return Counter(record.census)
        seeds: set = set()
        for _, _, row in deltas:
            seeds.update(row)
        dirty = _dirty_ball(structure, seeds, radius)
        with _span("incremental.census.patch") as patch_span:
            patch_span.set("radius", radius).set("deltas", len(deltas))
            patch_span.set("dirty", len(dirty)).set("size", structure.size)
            census = record.census
            for element in sorted(dirty, key=_sort_key):
                key_ = ball_key(structure, (element,), radius)
                new_type = registry.type_of_keyed(
                    key_,
                    lambda element=element: neighborhood(structure, (element,), radius),
                )
                old_type = record.types[element]
                if new_type == old_type:
                    continue
                census[old_type] -= 1
                if census[old_type] <= 0:
                    del census[old_type]
                census[new_type] += 1
                record.types[element] = new_type
        record.epoch = structure.epoch
        self.patched += 1
        self.dirty_elements += len(dirty)
        if _telemetry_enabled():
            _counter("incremental.census.patched").inc()
            _counter("incremental.census.dirty_elements").inc(len(dirty))
        return Counter(census)


def _dirty_ball(structure: Structure, seeds: set, radius: int) -> set:
    """Radius-r ball around the touched elements in the current graph."""
    from collections import deque

    from repro.structures.gaifman import gaifman_adjacency

    adjacency = gaifman_adjacency(structure)
    distances = {element: 0 for element in seeds}
    queue = deque(seeds)
    while queue:
        current = queue.popleft()
        depth = distances[current]
        if depth >= radius:
            continue
        for neighbor in adjacency[current]:
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                queue.append(neighbor)
    return set(distances)
