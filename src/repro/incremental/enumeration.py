"""Constant-delay answer enumeration, after Kazana–Segoufin (1105.3583).

The enumeration contract: a *preprocessing* phase whose cost may depend
on the structure, then answers are produced one at a time with a delay
that does not grow with the answer count.  :class:`AnswerStream` wraps a
generator and measures exactly that — ``preprocessing_seconds`` once and
``delays`` per ``next()`` — so tests and benchmarks assert the shape of
the guarantee instead of trusting it.

Three strategies, tried in order by :func:`plan_enumeration`:

* ``atom`` — the query is a single atom over distinct variables: stream
  the relation's rows (reordered to sorted-variable columns).  O(1)
  delay, no evaluation at all.
* ``types`` — one or two free variables on a bounded-degree,
  constant-free structure: Gaifman locality says ā ↦ φ(ā) is constant
  on each radius-``(7^qr − 1)/2`` neighborhood isomorphism type, so
  preprocessing partitions by ball key and evaluates *one
  representative per class*; enumeration then streams the members of
  the satisfying classes.  Linear preprocessing, O(1) delay — the
  Kazana–Segoufin shape realized through the census machinery.

  For two free variables the n² pairs are never keyed individually.
  Preprocessing splits pairs into *near* (Gaifman distance ≤ 2r+1,
  at most ``n · |B_{2r+1}|`` of them, keyed and decided pairwise) and
  *far* (radius-r balls disjoint, so the joint neighborhood is the
  disjoint union of the point neighborhoods and the verdict is a
  function of the ordered pair of *point* types — one representative
  evaluation per type pair).  Enumeration of a far class streams
  members of the target point class skipping the ≤ ``|B_{2r+1}|``
  near elements, so the delay stays bounded by the ball size, not n.

Every stream pins the structure's epoch at planning time.  An
``insert``/``delete`` invalidates the preprocessing the constant-delay
guarantee rests on, so a subsequent ``next()`` raises
:class:`~repro.errors.StaleStreamError` instead of yielding answers
for a structure that no longer exists — in every mode, including
``materialized`` (a snapshot taken before the update would silently
mix epochs for consumers that interleave reads with writes).
* ``materialized`` — everything else: compute the full answer set
  through the engine (planned, cached, budgeted) and stream it.  The
  fallback keeps :meth:`Engine.enumerate` total.

Every yielded answer charges one row against the caller's
:class:`~repro.resilience.budget.CancelToken`, so a consumer that stops
after k answers spends k rows of budget — full evaluation under the same
budget might be refused outright.  Preprocessing ticks the deadline but
charges no rows.
"""

from __future__ import annotations

import time
from collections.abc import Iterator

from repro.errors import StaleStreamError
from repro.eval.evaluator import evaluate as naive_evaluate
from repro.logic.analysis import free_variables, quantifier_rank
from repro.logic.syntax import Atom, Formula, Var
from repro.resilience.budget import CancelToken
from repro.structures.structure import Structure, _sort_key
from repro.telemetry.metrics import counter as _counter
from repro.telemetry.metrics import histogram as _histogram
from repro.telemetry.tracer import is_enabled as _telemetry_enabled
from repro.telemetry.tracer import span as _span

__all__ = ["AnswerStream", "plan_enumeration"]


class AnswerStream:
    """A lazy answer iterator with measured per-answer delay.

    Attributes
    ----------
    mode:
        Which strategy produced the stream (``atom`` / ``types`` /
        ``materialized``).
    free_names:
        The answer columns, in sorted-variable order.
    preprocessing_seconds:
        Wall-clock spent before the first answer could be produced.
    delays:
        Seconds spent inside each completed ``next()`` call so far.
    epoch:
        The structure epoch the stream was planned against.  ``next()``
        raises :class:`~repro.errors.StaleStreamError` once the
        structure has moved past it.
    """

    def __init__(
        self,
        iterator: Iterator[tuple],
        mode: str,
        free_names: tuple[str, ...],
        preprocessing_seconds: float,
        structure: Structure | None = None,
    ) -> None:
        self._iterator = iterator
        self.mode = mode
        self.free_names = free_names
        self.preprocessing_seconds = preprocessing_seconds
        self.delays: list[float] = []
        self._structure = structure
        self.epoch = structure.epoch if structure is not None else 0

    def __iter__(self) -> "AnswerStream":
        return self

    def __next__(self) -> tuple:
        structure = self._structure
        if structure is not None and structure.epoch != self.epoch:
            if _telemetry_enabled():
                _counter("incremental.enumerate.stale").inc()
            raise StaleStreamError(self.epoch, structure.epoch)
        started = time.perf_counter()
        value = next(self._iterator)
        delay = time.perf_counter() - started
        self.delays.append(delay)
        if _telemetry_enabled():
            _histogram("incremental.enumerate.delay_ms").observe(delay * 1000.0)
        return value


def plan_enumeration(
    engine,
    structure: Structure,
    formula: Formula,
    cancel_token: CancelToken | None,
) -> AnswerStream:
    """Choose a strategy and build the stream (see module docstring)."""
    free_names = tuple(sorted(var.name for var in free_variables(formula)))
    started = time.perf_counter()
    with _span("incremental.enumerate.preprocess") as prep_span:
        mode, iterator = _build(engine, structure, formula, free_names, cancel_token)
        prep_span.set("mode", mode)
    preprocessing = time.perf_counter() - started
    if _telemetry_enabled():
        _counter("incremental.enumerate.streams", mode=mode).inc()
    return AnswerStream(iterator, mode, free_names, preprocessing, structure)


def _build(
    engine,
    structure: Structure,
    formula: Formula,
    free_names: tuple[str, ...],
    token: CancelToken | None,
) -> tuple[str, Iterator[tuple]]:
    if _atom_streamable(formula):
        order = sorted(range(len(formula.terms)), key=lambda i: formula.terms[i].name)
        rows = sorted(structure.tuples(formula.relation), key=repr)
        return "atom", _stream(
            (tuple(row[i] for i in order) for row in rows), token
        )
    if _types_applicable(engine, structure, formula, free_names):
        if len(free_names) == 1:
            satisfying = _types_preprocess(
                engine, structure, formula, free_names, token
            )
            return "types", _stream(((element,) for element in satisfying), token)
        pairs = _pair_types_preprocess(structure, formula, free_names, token)
        return "types", _stream(pairs, token)
    rows = engine.answers(structure, formula, budget=token)
    # The full set is already charged to the budget by the engine; stream
    # it in deterministic order without re-charging.
    return "materialized", iter(sorted(rows, key=repr))


def _stream(values, token: CancelToken | None) -> Iterator[tuple]:
    for value in values:
        if token is not None:
            token.consume_rows(1, "engine.enumerate")
        yield value


def _atom_streamable(formula: Formula) -> bool:
    """A single atom over pairwise-distinct variables streams as-is."""
    if not isinstance(formula, Atom):
        return False
    names = [term.name for term in formula.terms if isinstance(term, Var)]
    return len(names) == len(formula.terms) and len(set(names)) == len(names)


def _types_applicable(
    engine, structure: Structure, formula: Formula, free_names: tuple[str, ...]
) -> bool:
    from repro.engine.stats import collect_stats
    from repro.locality.neighborhoods import max_ball_size

    if len(free_names) not in (1, 2) or engine.domain_mode != "universe":
        return False
    if structure.constants:
        return False
    stats = collect_stats(structure)
    if stats.max_degree > engine.degree_threshold:
        return False
    radius = _types_radius(formula)
    if len(free_names) == 2:
        # The pair decomposition keys near pairs at the joint radius and
        # skips up to |B_{2r+1}(a)| elements per far yield, so the
        # *separation* ball is what must stay constant-sized.
        radius = 2 * radius + 1
    return max_ball_size(stats.max_degree, radius) <= engine.fast_path_ball_limit


def _types_radius(formula: Formula) -> int:
    from repro.locality.gaifman_locality import gaifman_locality_radius

    return gaifman_locality_radius(quantifier_rank(formula))


def _types_preprocess(
    engine,
    structure: Structure,
    formula: Formula,
    free_names: tuple[str, ...],
    token: CancelToken | None,
) -> list:
    """Partition by neighborhood type; evaluate one representative each.

    Gaifman's theorem: an FO formula φ(x) of quantifier rank q cannot
    distinguish elements whose radius-``(7^q − 1)/2`` neighborhoods are
    isomorphic, and equal ball keys certify exactly that isomorphism.
    On bounded-degree structures the number of classes is independent of
    n, so the per-class evaluations are a constant number of calls.
    """
    from repro.locality.neighborhoods import ball_key

    radius = _types_radius(formula)
    variable = Var(free_names[0])
    classes: dict[tuple, list] = {}
    for element in structure.universe:
        if token is not None:
            token.tick("engine.enumerate")
        classes.setdefault(ball_key(structure, (element,), radius), []).append(element)
    satisfying: list = []
    for key in sorted(classes, key=repr):
        members = classes[key]
        if token is not None:
            token.tick("engine.enumerate")
        if naive_evaluate(structure, formula, {variable: members[0]}):
            satisfying.extend(members)
    satisfying.sort(key=_sort_key)
    return satisfying


def _pair_types_preprocess(
    structure: Structure,
    formula: Formula,
    free_names: tuple[str, ...],
    token: CancelToken | None,
) -> Iterator[tuple]:
    """Tuple-type enumeration for two free variables (near/far split).

    Let r be the Gaifman locality radius of φ(x, y).  A pair (a, b) is
    *near* when b ∈ B_{2r+1}(a) — there are at most n·|B_{2r+1}| of
    those, and each is keyed by the iso type of its joint radius-r
    neighborhood, one representative evaluation per type.  Otherwise the
    pair is *far*: B_r(a) and B_r(b) are disjoint with no Gaifman edge
    between them, so N_r(a, b) is the disjoint union N_r(a) ⊔ N_r(b)
    and the verdict depends only on the ordered pair of *point* types —
    decided once per type pair on any far representative.  Streaming a
    far class skips the ≤ |B_{2r+1}(a)| near elements of the target
    class, keeping the delay bounded by the ball size, never by n.
    """
    from repro.locality.neighborhoods import ball_key
    from repro.structures.gaifman import ball

    radius = _types_radius(formula)
    separation = 2 * radius + 1
    x, y = Var(free_names[0]), Var(free_names[1])
    universe = sorted(structure.universe, key=_sort_key)

    point_key: dict = {}
    members: dict[tuple, list] = {}
    near: dict = {}
    for element in universe:
        if token is not None:
            token.tick("engine.enumerate")
        key = ball_key(structure, (element,), radius)
        point_key[element] = key
        members.setdefault(key, []).append(element)
        near[element] = ball(structure, element, separation)

    near_verdict: dict[tuple, bool] = {}
    near_sat: dict = {}
    for a in universe:
        sat = near_sat[a] = []
        for b in sorted(near[a], key=_sort_key):
            if token is not None:
                token.tick("engine.enumerate")
            key = ball_key(structure, (a, b), radius)
            verdict = near_verdict.get(key)
            if verdict is None:
                verdict = bool(naive_evaluate(structure, formula, {x: a, y: b}))
                near_verdict[key] = verdict
            if verdict:
                sat.append(b)

    # One far representative per ordered type pair; a pair of classes
    # whose members are all mutually near contributes no far answers.
    far_true: dict[tuple, list] = {key: [] for key in members}
    for k1 in sorted(members, key=repr):
        for k2 in sorted(members, key=repr):
            representative = None
            for a in members[k1]:
                if token is not None:
                    token.tick("engine.enumerate")
                ball_a = near[a]
                for b in members[k2]:
                    if b not in ball_a:
                        representative = (a, b)
                        break
                if representative is not None:
                    break
            if representative is not None and naive_evaluate(
                structure, formula, {x: representative[0], y: representative[1]}
            ):
                far_true[k1].append(k2)

    def generate() -> Iterator[tuple]:
        for a in universe:
            for b in near_sat[a]:
                yield (a, b)
            ball_a = near[a]
            for k2 in far_true[point_key[a]]:
                for b in members[k2]:
                    if b not in ball_a:
                        yield (a, b)

    return generate()
