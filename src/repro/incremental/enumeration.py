"""Constant-delay answer enumeration, after Kazana–Segoufin (1105.3583).

The enumeration contract: a *preprocessing* phase whose cost may depend
on the structure, then answers are produced one at a time with a delay
that does not grow with the answer count.  :class:`AnswerStream` wraps a
generator and measures exactly that — ``preprocessing_seconds`` once and
``delays`` per ``next()`` — so tests and benchmarks assert the shape of
the guarantee instead of trusting it.

Three strategies, tried in order by :func:`plan_enumeration`:

* ``atom`` — the query is a single atom over distinct variables: stream
  the relation's rows (reordered to sorted-variable columns).  O(1)
  delay, no evaluation at all.
* ``types`` — one free variable on a bounded-degree, constant-free
  structure: Gaifman locality says x ↦ φ(x) is constant on each
  radius-``(7^qr − 1)/2`` neighborhood isomorphism type, so
  preprocessing partitions the universe by ball key and evaluates *one
  representative per class*; enumeration then streams the members of the
  satisfying classes.  Linear preprocessing, O(1) delay — the
  Kazana–Segoufin shape realized through the census machinery.
* ``materialized`` — everything else: compute the full answer set
  through the engine (planned, cached, budgeted) and stream it.  The
  fallback keeps :meth:`Engine.enumerate` total.

Every yielded answer charges one row against the caller's
:class:`~repro.resilience.budget.CancelToken`, so a consumer that stops
after k answers spends k rows of budget — full evaluation under the same
budget might be refused outright.  Preprocessing ticks the deadline but
charges no rows.
"""

from __future__ import annotations

import time
from collections.abc import Iterator

from repro.eval.evaluator import evaluate as naive_evaluate
from repro.logic.analysis import free_variables, quantifier_rank
from repro.logic.syntax import Atom, Formula, Var
from repro.resilience.budget import CancelToken
from repro.structures.structure import Structure, _sort_key
from repro.telemetry.metrics import counter as _counter
from repro.telemetry.metrics import histogram as _histogram
from repro.telemetry.tracer import is_enabled as _telemetry_enabled
from repro.telemetry.tracer import span as _span

__all__ = ["AnswerStream", "plan_enumeration"]


class AnswerStream:
    """A lazy answer iterator with measured per-answer delay.

    Attributes
    ----------
    mode:
        Which strategy produced the stream (``atom`` / ``types`` /
        ``materialized``).
    free_names:
        The answer columns, in sorted-variable order.
    preprocessing_seconds:
        Wall-clock spent before the first answer could be produced.
    delays:
        Seconds spent inside each completed ``next()`` call so far.
    """

    def __init__(
        self,
        iterator: Iterator[tuple],
        mode: str,
        free_names: tuple[str, ...],
        preprocessing_seconds: float,
    ) -> None:
        self._iterator = iterator
        self.mode = mode
        self.free_names = free_names
        self.preprocessing_seconds = preprocessing_seconds
        self.delays: list[float] = []

    def __iter__(self) -> "AnswerStream":
        return self

    def __next__(self) -> tuple:
        started = time.perf_counter()
        value = next(self._iterator)
        delay = time.perf_counter() - started
        self.delays.append(delay)
        if _telemetry_enabled():
            _histogram("incremental.enumerate.delay_ms").observe(delay * 1000.0)
        return value


def plan_enumeration(
    engine,
    structure: Structure,
    formula: Formula,
    cancel_token: CancelToken | None,
) -> AnswerStream:
    """Choose a strategy and build the stream (see module docstring)."""
    free_names = tuple(sorted(var.name for var in free_variables(formula)))
    started = time.perf_counter()
    with _span("incremental.enumerate.preprocess") as prep_span:
        mode, iterator = _build(engine, structure, formula, free_names, cancel_token)
        prep_span.set("mode", mode)
    preprocessing = time.perf_counter() - started
    if _telemetry_enabled():
        _counter("incremental.enumerate.streams", mode=mode).inc()
    return AnswerStream(iterator, mode, free_names, preprocessing)


def _build(
    engine,
    structure: Structure,
    formula: Formula,
    free_names: tuple[str, ...],
    token: CancelToken | None,
) -> tuple[str, Iterator[tuple]]:
    if _atom_streamable(formula):
        order = sorted(range(len(formula.terms)), key=lambda i: formula.terms[i].name)
        rows = sorted(structure.tuples(formula.relation), key=repr)
        return "atom", _stream(
            (tuple(row[i] for i in order) for row in rows), token
        )
    if _types_applicable(engine, structure, formula, free_names):
        satisfying = _types_preprocess(engine, structure, formula, free_names, token)
        return "types", _stream(((element,) for element in satisfying), token)
    rows = engine.answers(structure, formula, budget=token)
    # The full set is already charged to the budget by the engine; stream
    # it in deterministic order without re-charging.
    return "materialized", iter(sorted(rows, key=repr))


def _stream(values, token: CancelToken | None) -> Iterator[tuple]:
    for value in values:
        if token is not None:
            token.consume_rows(1, "engine.enumerate")
        yield value


def _atom_streamable(formula: Formula) -> bool:
    """A single atom over pairwise-distinct variables streams as-is."""
    if not isinstance(formula, Atom):
        return False
    names = [term.name for term in formula.terms if isinstance(term, Var)]
    return len(names) == len(formula.terms) and len(set(names)) == len(names)


def _types_applicable(
    engine, structure: Structure, formula: Formula, free_names: tuple[str, ...]
) -> bool:
    from repro.engine.stats import collect_stats
    from repro.locality.neighborhoods import max_ball_size

    if len(free_names) != 1 or engine.domain_mode != "universe":
        return False
    if structure.constants:
        return False
    stats = collect_stats(structure)
    if stats.max_degree > engine.degree_threshold:
        return False
    radius = _types_radius(formula)
    return max_ball_size(stats.max_degree, radius) <= engine.fast_path_ball_limit


def _types_radius(formula: Formula) -> int:
    from repro.locality.gaifman_locality import gaifman_locality_radius

    return gaifman_locality_radius(quantifier_rank(formula))


def _types_preprocess(
    engine,
    structure: Structure,
    formula: Formula,
    free_names: tuple[str, ...],
    token: CancelToken | None,
) -> list:
    """Partition by neighborhood type; evaluate one representative each.

    Gaifman's theorem: an FO formula φ(x) of quantifier rank q cannot
    distinguish elements whose radius-``(7^q − 1)/2`` neighborhoods are
    isomorphic, and equal ball keys certify exactly that isomorphism.
    On bounded-degree structures the number of classes is independent of
    n, so the per-class evaluations are a constant number of calls.
    """
    from repro.locality.neighborhoods import ball_key

    radius = _types_radius(formula)
    variable = Var(free_names[0])
    classes: dict[tuple, list] = {}
    for element in structure.universe:
        if token is not None:
            token.tick("engine.enumerate")
        classes.setdefault(ball_key(structure, (element,), radius), []).append(element)
    satisfying: list = []
    for key in sorted(classes, key=repr):
        members = classes[key]
        if token is not None:
            token.tick("engine.enumerate")
        if naive_evaluate(structure, formula, {variable: members[0]}):
            satisfying.extend(members)
    satisfying.sort(key=_sort_key)
    return satisfying
