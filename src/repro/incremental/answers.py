"""Cached-answer maintenance for quantifier-free queries.

A cached answer set ans(φ, A) can be *patched* under a tuple delta when
φ's support is local in the strongest sense: φ is quantifier-free, so
whether ā ∈ ans(φ, A) depends only on which atoms of φ hold of ā — and a
delta (op, R, t) can only flip the truth of an R-atom R(τ̄) on
assignments where τ̄ evaluates to exactly t.  Unifying each R-atom's
term tuple against t therefore enumerates a *complete* candidate set:
every answer tuple whose membership may have changed extends one of the
unifiers.  Each candidate is then verified point-wise against the
current structure and spliced into the cached set.

Quantified formulas are out of scope by design (one delta can flip
answers arbitrarily far from the touched tuple through a quantifier);
the engine falls back to recomputation for them, which the
``incremental.answers.fallback`` counter makes visible.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict

from repro.errors import FMTError
from repro.eval.evaluator import evaluate as naive_evaluate
from repro.logic.analysis import free_variables, subformulas
from repro.logic.syntax import Atom, Const, Exists, Forall, Formula, Var
from repro.resilience.budget import CancelToken
from repro.structures.structure import Structure
from repro.telemetry.metrics import counter as _counter
from repro.telemetry.tracer import is_enabled as _telemetry_enabled
from repro.telemetry.tracer import span as _span

__all__ = ["AnswerIndex", "is_maintainable", "CANDIDATE_LIMIT", "ANSWER_RECORDS_LIMIT"]

#: Patch at most this many candidate answer tuples per maintenance pass;
#: above it (many unbound variables × large universe) recomputing through
#: the planned pipeline is the better deal.
CANDIDATE_LIMIT = 2048

#: How many (structure uid, query) answer records the index retains.
ANSWER_RECORDS_LIMIT = 256


def is_maintainable(formula: Formula) -> bool:
    """Whether the formula's answers can be delta-maintained: no quantifiers."""
    return not any(
        isinstance(node, (Exists, Forall)) for node in subformulas(formula)
    )


class AnswerIndex:
    """Epoch-stamped answer sets, patched under the owning structure's deltas.

    Keys are ``(structure.uid, formula, order_names)`` — identity-based,
    because a mutated structure changes content hash on every delta while
    its uid names the same evolving object.  The engine's content-hash
    answer cache stays the source of truth for "have I answered this
    exact structure"; this index answers "I answered an earlier epoch of
    this object — which rows may have flipped?".
    """

    def __init__(
        self,
        capacity: int = ANSWER_RECORDS_LIMIT,
        candidate_limit: int = CANDIDATE_LIMIT,
    ) -> None:
        self.capacity = capacity
        self.candidate_limit = candidate_limit
        self._records: OrderedDict[tuple, tuple[int, frozenset]] = OrderedDict()
        self.patched = 0
        self.fallbacks = 0

    def remember(
        self,
        structure: Structure,
        formula: Formula,
        order_names: tuple[str, ...],
        rows: frozenset,
    ) -> None:
        """Stamp ``rows`` as the answers at the structure's current epoch."""
        if not is_maintainable(formula):
            return
        key = (structure.uid, formula, order_names)
        self._records[key] = (structure.epoch, rows)
        self._records.move_to_end(key)
        while len(self._records) > self.capacity:
            self._records.popitem(last=False)

    def patch(
        self,
        structure: Structure,
        formula: Formula,
        order_names: tuple[str, ...],
        cancel_token: CancelToken | None = None,
    ) -> frozenset | None:
        """Answers at the current epoch, patched from a recorded epoch.

        Returns ``None`` when maintenance cannot apply — no record, the
        delta log has been outrun, or the candidate set explodes — and
        the caller recomputes (and then calls :meth:`remember`).
        """
        key = (structure.uid, formula, order_names)
        record = self._records.get(key)
        if record is None:
            return None
        epoch, rows = record
        deltas = structure.deltas_since(epoch)
        if deltas is None:
            del self._records[key]
            self._note_fallback()
            return None
        self._records.move_to_end(key)
        if not deltas:
            return rows
        names = tuple(sorted(var.name for var in free_variables(formula)))
        if names != order_names:
            # Bespoke column orders never take the maintenance path —
            # candidates below are built in sorted-name order.
            return None
        candidates = _candidates(
            structure, formula, names, deltas, self.candidate_limit
        )
        if candidates is None:
            self._note_fallback()
            return None
        with _span("incremental.answers.patch") as patch_span:
            patch_span.set("deltas", len(deltas)).set("candidates", len(candidates))
            added = set()
            removed = set()
            variables = tuple(Var(name) for name in names)
            for candidate in candidates:
                if cancel_token is not None:
                    cancel_token.tick("incremental.answers")
                assignment = dict(zip(variables, candidate))
                if naive_evaluate(structure, formula, assignment):
                    added.add(candidate)
                else:
                    removed.add(candidate)
            new_rows = frozenset((set(rows) - removed) | added)
        self._records[key] = (structure.epoch, new_rows)
        self.patched += 1
        if _telemetry_enabled():
            _counter("incremental.answers.patched").inc()
        return new_rows

    def _note_fallback(self) -> None:
        self.fallbacks += 1
        if _telemetry_enabled():
            _counter("incremental.answers.fallback").inc()


def _candidates(
    structure: Structure,
    formula: Formula,
    names: tuple[str, ...],
    deltas: list[tuple[str, str, tuple]],
    limit: int,
) -> set[tuple] | None:
    """Every answer tuple whose membership one of the deltas may flip.

    For each delta (op, R, t) and each R-atom of the formula, unify the
    atom's terms against t; each successful unifier, extended over the
    universe on the formula's remaining free variables, is a candidate.
    Returns ``None`` when the extension would exceed ``limit``.
    """
    atoms_by_relation: dict[str, list[Atom]] = {}
    for node in subformulas(formula):
        if isinstance(node, Atom):
            atoms_by_relation.setdefault(node.relation, []).append(node)
    universe = structure.universe
    candidates: set[tuple] = set()
    for _, relation, row in deltas:
        for atom in atoms_by_relation.get(relation, ()):
            binding = _unify(structure, atom, row)
            if binding is None:
                continue
            unbound = [name for name in names if name not in binding]
            growth = len(universe) ** len(unbound) if unbound else 1
            if len(candidates) + growth > limit:
                return None
            for combo in itertools.product(universe, repeat=len(unbound)):
                env = dict(binding)
                env.update(zip(unbound, combo))
                candidates.add(tuple(env[name] for name in names))
    return candidates


def _unify(structure: Structure, atom: Atom, row: tuple) -> dict | None:
    """Match the atom's term tuple against a concrete row, or ``None``."""
    binding: dict[str, object] = {}
    for term, value in zip(atom.terms, row):
        if isinstance(term, Var):
            bound = binding.get(term.name, _MISSING)
            if bound is _MISSING:
                binding[term.name] = value
            elif bound != value:
                return None
        elif isinstance(term, Const):
            if structure.constant(term.name) != value:
                return None
        else:  # pragma: no cover - the syntax has only Var/Const terms
            raise FMTError(f"unsupported term {term!r}")
    return binding


_MISSING = object()
