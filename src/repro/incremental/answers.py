"""Cached-answer maintenance for quantifier-free AND quantified queries.

A cached answer set ans(φ, A) can be *patched* under a tuple delta
instead of recomputed.  Three tiers, in decreasing order of strength:

**Quantifier-free** (the original tier).  Whether ā ∈ ans(φ, A) depends
only on which atoms of φ hold of ā — and a delta (op, R, t) can only
flip the truth of an R-atom R(τ̄) on assignments where τ̄ evaluates to
exactly t.  Unifying each R-atom's term tuple against t therefore
enumerates a *complete* candidate set; each candidate is verified
point-wise and spliced into the cached set.

**Local existential** (Kazana–Segoufin style, arXiv:1105.3583).  For
φ(x) = ∃y₁…y_k ψ with ψ quantifier-free and every yᵢ *anchored* — each
witness variable reachable from x in the variable co-occurrence graph
built from atoms guaranteed to hold in any satisfying assignment — every
witness tuple lies inside the Gaifman ball B_k(x).  The verdict of a is
therefore a function of B_k(a) and of the rows over {a} ∪ B_k(a), so
after a batch of deltas only elements in the radius-k ball around the
touched elements (in the *patched* graph — the same dirty-set lemma the
census index proves in :mod:`repro.incremental.census`) can change
verdict, and each is re-decided by quantifying over its ball instead of
the universe.  On bounded-degree structures this is O(deltas), the
bounded-degree delta algorithm the ROADMAP asks for.

**Hanf census gate** (general rank-q, at most one free variable).  For
arbitrary quantified φ(x) of rank q, A ⊨ φ(a) iff the *marked* structure
(A, {a}) satisfies the rank-(q+1) sentence ∃x (P(x) ∧ φ(x)); by Hanf
locality (Libkin, *Elements of Finite Model Theory*, Thm 4.12) that
sentence is determined by the exact multiset of radius-r ball types of
(A, {a}) with r = (3^{q+1} − 1)/2.  That census decomposes as

    census_r(A, {a}) = census_r(A)
                       − {unmarked types of b ∈ B_r(a)}
                       + {marked types of b ∈ B_r(a)},

and both correction terms are determined by the isomorphism type of the
*pointed* ball (B_2r(a), a): every B_r(b) with d(a, b) ≤ r lies inside
B_2r(a), and every path of length ≤ r from b stays inside it, so the
induced substructure is distance-faithful up to r.  Hence the

    **verdict-transfer rule**: equal census fingerprint at radius r and
    equal pointed ball key at radius 2r  ⟹  equal verdict

— sound for *all* finite structures (degree bounds only gate the cost).
The record keeps every element's pointed key, the census fingerprint,
and a (key, fingerprint) → verdict cache, so a delta re-keys only the
dirty ball and re-evaluates at most one representative per new class.

All tiers share the commit-at-end discipline: nothing in the record is
mutated until the whole patch has been computed, so a candidate/dirty
overflow, an injected fault, or a mid-patch budget expiry leaves the
record exactly as it was (the ``incremental.answers.fallback`` counter
makes the recompute escape hatch visible).
"""

from __future__ import annotations

import itertools
from collections import Counter, OrderedDict, deque

from repro.errors import FMTError
from repro.eval.evaluator import evaluate as naive_evaluate
from repro.logic.analysis import free_variables, quantifier_rank, subformulas
from repro.logic.syntax import (
    And,
    Atom,
    Const,
    Eq,
    Exists,
    Forall,
    Formula,
    Or,
    Var,
)
from repro.resilience.budget import CancelToken
from repro.resilience.faults import fault_point
from repro.structures.structure import Structure, _sort_key
from repro.telemetry.metrics import counter as _counter
from repro.telemetry.tracer import is_enabled as _telemetry_enabled
from repro.telemetry.tracer import span as _span

__all__ = [
    "AnswerIndex",
    "is_maintainable",
    "local_existential_scope",
    "hanf_scope",
    "CANDIDATE_LIMIT",
    "ANSWER_RECORDS_LIMIT",
    "LOCAL_WITNESS_LIMIT",
    "QUANT_BALL_LIMIT",
    "QUANT_WORK_LIMIT",
    "QUANT_EVAL_LIMIT",
    "VERDICT_CACHE_LIMIT",
]

#: Patch at most this many candidate answer tuples (or dirty elements)
#: per maintenance pass; above it recomputing through the planned
#: pipeline is the better deal.
CANDIDATE_LIMIT = 2048

#: How many (structure uid, query) answer records the index retains.
ANSWER_RECORDS_LIMIT = 256

#: The local-existential tier enumerates at most ``|ball|^k`` witness
#: tuples per re-decided element; past this the element's ball is too
#: dense for local evaluation to beat a recompute.
LOCAL_WITNESS_LIMIT = 4096

#: Hanf-tier promotion requires ``min(max_ball_size(degree, 2r), n)``
#: at most this large — the per-element key cost bound.
QUANT_BALL_LIMIT = 64

#: ... and ``n × ball_bound`` at most this — the total promotion cost.
QUANT_WORK_LIMIT = 250_000

#: At most this many representative evaluations per Hanf-tier patch.
QUANT_EVAL_LIMIT = 256

#: (key, fingerprint) → verdict entries retained per Hanf record.
VERDICT_CACHE_LIMIT = 4096

#: How many formula → scope classifications the index memoizes.
_SCOPE_CACHE_LIMIT = 512


def is_maintainable(formula: Formula) -> bool:
    """Whether the formula is quantifier-free (the strongest tier)."""
    return not any(
        isinstance(node, (Exists, Forall)) for node in subformulas(formula)
    )


# -- scope classification -----------------------------------------------------


class _LocalScope:
    """φ(x) = ∃ȳ ψ with every witness variable anchored to x."""

    __slots__ = ("name", "witnesses", "body", "depth")

    def __init__(self, name: str, witnesses: tuple[str, ...], body: Formula) -> None:
        self.name = name
        self.witnesses = witnesses
        self.body = body
        self.depth = len(witnesses)


class _HanfScope:
    """General rank-q formula with at most one free variable."""

    __slots__ = ("name", "radius", "key_radius")

    def __init__(self, name: str | None, radius: int, key_radius: int) -> None:
        self.name = name
        self.radius = radius
        self.key_radius = key_radius


def _mentions_const_or_nullary(formula: Formula) -> bool:
    for node in subformulas(formula):
        if isinstance(node, Atom):
            if not node.terms:
                return True
            if any(isinstance(term, Const) for term in node.terms):
                return True
        elif isinstance(node, Eq):
            if isinstance(node.left, Const) or isinstance(node.right, Const):
                return True
    return False


def _anchored_pairs(formula: Formula) -> set[frozenset]:
    """Variable pairs guaranteed Gaifman-adjacent (or equal) in every
    satisfying assignment of ``formula``.

    An atom that must hold puts all its variables within distance 1 of
    each other; an equality that must hold makes its sides coincide.
    Conjunction accumulates guarantees, disjunction keeps only the pairs
    *every* branch guarantees, and anything under a negation (or other
    connective) guarantees nothing.
    """
    if isinstance(formula, Atom):
        names = {term.name for term in formula.terms if isinstance(term, Var)}
        return {frozenset(pair) for pair in itertools.combinations(sorted(names), 2)}
    if isinstance(formula, Eq):
        if isinstance(formula.left, Var) and isinstance(formula.right, Var):
            if formula.left.name != formula.right.name:
                return {frozenset({formula.left.name, formula.right.name})}
        return set()
    if isinstance(formula, And):
        pairs: set[frozenset] = set()
        for child in formula.children:
            pairs |= _anchored_pairs(child)
        return pairs
    if isinstance(formula, Or):
        if not formula.children:
            return set()
        pairs = _anchored_pairs(formula.children[0])
        for child in formula.children[1:]:
            pairs &= _anchored_pairs(child)
        return pairs
    return set()


def local_existential_scope(formula: Formula) -> _LocalScope | None:
    """Classify φ as local-existential, or ``None`` if out of fragment.

    Requires exactly one free variable x, a pure ∃-prefix over a
    quantifier-free body with no constants or nullary atoms, distinct
    witness names, and every witness variable connected to x in the
    anchored co-occurrence graph — which bounds every witness value to
    Gaifman distance ≤ k from x (k = number of witnesses): each edge of
    an anchoring path joins values that co-occur in a row that holds.
    """
    free = free_variables(formula)
    if len(free) != 1:
        return None
    name = next(iter(free)).name
    witnesses: list[str] = []
    body: Formula = formula
    while isinstance(body, Exists):
        witnesses.append(body.var.name)
        body = body.body
    if not witnesses or not is_maintainable(body):
        return None
    if len(set(witnesses)) != len(witnesses) or name in witnesses:
        return None
    if _mentions_const_or_nullary(body):
        return None
    adjacency: dict[str, set[str]] = {}
    for pair in _anchored_pairs(body):
        a, b = tuple(pair)
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    reached = {name}
    frontier = deque([name])
    while frontier:
        for neighbor in adjacency.get(frontier.popleft(), ()):
            if neighbor not in reached:
                reached.add(neighbor)
                frontier.append(neighbor)
    if not set(witnesses) <= reached:
        return None
    return _LocalScope(name, tuple(witnesses), body)


def hanf_scope(formula: Formula) -> _HanfScope | None:
    """Classify φ for the census-gated tier, or ``None``.

    Requires at most one free variable, at least one quantifier, and a
    purely relational reading — no constants (they would be unmarked
    named points the census cannot see) and no nullary atoms (a global
    bit invisible to ball types).
    """
    from repro.locality.hanf import hanf_locality_radius

    if is_maintainable(formula):
        return None
    free = free_variables(formula)
    if len(free) > 1:
        return None
    if _mentions_const_or_nullary(formula):
        return None
    radius = hanf_locality_radius(quantifier_rank(formula) + 1)
    name = next(iter(free)).name if free else None
    return _HanfScope(name, radius, 2 * radius)


# -- records ------------------------------------------------------------------


class _LocalRecord:
    __slots__ = ("epoch", "rows", "scope")

    def __init__(self, epoch: int, rows: frozenset, scope: _LocalScope) -> None:
        self.epoch = epoch
        self.rows = rows
        self.scope = scope


class _HanfRecord:
    """``keys is None`` marks a *light* record: rows + epoch only.

    Light records cost nothing to carry; the index promotes one to a
    full record (per-element pointed keys, census counts, verdict cache)
    the first time a patch is attempted against it — so the O(n·ball)
    keying cost is paid only by workloads that actually update and
    re-query, never by one-shot evaluations.
    """

    __slots__ = (
        "epoch",
        "rows",
        "scope",
        "keys",
        "counts",
        "fingerprint",
        "verdicts",
    )

    def __init__(self, epoch: int, rows: frozenset, scope: _HanfScope) -> None:
        self.epoch = epoch
        self.rows = rows
        self.scope = scope
        self.keys: dict | None = None
        self.counts: Counter | None = None
        self.fingerprint: frozenset | None = None
        self.verdicts: dict | None = None


class _Overflow(Exception):
    """Internal: a patch exceeded its work limits; fall back, no commit."""


#: Sentinel element for sentence verdict cache entries (no free var).
_SENTENCE = "__sentence__"


class AnswerIndex:
    """Epoch-stamped answer sets, patched under the owning structure's deltas.

    Keys are ``(structure.uid, formula, order_names)`` — identity-based,
    because a mutated structure changes content hash on every delta while
    its uid names the same evolving object.  The engine's content-hash
    answer cache stays the source of truth for "have I answered this
    exact structure"; this index answers "I answered an earlier epoch of
    this object — which rows may have flipped?".
    """

    def __init__(
        self,
        capacity: int = ANSWER_RECORDS_LIMIT,
        candidate_limit: int = CANDIDATE_LIMIT,
    ) -> None:
        self.capacity = capacity
        self.candidate_limit = candidate_limit
        self._records: OrderedDict[tuple, tuple[int, frozenset]] = OrderedDict()
        self._quants: OrderedDict[tuple, _LocalRecord | _HanfRecord] = OrderedDict()
        self._scopes: dict[Formula, _LocalScope | _HanfScope | None] = {}
        self._promote_pending: set[tuple] = set()
        self.patched = 0
        self.quant_patched = 0
        self.promoted = 0
        self.fallbacks = 0

    # -- bookkeeping ----------------------------------------------------------

    def _scope(self, formula: Formula) -> _LocalScope | _HanfScope | None:
        if formula in self._scopes:
            return self._scopes[formula]
        scope = local_existential_scope(formula) or hanf_scope(formula)
        if len(self._scopes) >= _SCOPE_CACHE_LIMIT:
            self._scopes.clear()
        self._scopes[formula] = scope
        return scope

    def _trim(self, records: OrderedDict) -> None:
        while len(records) > self.capacity:
            records.popitem(last=False)

    def forget(self, structure: Structure) -> int:
        """Drop every maintained record for ``structure``; return the count.

        Backs :meth:`Engine.invalidate` — an explicit invalidation must
        force re-execution, so the maintenance layer may not answer the
        next read from a surviving record.
        """
        dropped = 0
        for records in (self._records, self._quants):
            stale = [key for key in records if key[0] == structure.uid]
            for key in stale:
                del records[key]
                self._promote_pending.discard(key)
            dropped += len(stale)
        return dropped

    def clear(self) -> None:
        self._records.clear()
        self._quants.clear()
        self._scopes.clear()
        self._promote_pending.clear()

    def _note_fallback(self) -> None:
        self.fallbacks += 1
        if _telemetry_enabled():
            _counter("incremental.answers.fallback").inc()

    # -- remember -------------------------------------------------------------

    def remember(
        self,
        structure: Structure,
        formula: Formula,
        order_names: tuple[str, ...],
        rows: frozenset,
    ) -> None:
        """Stamp ``rows`` as the answers at the structure's current epoch."""
        if is_maintainable(formula):
            key = (structure.uid, formula, order_names)
            self._records[key] = (structure.epoch, rows)
            self._records.move_to_end(key)
            self._trim(self._records)
            return
        names = tuple(sorted(var.name for var in free_variables(formula)))
        if order_names != names:
            return  # bespoke column orders never take the maintenance path
        scope = self._scope(formula)
        if scope is None:
            return
        key = (structure.uid, formula, order_names)
        if isinstance(scope, _LocalScope):
            self._quants[key] = _LocalRecord(structure.epoch, rows, scope)
        else:
            self._remember_hanf(structure, formula, key, scope, rows)
        self._quants.move_to_end(key)
        self._trim(self._quants)

    def _remember_hanf(
        self,
        structure: Structure,
        formula: Formula,
        key: tuple,
        scope: _HanfScope,
        rows: frozenset,
    ) -> None:
        record = self._quants.get(key)
        full = isinstance(record, _HanfRecord) and record.keys is not None
        if full and record.epoch == structure.epoch:
            record.rows = rows
            self._seed_verdicts(record, rows)
            return
        if full and self._advance_hanf(record, structure, rows):
            return
        if (full or key in self._promote_pending) and self._hanf_promotable(
            structure, scope
        ):
            self._promote_pending.discard(key)
            self._quants[key] = self._build_hanf(structure, scope, rows)
            self.promoted += 1
            if _telemetry_enabled():
                _counter("incremental.answers.promoted").inc()
            return
        self._promote_pending.discard(key)
        self._quants[key] = _HanfRecord(structure.epoch, rows, scope)

    def _hanf_promotable(self, structure: Structure, scope: _HanfScope) -> bool:
        from repro.locality.neighborhoods import max_ball_size
        from repro.structures.gaifman import gaifman_adjacency

        size = structure.size
        if not size:
            return False
        adjacency = gaifman_adjacency(structure)
        degree = max((len(nbrs) for nbrs in adjacency.values()), default=0)
        bound = min(max_ball_size(degree, scope.key_radius), size)
        return bound <= QUANT_BALL_LIMIT and size * bound <= QUANT_WORK_LIMIT

    def _build_hanf(
        self, structure: Structure, scope: _HanfScope, rows: frozenset
    ) -> _HanfRecord:
        from repro.locality.neighborhoods import ball_key

        record = _HanfRecord(structure.epoch, rows, scope)
        record.keys = {
            element: ball_key(structure, (element,), scope.key_radius)
            for element in structure.universe
        }
        record.counts = Counter(record.keys.values())
        record.fingerprint = frozenset(record.counts.items())
        record.verdicts = {}
        self._seed_verdicts(record, rows)
        return record

    def _seed_verdicts(self, record: _HanfRecord, rows: frozenset) -> None:
        """Pre-populate (key, fingerprint) → verdict from known answers.

        Within one structure, equal pointed keys imply equal verdicts
        (the verdict-transfer rule with a trivially equal census), so
        every element's known membership is a valid cache entry — the
        first patch after a toggle usually needs zero evaluations.
        """
        fp = record.fingerprint
        verdicts = record.verdicts
        if verdicts is None:
            return
        if len(verdicts) >= VERDICT_CACHE_LIMIT:
            verdicts.clear()
        if record.scope.name is None:
            verdicts[(_SENTENCE, fp)] = bool(rows)
            return
        for element, key in record.keys.items():
            verdicts[(key, fp)] = (element,) in rows

    def _advance_hanf(
        self, record: _HanfRecord, structure: Structure, rows: frozenset
    ) -> bool:
        """Re-key a full record to the current epoch given fresh rows."""
        from repro.locality.neighborhoods import ball_key

        deltas = structure.deltas_since(record.epoch)
        if deltas is None or any(not row for _, _, row in deltas):
            return False
        seeds: set = set()
        for _, _, row in deltas:
            seeds.update(row)
        dirty = _dirty_ball(structure, seeds, record.scope.key_radius)
        if len(dirty) > self.candidate_limit:
            return False
        for element in dirty:
            new_key = ball_key(structure, (element,), record.scope.key_radius)
            old_key = record.keys[element]
            if new_key != old_key:
                record.counts[old_key] -= 1
                if not record.counts[old_key]:
                    del record.counts[old_key]
                record.counts[new_key] += 1
                record.keys[element] = new_key
        record.fingerprint = frozenset(record.counts.items())
        record.rows = rows
        record.epoch = structure.epoch
        self._seed_verdicts(record, rows)
        return True

    # -- patch ----------------------------------------------------------------

    def patch(
        self,
        structure: Structure,
        formula: Formula,
        order_names: tuple[str, ...],
        cancel_token: CancelToken | None = None,
    ) -> frozenset | None:
        """Answers at the current epoch, patched from a recorded epoch.

        Returns ``None`` when maintenance cannot apply — no record, the
        delta log has been outrun, or the work limits trip — and the
        caller recomputes (and then calls :meth:`remember`).  A budget
        expiry mid-patch raises with the record untouched (commit is a
        single block at the end of every tier).
        """
        key = (structure.uid, formula, order_names)
        record = self._records.get(key)
        if record is not None:
            return self._patch_qf(structure, formula, order_names, key, cancel_token)
        quant = self._quants.get(key)
        if quant is None:
            return None
        deltas = structure.deltas_since(quant.epoch)
        if deltas is None:
            del self._quants[key]
            self._note_fallback()
            return None
        self._quants.move_to_end(key)
        if not deltas:
            return quant.rows
        if any(not row for _, _, row in deltas):
            # A nullary flip is invisible to ball neighborhoods; the
            # record cannot be maintained across it.
            del self._quants[key]
            self._note_fallback()
            return None
        if isinstance(quant, _LocalRecord):
            return self._patch_local(structure, quant, deltas, cancel_token)
        if quant.keys is None:
            # Light record: ask the next recompute to pay the promotion.
            self._promote_pending.add(key)
            self._note_fallback()
            return None
        return self._patch_hanf(structure, formula, quant, deltas, cancel_token)

    def _patch_qf(
        self,
        structure: Structure,
        formula: Formula,
        order_names: tuple[str, ...],
        key: tuple,
        cancel_token: CancelToken | None,
    ) -> frozenset | None:
        epoch, rows = self._records[key]
        deltas = structure.deltas_since(epoch)
        if deltas is None:
            del self._records[key]
            self._note_fallback()
            return None
        self._records.move_to_end(key)
        if not deltas:
            return rows
        names = tuple(sorted(var.name for var in free_variables(formula)))
        if names != order_names:
            # Bespoke column orders never take the maintenance path —
            # candidates below are built in sorted-name order.
            return None
        candidates = _candidates(
            structure, formula, names, deltas, self.candidate_limit
        )
        if candidates is None:
            self._note_fallback()
            return None
        with _span("incremental.answers.patch") as patch_span:
            patch_span.set("deltas", len(deltas)).set("candidates", len(candidates))
            added = set()
            removed = set()
            variables = tuple(Var(name) for name in names)
            for candidate in candidates:
                if cancel_token is not None:
                    cancel_token.tick("incremental.answers")
                fault_point("incremental.answers.verify")
                assignment = dict(zip(variables, candidate))
                if naive_evaluate(structure, formula, assignment):
                    added.add(candidate)
                else:
                    removed.add(candidate)
            new_rows = frozenset((set(rows) - removed) | added)
        fault_point("incremental.answers.commit")
        self._records[key] = (structure.epoch, new_rows)
        self.patched += 1
        if _telemetry_enabled():
            _counter("incremental.answers.patched").inc()
        return new_rows

    def _patch_local(
        self,
        structure: Structure,
        record: _LocalRecord,
        deltas: list[tuple[str, str, tuple]],
        cancel_token: CancelToken | None,
    ) -> frozenset | None:
        from repro.structures.gaifman import gaifman_adjacency

        scope = record.scope
        seeds: set = set()
        for _, _, row in deltas:
            seeds.update(row)
        dirty = _dirty_ball(structure, seeds, scope.depth)
        if len(dirty) > self.candidate_limit:
            self._note_fallback()
            return None
        with _span("incremental.answers.patch_local") as patch_span:
            patch_span.set("deltas", len(deltas)).set("dirty", len(dirty))
            adjacency = gaifman_adjacency(structure)
            new_rows = set(record.rows)
            variables = (Var(scope.name),) + tuple(
                Var(name) for name in scope.witnesses
            )
            for element in sorted(dirty, key=_sort_key):
                if cancel_token is not None:
                    cancel_token.tick("incremental.answers")
                fault_point("incremental.answers.verify")
                verdict = _local_verdict(
                    structure, scope, variables, element, adjacency
                )
                if verdict is None:
                    self._note_fallback()
                    return None
                if verdict:
                    new_rows.add((element,))
                else:
                    new_rows.discard((element,))
        fault_point("incremental.answers.commit")
        record.rows = frozenset(new_rows)
        record.epoch = structure.epoch
        self.quant_patched += 1
        if _telemetry_enabled():
            _counter("incremental.answers.quant_patched").inc()
            _counter("incremental.answers.dirty_elements").inc(len(dirty))
        return record.rows

    def _patch_hanf(
        self,
        structure: Structure,
        formula: Formula,
        record: _HanfRecord,
        deltas: list[tuple[str, str, tuple]],
        cancel_token: CancelToken | None,
    ) -> frozenset | None:
        from repro.locality.neighborhoods import ball_key

        scope = record.scope
        seeds: set = set()
        for _, _, row in deltas:
            seeds.update(row)
        dirty = _dirty_ball(structure, seeds, scope.key_radius)
        if len(dirty) > self.candidate_limit:
            self._note_fallback()
            return None
        with _span("incremental.answers.patch_hanf") as patch_span:
            patch_span.set("deltas", len(deltas)).set("dirty", len(dirty))
            new_keys: dict = {}
            counts = Counter(record.counts)
            for element in sorted(dirty, key=_sort_key):
                if cancel_token is not None:
                    cancel_token.tick("incremental.answers")
                fault_point("incremental.answers.verify")
                new_key = ball_key(structure, (element,), scope.key_radius)
                new_keys[element] = new_key
                old_key = record.keys[element]
                if new_key != old_key:
                    counts[old_key] -= 1
                    if not counts[old_key]:
                        del counts[old_key]
                    counts[new_key] += 1
            fingerprint = frozenset(counts.items())
            verdicts = record.verdicts
            evals = 0

            def verdict_for(element, element_key) -> bool:
                nonlocal evals
                cached = verdicts.get((element_key, fingerprint))
                if cached is not None:
                    return cached
                evals += 1
                if evals > QUANT_EVAL_LIMIT:
                    raise _Overflow
                if cancel_token is not None:
                    cancel_token.tick("incremental.answers")
                if element is _SENTENCE:
                    verdict = bool(naive_evaluate(structure, formula, {}))
                else:
                    verdict = bool(
                        naive_evaluate(structure, formula, {Var(scope.name): element})
                    )
                if len(verdicts) >= VERDICT_CACHE_LIMIT:
                    verdicts.clear()
                verdicts[(element_key, fingerprint)] = verdict
                return verdict

            try:
                if scope.name is None:
                    if fingerprint == record.fingerprint:
                        new_rows = set(record.rows)
                    else:
                        new_rows = (
                            {()} if verdict_for(_SENTENCE, _SENTENCE) else set()
                        )
                elif fingerprint == record.fingerprint:
                    # Census unchanged: only dirty elements (whose pointed
                    # key may have moved) can change verdict.
                    new_rows = set(record.rows)
                    for element in sorted(dirty, key=_sort_key):
                        if verdict_for(element, new_keys[element]):
                            new_rows.add((element,))
                        else:
                            new_rows.discard((element,))
                else:
                    # Census moved: every verdict is suspect, but the
                    # cache collapses the pass to one evaluation per
                    # *new* (key, fingerprint) class.
                    new_rows = set()
                    for element in structure.universe:
                        element_key = (
                            new_keys[element]
                            if element in new_keys
                            else record.keys[element]
                        )
                        if verdict_for(element, element_key):
                            new_rows.add((element,))
            except _Overflow:
                self._note_fallback()
                return None
            patch_span.set("evals", evals)
        fault_point("incremental.answers.commit")
        record.keys.update(new_keys)
        record.counts = counts
        record.fingerprint = fingerprint
        record.rows = frozenset(new_rows)
        record.epoch = structure.epoch
        self.quant_patched += 1
        if _telemetry_enabled():
            _counter("incremental.answers.quant_patched").inc()
            _counter("incremental.answers.dirty_elements").inc(len(dirty))
        return record.rows

    # -- change detection ------------------------------------------------------

    def changed(
        self,
        structure: Structure,
        formula: Formula,
        order_names: tuple[str, ...],
        cancel_token: CancelToken | None = None,
    ) -> bool | None:
        """Did the maintained answers change across the pending deltas?

        ``True``/``False`` when the record could be patched to the
        current epoch, ``None`` when maintenance could not decide (no
        record, log outrun, work limits) — callers that must not miss a
        change treat ``None`` as "assume changed".
        """
        key = (structure.uid, formula, order_names)
        record = self._records.get(key)
        if record is not None:
            before = record[1]
        else:
            quant = self._quants.get(key)
            if quant is None:
                return None
            before = quant.rows
        after = self.patch(structure, formula, order_names, cancel_token)
        if after is None:
            return None
        return after != before


# -- local evaluation ---------------------------------------------------------


def _local_verdict(
    structure: Structure,
    scope: _LocalScope,
    variables: tuple[Var, ...],
    element,
    adjacency: dict,
) -> bool | None:
    """Decide ∃ȳ ψ(a, ȳ) by quantifying over B_k(a) instead of the universe.

    Sound for anchored scopes: every satisfying witness tuple lies in
    the ball (anchoring chains of held rows bound each witness to Gaifman
    distance ≤ k from a), and the body is evaluated against the *full*
    structure, so restricting only the quantifier range loses nothing.
    Returns ``None`` when the witness space exceeds the work limit.
    """
    ball = _ball(adjacency, element, scope.depth)
    if len(ball) ** scope.depth > LOCAL_WITNESS_LIMIT:
        return None
    witnesses = sorted(ball, key=_sort_key)
    for combo in itertools.product(witnesses, repeat=scope.depth):
        assignment = dict(zip(variables, (element,) + combo))
        if naive_evaluate(structure, scope.body, assignment):
            return True
    return False


def _ball(adjacency: dict, element, radius: int) -> set:
    distances = {element: 0}
    queue = deque((element,))
    while queue:
        current = queue.popleft()
        depth = distances[current]
        if depth >= radius:
            continue
        for neighbor in adjacency.get(current, ()):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                queue.append(neighbor)
    return set(distances)


def _dirty_ball(structure: Structure, seeds: set, radius: int) -> set:
    """Radius-r ball around the touched elements in the *patched* graph.

    Soundness (elements whose r-neighborhood changed are inside it, even
    across interleaved inserts and deletes) is the delta-sequence lemma
    proved in :mod:`repro.incremental.census`.
    """
    from repro.structures.gaifman import gaifman_adjacency

    return _ball_multi(gaifman_adjacency(structure), seeds, radius)


def _ball_multi(adjacency: dict, seeds: set, radius: int) -> set:
    distances = {element: 0 for element in seeds}
    queue = deque(seeds)
    while queue:
        current = queue.popleft()
        depth = distances[current]
        if depth >= radius:
            continue
        for neighbor in adjacency.get(current, ()):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                queue.append(neighbor)
    return set(distances)


# -- quantifier-free candidates ----------------------------------------------


def _candidates(
    structure: Structure,
    formula: Formula,
    names: tuple[str, ...],
    deltas: list[tuple[str, str, tuple]],
    limit: int,
) -> set[tuple] | None:
    """Every answer tuple whose membership one of the deltas may flip.

    For each delta (op, R, t) and each R-atom of the formula, unify the
    atom's terms against t; each successful unifier, extended over the
    universe on the formula's remaining free variables, is a candidate.
    Returns ``None`` when the extension would exceed ``limit``.
    """
    atoms_by_relation: dict[str, list[Atom]] = {}
    for node in subformulas(formula):
        if isinstance(node, Atom):
            atoms_by_relation.setdefault(node.relation, []).append(node)
    universe = structure.universe
    candidates: set[tuple] = set()
    for _, relation, row in deltas:
        for atom in atoms_by_relation.get(relation, ()):
            binding = _unify(structure, atom, row)
            if binding is None:
                continue
            unbound = [name for name in names if name not in binding]
            growth = len(universe) ** len(unbound) if unbound else 1
            if len(candidates) + growth > limit:
                return None
            for combo in itertools.product(universe, repeat=len(unbound)):
                env = dict(binding)
                env.update(zip(unbound, combo))
                candidates.add(tuple(env[name] for name in names))
    return candidates


def _unify(structure: Structure, atom: Atom, row: tuple) -> dict | None:
    """Match the atom's term tuple against a concrete row, or ``None``."""
    binding: dict[str, object] = {}
    for term, value in zip(atom.terms, row):
        if isinstance(term, Var):
            bound = binding.get(term.name, _MISSING)
            if bound is _MISSING:
                binding[term.name] = value
            elif bound != value:
                return None
        elif isinstance(term, Const):
            if structure.constant(term.name) != value:
                return None
        else:  # pragma: no cover - the syntax has only Var/Const terms
            raise FMTError(f"unsupported term {term!r}")
    return binding


_MISSING = object()
