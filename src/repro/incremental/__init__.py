"""Incremental evaluation: updates, maintained indexes, enumeration.

The read-only stack (engine, locality, server) treats every structure as
a value: change one tuple and everything — Gaifman graph, census,
answers, codecs — is recomputed from scratch.  This package is the write
path.  :meth:`repro.structures.structure.Structure.insert` / ``delete``
bump a per-structure epoch and patch the structural memos; the modules
here maintain the *derived* state on top of that delta log:

* :mod:`repro.incremental.census` — :class:`~repro.incremental.census.CensusIndex`,
  epoch-aware locality-census maintenance.  Only elements within radius
  r of a touched tuple can change their sphere type (locality of the
  neighborhood map itself), so one multi-source BFS bounds the dirty set
  and everything outside it keeps its type.
* :mod:`repro.incremental.answers` — :class:`~repro.incremental.answers.AnswerIndex`,
  cached-answer maintenance for quantifier-free queries: a delta to
  relation R can only flip tuples that unify with some R-atom of the
  query, so candidate answers are enumerated from the delta, verified
  point-wise, and spliced into the cached answer set.
* :mod:`repro.incremental.enumeration` — :class:`~repro.incremental.enumeration.AnswerStream`
  and the constant-delay enumeration strategies behind
  :meth:`repro.engine.engine.Engine.enumerate`, after Kazana–Segoufin
  (arXiv:1105.3583): linear preprocessing, then answers one at a time
  with measured per-answer delay.

Submodules are imported directly (``from repro.incremental.census import
CensusIndex``) — this ``__init__`` stays import-light because
:mod:`repro.locality.neighborhoods` imports the census module at module
scope while the enumeration module imports locality back (lazily).
"""

__all__ = ["answers", "census", "enumeration"]
