"""Fixed-point substrate (S7): Datalog and LFP operators.

The source of the paper's canonical non-FO queries.
"""

from repro.fixpoint.datalog import DVar, Literal, Program, Rule, parse_program
from repro.fixpoint.lfp_logic import (
    Lfp,
    check_positive,
    connectivity_sentence,
    evaluate_lfp,
    even_sentence_over_orders,
    free_variables_lfp,
    tc_formula,
)
from repro.fixpoint.lfp import (
    has_directed_cycle,
    inflationary_fixed_point,
    least_fixed_point,
    reachable_from,
    same_generation,
    transitive_closure,
    transitive_closure_stages,
)

__all__ = [
    "DVar", "Literal", "Rule", "Program", "parse_program",
    "least_fixed_point", "inflationary_fixed_point",
    "transitive_closure", "transitive_closure_stages",
    "reachable_from", "same_generation", "has_directed_cycle",
    "Lfp", "check_positive", "evaluate_lfp", "free_variables_lfp",
    "tc_formula", "connectivity_sentence", "even_sentence_over_orders",
]
