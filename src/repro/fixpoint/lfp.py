"""Least fixed points and the canonical non-FO queries built from them.

Transitive closure, same-generation, reachability — the queries every
locality argument in the paper is aimed at. Implemented directly (not
through the Datalog engine) so the two substrates can validate each
other in the integration tests.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import TypeVar

from repro.errors import FMTError
from repro.structures.structure import Element, Structure

__all__ = [
    "least_fixed_point",
    "inflationary_fixed_point",
    "transitive_closure",
    "transitive_closure_stages",
    "reachable_from",
    "same_generation",
    "has_directed_cycle",
]

T = TypeVar("T")


def least_fixed_point(
    operator: Callable[[frozenset[T]], frozenset[T]],
    max_iterations: int = 10**6,
) -> frozenset[T]:
    """Iterate a monotone operator from ∅ until a fixed point.

    By Knaster–Tarski this is the least fixed point when ``operator`` is
    monotone. Raises :class:`FMTError` after ``max_iterations`` (a
    non-monotone operator may cycle).
    """
    current: frozenset[T] = frozenset()
    for _ in range(max_iterations):
        new = operator(current)
        if new == current:
            return current
        current = new
    raise FMTError(f"no fixed point reached in {max_iterations} iterations")


def inflationary_fixed_point(
    operator: Callable[[frozenset[T]], frozenset[T]],
    max_iterations: int = 10**6,
) -> frozenset[T]:
    """Iterate X ↦ X ∪ operator(X) from ∅ (always terminates on finite domains)."""
    current: frozenset[T] = frozenset()
    for _ in range(max_iterations):
        new = current | operator(current)
        if new == current:
            return current
        current = new
    raise FMTError(f"no fixed point reached in {max_iterations} iterations")


def transitive_closure(
    structure: Structure,
    relation: str = "E",
) -> frozenset[tuple[Element, Element]]:
    """The transitive closure of a binary relation (not reflexive).

    Semi-naive iteration: new pairs are joined against base edges only,
    so the running time is O(|TC| · max-degree) rather than cubic per
    round.
    """
    edges = structure.tuples(relation)
    successors: dict[Element, list[Element]] = {}
    for source, target in edges:
        successors.setdefault(source, []).append(target)

    closure: set[tuple[Element, Element]] = set(edges)
    frontier = set(edges)
    while frontier:
        new: set[tuple[Element, Element]] = set()
        for source, middle in frontier:
            for target in successors.get(middle, ()):
                pair = (source, target)
                if pair not in closure:
                    closure.add(pair)
                    new.add(pair)
        frontier = new
    return frozenset(closure)


def transitive_closure_stages(
    structure: Structure,
    relation: str = "E",
) -> list[frozenset[tuple[Element, Element]]]:
    """The stages E, E², ... of the fixed-point computation of TC.

    Each stage is the set of pairs reachable within i+1 steps. The BNDP
    discussion in the paper observes that "each stage of the fixed-point
    computation generates a new element of the degree-set" — experiment
    E6 plots exactly this.
    """
    edges = structure.tuples(relation)
    stages = []
    current = frozenset(edges)
    while True:
        stages.append(current)
        extended = set(current)
        for source, middle in current:
            for middle2, target in edges:
                if middle == middle2:
                    extended.add((source, target))
        new = frozenset(extended)
        if new == current:
            return stages
        current = new


def reachable_from(
    structure: Structure,
    start: Element,
    relation: str = "E",
) -> frozenset[Element]:
    """Elements reachable from ``start`` by directed edges (including it)."""
    if start not in structure:
        raise FMTError(f"element {start!r} is not in the universe")
    successors: dict[Element, list[Element]] = {}
    for source, target in structure.tuples(relation):
        successors.setdefault(source, []).append(target)
    seen = {start}
    stack = [start]
    while stack:
        current = stack.pop()
        for target in successors.get(current, ()):
            if target not in seen:
                seen.add(target)
                stack.append(target)
    return frozenset(seen)


def same_generation(
    structure: Structure,
    relation: str = "E",
) -> frozenset[tuple[Element, Element]]:
    """The same-generation query of the paper's Datalog program:

        sg(x, x) :-
        sg(x, y) :- e(x', x), e(y', y), sg(x', y')

    x and y are in the same generation iff x = y or their parents (any
    pair of predecessors) are. On the full binary tree of depth n the
    answer realizes degrees 1, 2, 4, ..., 2ⁿ — the paper's BNDP example.
    """
    edges = structure.tuples(relation)
    children: dict[Element, list[Element]] = {}
    for parent, child in edges:
        children.setdefault(parent, []).append(child)

    result: set[tuple[Element, Element]] = {
        (element, element) for element in structure.universe
    }
    frontier = set(result)
    while frontier:
        new: set[tuple[Element, Element]] = set()
        for parent_x, parent_y in frontier:
            for x in children.get(parent_x, ()):
                for y in children.get(parent_y, ()):
                    pair = (x, y)
                    if pair not in result:
                        result.add(pair)
                        new.add(pair)
        frontier = new
    return frozenset(result)


def has_directed_cycle(structure: Structure, relation: str = "E") -> bool:
    """Whether the directed graph has a cycle (the ACYCL query, negated).

    Iterative three-color depth-first search.
    """
    successors: dict[Element, list[Element]] = {}
    for source, target in structure.tuples(relation):
        successors.setdefault(source, []).append(target)

    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[Element, int] = {element: WHITE for element in structure.universe}

    for root in structure.universe:
        if color[root] != WHITE:
            continue
        stack: list[tuple[Element, Iterable[Element]]] = [(root, iter(successors.get(root, ())))]
        color[root] = GRAY
        while stack:
            node, children = stack[-1]
            found = False
            for child in children:
                if color[child] == GRAY:
                    return True
                if color[child] == WHITE:
                    color[child] = GRAY
                    stack.append((child, iter(successors.get(child, ()))))
                    found = True
                    break
            if not found:
                color[node] = BLACK
                stack.pop()
    return False
