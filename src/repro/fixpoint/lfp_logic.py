"""FO(LFP): first-order logic with the least-fixed-point operator.

The survey's arc ends where FO's limits begin: the queries the games and
locality tools prove undefinable (TC, connectivity, EVEN-over-orders)
are exactly the recursion FO lacks. FO(LFP) adds it back —

    [lfp_{R, x̄} φ(R, x̄)](t̄)

holds iff t̄ belongs to the least fixed point of the operator
X ↦ {x̄ : φ(X, x̄)}, which exists because φ must use R *positively*
(checked syntactically). On ordered structures FO(LFP) captures PTIME
(Immerman–Vardi) — the classical endpoint of the toolbox.

This module extends the formula AST with an :class:`Lfp` node, extends
evaluation, and provides the canonical definitions:
:func:`tc_formula` (transitive closure), :func:`connectivity_sentence`,
and :func:`even_sentence_over_orders` — EVEN, undefinable in FO over
orders (Theorem 3.1/E3), defined in FO(LFP).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EvaluationError, FormulaError
from repro.logic.analysis import free_variables
from repro.logic.builder import and_, exists, forall, not_, or_
from repro.logic.syntax import (
    And,
    Atom,
    Bottom,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Term,
    Top,
    Var,
)
from repro.structures.structure import Element, Structure

__all__ = [
    "Lfp",
    "check_positive",
    "evaluate_lfp",
    "tc_formula",
    "connectivity_sentence",
    "even_sentence_over_orders",
]


@dataclass(frozen=True, repr=False)
class Lfp(Formula):
    """The least-fixed-point formula [lfp_{R, x̄} body](terms).

    ``relation`` is the fixpoint predicate name (it must not clash with
    the signature); ``variables`` are the tuple variables x̄ of the
    inductive definition; ``body`` may mention R positively; ``terms``
    are the arguments the fixpoint is applied to.
    """

    relation: str
    variables: tuple[Var, ...]
    body: Formula
    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "variables", tuple(self.variables))
        object.__setattr__(self, "terms", tuple(self.terms))
        if not self.variables:
            raise FormulaError("lfp needs at least one tuple variable")
        if len(set(self.variables)) != len(self.variables):
            raise FormulaError("lfp tuple variables must be distinct")
        if len(self.terms) != len(self.variables):
            raise FormulaError(
                f"lfp applied to {len(self.terms)} terms but defines arity {len(self.variables)}"
            )
        check_positive(self.body, self.relation)

    def __repr__(self) -> str:
        vars_ = ", ".join(var.name for var in self.variables)
        terms = ", ".join(map(repr, self.terms))
        return f"[lfp_{{{self.relation}, {vars_}}} {self.body!r}]({terms})"


def check_positive(formula: Formula, relation: str, positive: bool = True) -> None:
    """Verify that ``relation`` occurs only under an even number of negations.

    Positivity makes the associated operator monotone, so the least
    fixed point exists (Knaster–Tarski). Raises :class:`FormulaError`
    on a negative occurrence.
    """
    if isinstance(formula, Atom):
        if formula.relation == relation and not positive:
            raise FormulaError(
                f"fixpoint predicate {relation!r} occurs negatively: the operator "
                "would not be monotone"
            )
        return
    if isinstance(formula, (Eq, Top, Bottom)):
        return
    if isinstance(formula, Not):
        check_positive(formula.body, relation, not positive)
        return
    if isinstance(formula, (And, Or)):
        for child in formula.children:
            check_positive(child, relation, positive)
        return
    if isinstance(formula, Implies):
        check_positive(formula.premise, relation, not positive)
        check_positive(formula.conclusion, relation, positive)
        return
    if isinstance(formula, Iff):
        # Both polarities on both sides.
        for side in (formula.left, formula.right):
            check_positive(side, relation, True)
            check_positive(side, relation, False)
        return
    if isinstance(formula, (Exists, Forall)):
        check_positive(formula.body, relation, positive)
        return
    if isinstance(formula, Lfp):
        # An inner lfp with the same name rebinds it; occurrences inside
        # belong to the inner fixpoint and impose no constraint here.
        if formula.relation != relation:
            check_positive(formula.body, relation, positive)
        return
    raise FormulaError(f"unknown formula node {formula!r}")


def evaluate_lfp(
    structure: Structure,
    formula: Formula,
    assignment: dict[Var, Element] | None = None,
) -> bool:
    """Evaluate an FO(LFP) formula (plain FO nodes plus :class:`Lfp`).

    Fixpoints are computed by naive iteration from ∅ — at most
    n^arity + 1 rounds, so evaluation is polynomial-time for a fixed
    formula (the Immerman–Vardi upper bound, made concrete).
    """
    env: dict[Var, Element] = dict(assignment or {})
    fixpoints: dict[str, frozenset[tuple[Element, ...]]] = {}
    # Fixpoint tables depend only on the bindings of the lfp body's free
    # variables *other than* the tuple variables; memoizing on those
    # keeps a closed fixpoint (like reach(x, y) under ∀x∀y) computed
    # once instead of once per outer binding.
    table_cache: dict[tuple, frozenset[tuple[Element, ...]]] = {}

    def run(node: Formula) -> bool:
        if isinstance(node, Atom):
            row = tuple(_value(term) for term in node.terms)
            if node.relation in fixpoints:
                return row in fixpoints[node.relation]
            return structure.holds(node.relation, row)
        if isinstance(node, Eq):
            return _value(node.left) == _value(node.right)
        if isinstance(node, Top):
            return True
        if isinstance(node, Bottom):
            return False
        if isinstance(node, Not):
            return not run(node.body)
        if isinstance(node, And):
            return all(run(child) for child in node.children)
        if isinstance(node, Or):
            return any(run(child) for child in node.children)
        if isinstance(node, Implies):
            return (not run(node.premise)) or run(node.conclusion)
        if isinstance(node, Iff):
            return run(node.left) == run(node.right)
        if isinstance(node, (Exists, Forall)):
            want = isinstance(node, Exists)
            shadow, had = env.get(node.var), node.var in env
            result = not want
            for value in structure.universe:
                env[node.var] = value
                if run(node.body) == want:
                    result = want
                    break
            if had:
                env[node.var] = shadow  # type: ignore[assignment]
            else:
                env.pop(node.var, None)
            return result
        if isinstance(node, Lfp):
            table = _fixpoint_table(node)
            row = tuple(_value(term) for term in node.terms)
            return row in table
        raise FormulaError(f"unknown formula node {node!r}")

    def _value(term: Term) -> Element:
        if isinstance(term, Var):
            try:
                return env[term]
            except KeyError:
                raise EvaluationError(f"free variable {term.name!r} has no binding") from None
        return structure.constant(term.name)

    def _fixpoint_table(node: Lfp) -> frozenset[tuple[Element, ...]]:
        import itertools

        if node.relation in fixpoints or structure.signature.has_relation(node.relation):
            raise FormulaError(
                f"fixpoint predicate {node.relation!r} shadows an existing relation"
            )
        parameters = tuple(
            sorted(
                free_variables_lfp(node.body) - set(node.variables),
                key=lambda var: var.name,
            )
        )
        cache_key = (id(node), tuple(env.get(var) for var in parameters))
        cached = table_cache.get(cache_key)
        if cached is not None:
            return cached
        arity = len(node.variables)
        all_rows = list(itertools.product(structure.universe, repeat=arity))
        current: frozenset[tuple[Element, ...]] = frozenset()
        shadows = {var: env.get(var) for var in node.variables}
        had = {var: var in env for var in node.variables}
        while True:
            fixpoints[node.relation] = current
            new_rows = set()
            for row in all_rows:
                for var, value in zip(node.variables, row):
                    env[var] = value
                if run(node.body):
                    new_rows.add(row)
            del fixpoints[node.relation]
            new = frozenset(new_rows)
            if new == current:
                break
            current = new
        for var in node.variables:
            if had[var]:
                env[var] = shadows[var]  # type: ignore[assignment]
            else:
                env.pop(var, None)
        table_cache[cache_key] = current
        return current

    free = free_variables_lfp(formula)
    missing = free - set(env)
    if missing:
        names = sorted(var.name for var in missing)
        raise EvaluationError(f"free variables {names} have no binding")
    return run(formula)


def free_variables_lfp(formula: Formula) -> frozenset[Var]:
    """Free variables of an FO(LFP) formula (Lfp binds its tuple variables)."""
    if isinstance(formula, Lfp):
        body_free = free_variables_lfp(formula.body) - set(formula.variables)
        term_vars = frozenset(term for term in formula.terms if isinstance(term, Var))
        return body_free | term_vars
    if isinstance(formula, Not):
        return free_variables_lfp(formula.body)
    if isinstance(formula, (And, Or)):
        result: frozenset[Var] = frozenset()
        for child in formula.children:
            result |= free_variables_lfp(child)
        return result
    if isinstance(formula, Implies):
        return free_variables_lfp(formula.premise) | free_variables_lfp(formula.conclusion)
    if isinstance(formula, Iff):
        return free_variables_lfp(formula.left) | free_variables_lfp(formula.right)
    if isinstance(formula, (Exists, Forall)):
        return free_variables_lfp(formula.body) - {formula.var}
    return free_variables(formula)


# ---------------------------------------------------------------------------
# The canonical FO(LFP) definitions
# ---------------------------------------------------------------------------


def tc_formula(source: str = "x", target: str = "y") -> Lfp:
    """TC(x, y) as an LFP formula: the least R with
    R(x, y) ← E(x, y) ∨ ∃z (E(x, z) ∧ R(z, y))."""
    x, y, z = Var(source), Var(target), Var("_lfp_z")
    body = or_(
        Atom("E", (x, y)),
        exists(z, and_(Atom("E", (x, z)), Atom("TC", (z, y)))),
    )
    return Lfp("TC", (x, y), body, (x, y))


def connectivity_sentence() -> Formula:
    """CONN as an FO(LFP) sentence over graphs (undirected reading).

    ∀x∀y (x = y ∨ reach(x, y)) where reach is the LFP closure of the
    symmetrized edge relation.
    """
    x, y, z = Var("x"), Var("y"), Var("_lfp_z")
    step = or_(Atom("E", (x, y)), Atom("E", (y, x)))
    body = or_(
        step,
        exists(
            z,
            and_(
                or_(Atom("E", (x, z)), Atom("E", (z, x))),
                Atom("REACH", (z, y)),
            ),
        ),
    )
    reach = Lfp("REACH", (x, y), body, (x, y))
    return forall(x, forall(y, or_(Eq(x, y), reach)))


def even_sentence_over_orders() -> Formula:
    """EVEN over linear orders — not FO (Theorem 3.1), but FO(LFP).

    EVENPOS is the least set containing the 2nd element and closed under
    double successor; the universe has even size iff the last element is
    in it. (Positions counted from 1: the 2nd, 4th, ... elements.)
    """
    x, y = Var("x"), Var("y")
    a, b, m = Var("_a"), Var("_b"), Var("_m")

    def succ(lo: Var, hi: Var) -> Formula:
        return and_(
            Atom("<", (lo, hi)),
            not_(exists(m, and_(Atom("<", (lo, m)), Atom("<", (m, hi))))),
        )

    first_is = lambda var: not_(exists(m, Atom("<", (m, var))))  # noqa: E731
    last_is = lambda var: not_(exists(m, Atom("<", (var, m))))  # noqa: E731

    # x is the 2nd element: ∃a (first(a) ∧ succ(a, x)).
    second = exists(a, and_(first_is(a), succ(a, x)))
    # Double successor step: ∃a∃b (EVENPOS(a) ∧ succ(a, b) ∧ succ(b, x)).
    step = exists(
        a,
        exists(
            b,
            and_(Atom("EVENPOS", (a,)), succ(a, b), succ(b, x)),
        ),
    )
    evenpos = Lfp("EVENPOS", (x,), or_(second, step), (y,))
    return exists(y, and_(last_is(y), evenpos))
