"""A Datalog engine: safety checking, stratified negation, semi-naive evaluation.

Datalog is the paper's source of queries *beyond* FO: transitive
closure, same-generation, connectivity. Those programs are what the
locality tools (BNDP, Gaifman, Hanf) prove inexpressible in FO, so the
engine is a first-class substrate of the reproduction.

Syntax conventions (concrete syntax accepted by :func:`parse_program`)::

    tc(X, Y) :- E(X, Y).
    tc(X, Z) :- E(X, Y), tc(Y, Z).
    iso(X)   :- Node(X), not linked(X).

Identifiers starting with an uppercase letter *inside an argument list*
are variables; numbers and quoted strings are constants. Predicate names
(before the parenthesis) may be any identifier — including the
structure's relation names such as ``E``.

EDB relations come from a :class:`~repro.structures.structure.Structure`;
IDB relations are defined by rules. Negation must be stratified; the
engine computes strata by SCC condensation and rejects programs with a
negative cycle.
"""

from __future__ import annotations

import re
from collections import defaultdict
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.errors import DatalogError
from repro.structures.structure import Element, Structure

__all__ = ["DVar", "Literal", "Rule", "Program", "parse_program"]


@dataclass(frozen=True)
class DVar:
    """A Datalog variable."""

    name: str

    def __repr__(self) -> str:
        return self.name


Argument = object  # DVar or any hashable constant


@dataclass(frozen=True)
class Literal:
    """An atom ``pred(args...)``, possibly negated in a rule body."""

    predicate: str
    arguments: tuple[Argument, ...]
    negated: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "arguments", tuple(self.arguments))

    def variables(self) -> frozenset[DVar]:
        return frozenset(arg for arg in self.arguments if isinstance(arg, DVar))

    def __repr__(self) -> str:
        args = ", ".join(map(repr, self.arguments))
        prefix = "not " if self.negated else ""
        return f"{prefix}{self.predicate}({args})"


@dataclass(frozen=True)
class Rule:
    """``head :- body``. A rule with an empty body is a fact template."""

    head: Literal
    body: tuple[Literal, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        if self.head.negated:
            raise DatalogError(f"rule head cannot be negated: {self.head!r}")

    def check_safety(self) -> None:
        """Every head / negated-literal variable must be positively bound."""
        positive: set[DVar] = set()
        for literal in self.body:
            if not literal.negated:
                positive |= literal.variables()
        unsafe = self.head.variables() - positive
        if unsafe and self.body:
            names = sorted(var.name for var in unsafe)
            raise DatalogError(f"unsafe rule {self!r}: head variables {names} not bound")
        if not self.body and self.head.variables():
            names = sorted(var.name for var in self.head.variables())
            raise DatalogError(f"fact {self.head!r} contains variables {names}")
        for literal in self.body:
            if literal.negated:
                loose = literal.variables() - positive
                if loose:
                    names = sorted(var.name for var in loose)
                    raise DatalogError(
                        f"unsafe rule {self!r}: negated variables {names} not bound"
                    )

    def __repr__(self) -> str:
        if not self.body:
            return f"{self.head!r}."
        return f"{self.head!r} :- {', '.join(map(repr, self.body))}."


class Program:
    """A stratified Datalog program.

    >>> program = parse_program('''
    ...     tc(X, Y) :- E(X, Y).
    ...     tc(X, Z) :- E(X, Y), tc(Y, Z).
    ... ''')
    >>> # program.evaluate(structure)["tc"] is the transitive closure.
    """

    def __init__(self, rules: Iterable[Rule]) -> None:
        self.rules = tuple(rules)
        if not self.rules:
            raise DatalogError("a program needs at least one rule")
        for rule in self.rules:
            rule.check_safety()
        self.idb = {rule.head.predicate for rule in self.rules}
        self._check_arities()
        self.strata = self._stratify()
        self.last_stats: dict[str, int] = {"derivations": 0, "rounds": 0}

    def _check_arities(self) -> None:
        arities: dict[str, int] = {}
        for rule in self.rules:
            for literal in (rule.head, *rule.body):
                known = arities.setdefault(literal.predicate, len(literal.arguments))
                if known != len(literal.arguments):
                    raise DatalogError(
                        f"predicate {literal.predicate!r} used with arities "
                        f"{known} and {len(literal.arguments)}"
                    )
        self.arities = arities

    def _stratify(self) -> list[frozenset[str]]:
        """SCC condensation; a negative edge inside an SCC is an error."""
        positive_edges: dict[str, set[str]] = defaultdict(set)
        negative_edges: dict[str, set[str]] = defaultdict(set)
        for rule in self.rules:
            head = rule.head.predicate
            for literal in rule.body:
                if literal.predicate not in self.idb:
                    continue
                if literal.negated:
                    negative_edges[head].add(literal.predicate)
                else:
                    positive_edges[head].add(literal.predicate)

        components = _tarjan_scc(
            sorted(self.idb),
            lambda node: sorted(positive_edges[node] | negative_edges[node]),
        )
        component_of = {}
        for index, component in enumerate(components):
            for node in component:
                component_of[node] = index
        for head, targets in negative_edges.items():
            for target in targets:
                if component_of[head] == component_of[target]:
                    raise DatalogError(
                        f"program is not stratifiable: {head!r} depends negatively "
                        f"on {target!r} within a recursive cycle"
                    )
        # Tarjan yields components in reverse topological order of the
        # dependency graph (head -> body), i.e. dependencies first.
        return [frozenset(component) for component in components]

    # -- evaluation -----------------------------------------------------------

    def evaluate(
        self, structure: Structure, seminaive: bool = True
    ) -> dict[str, frozenset[tuple[Element, ...]]]:
        """Compute every IDB relation over the given EDB structure.

        EDB predicates are the structure's relations. Returns a mapping
        IDB predicate → set of tuples. Raises :class:`DatalogError` if a
        body predicate is neither IDB nor in the structure's signature.

        ``seminaive=False`` switches to the textbook naive fixpoint (all
        rules refire against the full database every round) — only for
        ablation experiments; ``self.last_stats['derivations']`` records
        the work either way.
        """
        database: dict[str, set[tuple[Element, ...]]] = {}
        for name in structure.signature.relation_names():
            database[name] = set(structure.tuples(name))
        for predicate in self.idb:
            if predicate in database:
                raise DatalogError(f"IDB predicate {predicate!r} shadows an EDB relation")
            database[predicate] = set()
        for rule in self.rules:
            for literal in rule.body:
                if literal.predicate not in database:
                    raise DatalogError(
                        f"predicate {literal.predicate!r} is neither IDB nor in the "
                        f"structure's signature {structure.signature.relation_names()}"
                    )

        self.last_stats = {"derivations": 0, "rounds": 0}
        for stratum in self.strata:
            rules = [rule for rule in self.rules if rule.head.predicate in stratum]
            if seminaive:
                self._evaluate_stratum(rules, stratum, database, structure)
            else:
                self._evaluate_stratum_naive(rules, stratum, database)
        return {predicate: frozenset(database[predicate]) for predicate in sorted(self.idb)}

    def _evaluate_stratum_naive(
        self,
        rules: list[Rule],
        stratum: frozenset[str],
        database: dict[str, set[tuple[Element, ...]]],
    ) -> None:
        """The textbook naive fixpoint: refire everything until stable."""
        changed = True
        while changed:
            changed = False
            self.last_stats["rounds"] += 1
            for rule in rules:
                for row in list(self._fire(rule, database, None, stratum)):
                    self.last_stats["derivations"] += 1
                    if row not in database[rule.head.predicate]:
                        database[rule.head.predicate].add(row)
                        changed = True

    def _evaluate_stratum(
        self,
        rules: list[Rule],
        stratum: frozenset[str],
        database: dict[str, set[tuple[Element, ...]]],
        structure: Structure,
    ) -> None:
        # Naive first round, semi-naive afterwards.
        delta: dict[str, set[tuple[Element, ...]]] = {
            predicate: set() for predicate in stratum
        }
        for rule in rules:
            # Materialize before inserting: _fire iterates database sets.
            for row in list(self._fire(rule, database, None, stratum)):
                self.last_stats["derivations"] += 1
                if row not in database[rule.head.predicate]:
                    database[rule.head.predicate].add(row)
                    delta[rule.head.predicate].add(row)

        while any(delta.values()):
            self.last_stats["rounds"] += 1
            new_delta: dict[str, set[tuple[Element, ...]]] = {
                predicate: set() for predicate in stratum
            }
            for rule in rules:
                recursive_positions = [
                    index
                    for index, literal in enumerate(rule.body)
                    if not literal.negated and literal.predicate in stratum
                ]
                if not recursive_positions:
                    continue
                for position in recursive_positions:
                    for row in list(self._fire(rule, database, (position, delta), stratum)):
                        self.last_stats["derivations"] += 1
                        if row not in database[rule.head.predicate]:
                            database[rule.head.predicate].add(row)
                            new_delta[rule.head.predicate].add(row)
            delta = new_delta

    def _fire(
        self,
        rule: Rule,
        database: Mapping[str, set[tuple[Element, ...]]],
        focus: tuple[int, Mapping[str, set[tuple[Element, ...]]]] | None,
        stratum: frozenset[str],
    ) -> Iterable[tuple[Element, ...]]:
        """All head tuples derivable by one rule under the current database.

        ``focus = (i, delta)`` restricts body literal i to the delta
        relation (semi-naive evaluation). Negated literals are evaluated
        last, when their variables are bound (safety guarantees this).
        """
        ordered = sorted(
            range(len(rule.body)), key=lambda index: rule.body[index].negated
        )

        def extend(order_index: int, binding: dict[DVar, Element]) -> Iterable[dict[DVar, Element]]:
            if order_index == len(ordered):
                yield binding
                return
            literal = rule.body[ordered[order_index]]
            if literal.negated:
                row = tuple(
                    binding[arg] if isinstance(arg, DVar) else arg
                    for arg in literal.arguments
                )
                if row not in database[literal.predicate]:
                    yield from extend(order_index + 1, binding)
                return
            if focus is not None and ordered[order_index] == focus[0]:
                rows: Iterable[tuple[Element, ...]] = focus[1][literal.predicate]
            else:
                rows = database[literal.predicate]
            for row in rows:
                extended = dict(binding)
                if self._match(literal, row, extended):
                    yield from extend(order_index + 1, extended)

        for binding in extend(0, {}):
            yield tuple(
                binding[arg] if isinstance(arg, DVar) else arg
                for arg in rule.head.arguments
            )

    @staticmethod
    def _match(literal: Literal, row: tuple[Element, ...], binding: dict[DVar, Element]) -> bool:
        for arg, value in zip(literal.arguments, row):
            if isinstance(arg, DVar):
                bound = binding.get(arg)
                if bound is None:
                    binding[arg] = value
                elif bound != value:
                    return False
            elif arg != value:
                return False
        return True


def _tarjan_scc(nodes: list[str], successors) -> list[list[str]]:
    """Tarjan's strongly connected components, iterative, deterministic."""
    index_counter = 0
    indices: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []

    def strongconnect(root: str) -> None:
        nonlocal index_counter
        work = [(root, iter(successors(root)))]
        indices[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in indices:
                    indices[child] = lowlink[child] = index_counter
                    index_counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(successors(child))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], indices[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == indices[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))

    for node in nodes:
        if node not in indices:
            strongconnect(node)
    return components


# ---------------------------------------------------------------------------
# Concrete syntax
# ---------------------------------------------------------------------------

_TOKEN = re.compile(
    r"\s*(?:(?P<entail>:-)|(?P<punct>[(),.])|(?P<not>not\b)"
    r"|(?P<number>-?\d+)|(?P<string>\"[^\"]*\"|'[^']*')"
    r"|(?P<ident>[A-Za-z_<][A-Za-z0-9_<>']*)|(?P<comment>%[^\n]*))"
)


def parse_program(text: str) -> Program:
    """Parse the concrete Datalog syntax described in the module docstring."""
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        if text[pos].isspace():
            pos += 1
            continue
        match = _TOKEN.match(text, pos)
        if match is None:
            raise DatalogError(f"unexpected character {text[pos]!r} at position {pos}")
        kind = match.lastgroup or ""
        if kind != "comment":
            tokens.append((kind, match.group().strip()))
        pos = match.end()
    tokens.append(("eof", ""))

    index = 0

    def peek() -> tuple[str, str]:
        return tokens[index]

    def advance() -> tuple[str, str]:
        nonlocal index
        token = tokens[index]
        index += 1
        return token

    def expect(kind: str, value: str | None = None) -> tuple[str, str]:
        token = peek()
        if token[0] != kind or (value is not None and token[1] != value):
            raise DatalogError(f"expected {value or kind!r}, found {token[1]!r}")
        return advance()

    def argument() -> Argument:
        kind, value = advance()
        if kind == "number":
            return int(value)
        if kind == "string":
            return value[1:-1]
        if kind == "ident":
            if value[0].isupper():
                return DVar(value)
            return value
        raise DatalogError(f"expected an argument, found {value!r}")

    def literal() -> Literal:
        negated = False
        if peek() == ("not", "not"):
            advance()
            negated = True
        _, name = expect("ident")
        expect("punct", "(")
        args = [argument()]
        while peek() == ("punct", ","):
            advance()
            args.append(argument())
        expect("punct", ")")
        return Literal(name, tuple(args), negated)

    rules: list[Rule] = []
    while peek()[0] != "eof":
        head = literal()
        if head.negated:
            raise DatalogError(f"rule head cannot be negated: {head!r}")
        body: list[Literal] = []
        if peek()[0] == "entail":
            advance()
            body.append(literal())
            while peek() == ("punct", ","):
                advance()
                body.append(literal())
        expect("punct", ".")
        rules.append(Rule(head, tuple(body)))
    return Program(rules)
