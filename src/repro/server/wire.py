"""The stable wire format (v1): structures, formulas, answers, errors.

Every byte that crosses the service boundary — HTTP request and response
bodies, the serialized conformance corpus, answer pages — goes through
this module, so the encoding is defined exactly once.  The format grew
out of the conformance corpus serializer (PR 4) and is factored here so
the server (S18) and the corpus share one set of bytes: a corpus file is
a valid structure upload, and a fuzzer disagreement replays against a
live server without re-encoding.

Conventions
-----------
* **Formulas** travel as *concrete syntax* re-read by
  :func:`repro.logic.parser.parse` — human-diffable, curl-able, and the
  round trip doubles as a parser/printer conformance check.
* **Universe elements** may be ints, strings, or (nested) tuples — the
  latter appear in disjoint unions, whose elements are tagged ``(0, a)``
  / ``(1, b)``.  Tuples are encoded as ``{"t": [...]}`` objects so
  decoding is injective.
* **Answer sets** are lists of encoded tuples in a canonical sort order
  (`repr` of the decoded tuple), which is what makes server-side paging
  deterministic: the same page of the same answer set is always the
  same rows.
* **Errors** are typed payloads — ``{"error": {"type", "message", ...}}``
  — so a refusal (429/503 on :class:`~repro.errors.BudgetExceededError`)
  is machine-distinguishable from a caller mistake (400/404) without
  string matching.
* **Trace ids** (telemetry v2) are an *additive* v1 field: any request
  body may carry ``"trace_id"`` (lowercase hex, ≤64 chars; also
  accepted as an ``X-Trace-Id`` header), and every response — success
  page or typed error payload — echoes the request's final trace id at
  the top level, so a client can join its call against the server's
  span trees, access log, and degradation events.  Old clients that
  send no id still get one minted and echoed.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.errors import (
    BudgetExceededError,
    FMTError,
    InjectedFaultError,
    ServerError,
    StructureError,
)
from repro.logic.parser import parse
from repro.logic.signature import Signature
from repro.logic.syntax import (
    And,
    Atom,
    Bottom,
    Const,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Term,
    Top,
    Var,
)
from repro.structures.structure import Element, Structure

__all__ = [
    "WIRE_VERSION",
    "format_formula",
    "parse_formula",
    "encode_element",
    "decode_element",
    "structure_to_dict",
    "structure_from_dict",
    "structure_digest",
    "updates_from_wire",
    "updates_to_wire",
    "answers_to_wire",
    "answers_from_wire",
    "error_to_wire",
    "status_for_error",
]

#: Version stamp carried by ``/healthz`` and ``/metrics``; bump on any
#: change that is not backward-compatible with serialized corpora.
WIRE_VERSION = 1


# -- formulas ----------------------------------------------------------------


def format_formula(formula: Formula) -> str:
    """Render a formula in the parser's concrete syntax.

    ``parse(format_formula(φ), constants=...)`` is logically equivalent
    to φ — identical up to the parser's flattening of nested ∧/∨ chains
    (one more round trip is a fixpoint; the serialization tests assert
    both).  Quantifiers always print with the scope-disambiguating dot,
    constants print as bare identifiers (re-read as constants when the
    signature is passed to :func:`parse`), and ``<``-atoms use the infix
    sugar.
    """
    if isinstance(formula, Atom):
        if formula.relation == "<" and len(formula.terms) == 2:
            return f"{_term(formula.terms[0])} < {_term(formula.terms[1])}"
        args = ", ".join(_term(term) for term in formula.terms)
        return f"{formula.relation}({args})"
    if isinstance(formula, Eq):
        return f"{_term(formula.left)} = {_term(formula.right)}"
    if isinstance(formula, Top):
        return "true"
    if isinstance(formula, Bottom):
        return "false"
    if isinstance(formula, Not):
        return f"~({format_formula(formula.body)})"
    if isinstance(formula, And):
        if not formula.children:
            return "true"
        return "(" + " & ".join(_operand(child) for child in formula.children) + ")"
    if isinstance(formula, Or):
        if not formula.children:
            return "false"
        return "(" + " | ".join(_operand(child) for child in formula.children) + ")"
    if isinstance(formula, Implies):
        return f"({_operand(formula.premise)} -> {_operand(formula.conclusion)})"
    if isinstance(formula, Iff):
        return f"({_operand(formula.left)} <-> {_operand(formula.right)})"
    if isinstance(formula, Exists):
        return f"exists {formula.var.name}. ({format_formula(formula.body)})"
    if isinstance(formula, Forall):
        return f"forall {formula.var.name}. ({format_formula(formula.body)})"
    raise StructureError(f"cannot serialize formula node {formula!r}")


def _operand(formula: Formula) -> str:
    # A quantifier's body extends as far right as possible, so a
    # quantified operand of an infix connective must close its scope
    # with explicit parentheses.
    text = format_formula(formula)
    if isinstance(formula, (Exists, Forall)):
        return f"({text})"
    return text


def _term(term: Term) -> str:
    if isinstance(term, (Var, Const)):
        return term.name
    raise StructureError(f"cannot serialize term {term!r}")


def parse_formula(text: str, constants: Signature | frozenset | None = None) -> Formula:
    """Decode a wire formula: :func:`repro.logic.parser.parse` with the
    signature (or constant set) deciding which identifiers are constants."""
    return parse(text, constants=constants)


# -- element encoding --------------------------------------------------------


def encode_element(element: Element) -> Any:
    """One universe element as a JSON value (injective; see module doc)."""
    if isinstance(element, bool) or element is None:
        raise StructureError(f"cannot serialize universe element {element!r}")
    if isinstance(element, (int, str)):
        return element
    if isinstance(element, tuple):
        return {"t": [encode_element(part) for part in element]}
    raise StructureError(f"cannot serialize universe element {element!r}")


def decode_element(value: Any) -> Element:
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, dict) and set(value) == {"t"}:
        return tuple(decode_element(part) for part in value["t"])
    raise StructureError(f"cannot deserialize universe element {value!r}")


# -- structures --------------------------------------------------------------


def structure_to_dict(structure: Structure) -> dict:
    """A JSON-ready dict capturing the structure exactly."""
    return {
        "signature": {
            "relations": {
                name: structure.signature.arity(name)
                for name in structure.signature.relation_names()
            },
            "constants": sorted(structure.signature.constants),
        },
        "universe": [encode_element(element) for element in structure.universe],
        "relations": {
            name: sorted(
                ([encode_element(value) for value in row] for row in tuples),
                key=repr,
            )
            for name, tuples in sorted(structure.relations.items())
        },
        "constants": {
            name: encode_element(value)
            for name, value in sorted(structure.constants.items())
        },
    }


def structure_from_dict(data: dict) -> Structure:
    if not isinstance(data, dict) or "signature" not in data or "universe" not in data:
        raise StructureError(
            "wire structure must be an object with 'signature' and 'universe'"
        )
    signature = Signature(
        dict(data["signature"]["relations"]),
        frozenset(data["signature"].get("constants", ())),
    )
    universe = [decode_element(value) for value in data["universe"]]
    relations = {
        name: [tuple(decode_element(value) for value in row) for row in rows]
        for name, rows in data.get("relations", {}).items()
    }
    constants = {
        name: decode_element(value)
        for name, value in data.get("constants", {}).items()
    }
    return Structure(signature, universe, relations, constants)


def structure_digest(structure: Structure) -> str:
    """A content-addressed structure id: ``s-`` + SHA-256 prefix of the
    canonical wire encoding.  Identical structures (however uploaded, by
    whichever tenant) share an id, which is what lets the server share
    plan- and answer-cache entries across tenants safely.  Updates
    (``POST /v1/structures/<id>/updates``) keep the addressing honest by
    re-registering the mutated structure under its *new* digest and
    retiring the old id."""
    canonical = json.dumps(structure_to_dict(structure), sort_keys=True)
    return "s-" + hashlib.sha256(canonical.encode()).hexdigest()[:16]


# -- structure updates (wire v1 additive) ------------------------------------


def updates_from_wire(data: Any) -> list[tuple[str, str, tuple]]:
    """Decode a batched-delta payload: ``[{"op", "relation", "row"}, ...]``.

    Shape validation only — ``op`` must be ``insert`` or ``delete``,
    ``relation`` a string, ``row`` a list of wire elements.  Whether the
    relation exists, the arity matches, and the row's elements lie in
    the universe is checked by the service against the target structure
    (those are *that structure's* errors, not the encoding's).
    """
    if not isinstance(data, list) or not data:
        raise StructureError("'updates' must be a non-empty list of delta objects")
    deltas: list[tuple[str, str, tuple]] = []
    for entry in data:
        if not isinstance(entry, dict):
            raise StructureError(f"delta must be an object, got {entry!r}")
        op = entry.get("op")
        if op not in ("insert", "delete"):
            raise StructureError(
                f"delta op must be 'insert' or 'delete', got {op!r}"
            )
        relation = entry.get("relation")
        if not isinstance(relation, str):
            raise StructureError(f"delta relation must be a string, got {relation!r}")
        row = entry.get("row")
        if not isinstance(row, list):
            raise StructureError(f"delta row must be a list, got {row!r}")
        deltas.append((op, relation, tuple(decode_element(value) for value in row)))
    return deltas


def updates_to_wire(deltas: list[tuple[str, str, tuple]]) -> list[dict]:
    """Encode deltas in the request format (used by clients and tests)."""
    return [
        {
            "op": op,
            "relation": relation,
            "row": [encode_element(value) for value in row],
        }
        for op, relation, row in deltas
    ]


# -- answer sets -------------------------------------------------------------


def answers_to_wire(rows: frozenset[tuple[Element, ...]]) -> list[list[Any]]:
    """An answer set as a canonically ordered list of encoded tuples.

    The sort key is ``repr`` of the decoded tuple — total over the mixed
    int/str/tuple element universe — so paging a large answer set is
    deterministic across requests and across server restarts.
    """
    return [
        [encode_element(value) for value in row]
        for row in sorted(rows, key=repr)
    ]


def answers_from_wire(rows: list[list[Any]]) -> frozenset[tuple[Element, ...]]:
    return frozenset(
        tuple(decode_element(value) for value in row) for row in rows
    )


# -- typed errors ------------------------------------------------------------


def status_for_error(error: BaseException) -> int:
    """The HTTP status an error maps to.

    * :class:`~repro.errors.InjectedFaultError` → 503 — a server-side
      (injected) fault; the client may retry.
    * any other :class:`~repro.errors.BudgetExceededError` → 429 — the
      request exceeded its admission budget; a typed refusal.
    * :class:`~repro.errors.ServerError` → its own ``status`` (404 for
      unknown tenants/structures/queries, 409 for prepare conflicts).
    * any other :class:`~repro.errors.FMTError` → 400 — the request was
      understood but invalid (parse errors, bad structures, ...).
    """
    if isinstance(error, InjectedFaultError):
        return 503
    if isinstance(error, BudgetExceededError):
        return 429
    if isinstance(error, ServerError):
        return error.status
    if isinstance(error, FMTError):
        return 400
    return 500


def error_to_wire(
    error: BaseException, status: int | None = None, trace_id: str | None = None
) -> dict:
    """The typed error payload for one failed request.

    Budget refusals additionally carry ``refusal: true`` plus the
    ``spent``/``budget`` accounting from
    :class:`~repro.errors.BudgetExceededError`, so admission-control
    outcomes are machine-countable (the conformance remote backend and
    the CI smoke assert on these fields, not on message text).
    ``trace_id`` (when the failing request ran under a trace context) is
    echoed at the top level of the error body, same as on success.
    """
    status = status_for_error(error) if status is None else status
    payload: dict[str, Any] = {
        "type": type(error).__name__,
        "message": str(error),
    }
    if isinstance(error, BudgetExceededError):
        payload["refusal"] = True
        payload["spent"] = error.spent
        payload["budget"] = error.budget
    wire: dict[str, Any] = {"error": payload, "status": status}
    if trace_id is not None:
        wire["trace_id"] = trace_id
    return wire
