"""The HTTP/JSON transport: stdlib ``ThreadingHTTPServer`` around
:class:`~repro.server.service.QueryService`.

Endpoints (all JSON, wire format v1 — see :mod:`repro.server.wire`):

=========================  ==================================================
``GET  /healthz``          liveness + wire version + occupancy
``GET  /metrics``          telemetry snapshot, cache stats, per-tenant counters
``POST /v1/structures``    upload a structure → content-addressed id
``POST /v1/queries``       prepare a named query (parse + validate once)
``POST /v1/answers``       answer pages: prepared or ad-hoc, single or batched
``POST /v1/structures/<id>/updates``  batched tuple deltas → new content id
=========================  ==================================================

The handler is a pure codec: decode JSON → call the service → encode the
result or the typed error payload.  Status codes come from
:func:`repro.server.wire.status_for_error` — 429 for budget refusals,
503 for injected faults, 404/409/400 for caller mistakes — so clients
(including the conformance ``remote`` backend) can branch on status and
``error.type`` without parsing message text.

**Tracing (telemetry v2).**  Every request gets a
:class:`~repro.telemetry.context.TraceContext` — the client's id from
the ``trace_id`` body field or ``X-Trace-Id`` header when valid, a
fresh one otherwise — installed as a request-scoped tracer stack for
the duration of the handler, so a reused ``ThreadingHTTPServer`` thread
can never leak spans between tenants.  The final trace id is echoed in
every response body (success and typed error) and as an ``X-Trace-Id``
response header; span *recording* follows the service's sampling rate.

``GET /metrics`` content-negotiates: JSON by default (unchanged), and
Prometheus text exposition 0.0.4 when the ``Accept`` header asks for
``text/plain`` or the query string says ``?format=prometheus``.

Concurrency: ``ThreadingHTTPServer`` gives one thread per in-flight
request; everything those threads touch (service dicts, engine caches,
tenant counters) takes its own lock, and the per-request admission token
bounds how long any of them can run.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.errors import ServerError
from repro.server import wire
from repro.server.service import QueryService
from repro.telemetry.context import mint, trace_scope
from repro.telemetry.prometheus import CONTENT_TYPE as _PROMETHEUS_CONTENT_TYPE
from repro.telemetry.tracer import span as _span

__all__ = ["QueryServer", "make_server", "serve"]

_MAX_BODY_BYTES = 32 * 1024 * 1024


class QueryServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` carrying the service instance."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: QueryService, verbose: bool = False):
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server_version = "fmtoolbox/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(
        self, status: int, payload: dict[str, Any], trace_id: str | None = None
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if trace_id is not None:
            self.send_header("X-Trace-Id", trace_id)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(
        self, status: int, text: str, content_type: str, trace_id: str | None = None
    ) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if trace_id is not None:
            self.send_header("X-Trace-Id", trace_id)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_payload(
        self, error: BaseException, trace_id: str | None = None
    ) -> None:
        payload = wire.error_to_wire(error, trace_id=trace_id)
        self._send_json(payload["status"], payload, trace_id=trace_id)

    def _json_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServerError("request body required")
        if length > _MAX_BODY_BYTES:
            raise ServerError(f"request body over {_MAX_BODY_BYTES} bytes", status=413)
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ServerError(f"request body is not valid JSON: {error}") from None
        if not isinstance(body, dict):
            raise ServerError("request body must be a JSON object")
        return body

    @property
    def _service(self) -> QueryService:
        return self.server.service  # type: ignore[attr-defined]

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        context = mint(
            self.headers.get("X-Trace-Id"), rate=self._service.trace_rate()
        )
        try:
            parts = urlsplit(self.path)
            if parts.path == "/healthz":
                self._send_json(200, self._service.health(), trace_id=context.trace_id)
            elif parts.path == "/metrics":
                if self._wants_prometheus(parts.query):
                    self._send_text(
                        200,
                        self._service.metrics_prometheus(),
                        _PROMETHEUS_CONTENT_TYPE,
                        trace_id=context.trace_id,
                    )
                else:
                    self._send_json(
                        200, self._service.metrics(), trace_id=context.trace_id
                    )
            else:
                self._send_error_payload(
                    ServerError(f"no route for GET {self.path}", status=404),
                    trace_id=context.trace_id,
                )
        except Exception as error:  # noqa: BLE001 — boundary: encode, don't crash
            self._send_error_payload(error, trace_id=context.trace_id)

    def _wants_prometheus(self, query: str) -> bool:
        requested = parse_qs(query).get("format", [""])[0]
        if requested == "prometheus":
            return True
        if requested == "json":
            return False
        return "text/plain" in (self.headers.get("Accept") or "")

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        context = None
        header_id = self.headers.get("X-Trace-Id")
        try:
            body = self._json_body()
            context = mint(
                body.get("trace_id", header_id), rate=self._service.trace_rate()
            )
            with trace_scope(context):
                with _span("server.request") as request_span:
                    request_span.set("path", self.path)
                    update_target = _updates_target(self.path)
                    if self.path == "/v1/structures":
                        result = self._post_structures(body)
                    elif self.path == "/v1/queries":
                        result = self._post_queries(body)
                    elif self.path == "/v1/answers":
                        result = self._post_answers(body)
                    elif update_target is not None:
                        result = self._post_structure_updates(update_target, body)
                    else:
                        raise ServerError(
                            f"no route for POST {self.path}", status=404
                        )
            result["trace_id"] = context.trace_id
            self._send_json(200, result, trace_id=context.trace_id)
        except Exception as error:  # noqa: BLE001 — boundary: encode, don't crash
            if context is None:
                context = mint(header_id, rate=self._service.trace_rate())
            self._send_error_payload(error, trace_id=context.trace_id)

    # -- endpoint bodies -----------------------------------------------------

    def _post_structures(self, body: dict[str, Any]) -> dict[str, Any]:
        if "structure" not in body:
            raise ServerError("'structure' is required")
        structure_id = self._service.add_structure(
            body["structure"], tenant=body.get("tenant")
        )
        structure = self._service.structure(structure_id)
        return {
            "structure_id": structure_id,
            "size": structure.size,
            "wire_version": wire.WIRE_VERSION,
        }

    def _post_queries(self, body: dict[str, Any]) -> dict[str, Any]:
        tenant = _required_str(body, "tenant")
        prepared = self._service.prepare(
            tenant,
            _required_str(body, "formula"),
            name=body.get("name"),
            structure_id=body.get("structure_id"),
            constants=tuple(body.get("constants", ())),
            free_variables=body.get("free_variables"),
        )
        return {
            "query": prepared.name,
            "formula": prepared.text,
            "free_variables": list(prepared.free_names),
            "is_sentence": prepared.is_sentence,
        }

    def _post_structure_updates(
        self, structure_id: str, body: dict[str, Any]
    ) -> dict[str, Any]:
        tenant = _required_str(body, "tenant")
        updates = body.get("updates")
        if not isinstance(updates, list):
            raise ServerError("'updates' must be a list of delta objects")
        return self._service.apply_updates(
            tenant,
            structure_id,
            updates,
            deadline_ms=body.get("deadline_ms"),
            max_rows=body.get("max_rows"),
        )

    def _post_answers(self, body: dict[str, Any]) -> dict[str, Any]:
        tenant = _required_str(body, "tenant")
        if "requests" in body:
            pages = self._service.answers_batch(
                tenant,
                body["requests"],
                deadline_ms=body.get("deadline_ms"),
                max_rows=body.get("max_rows"),
                page_size=body.get("page_size"),
            )
            return {"results": [page.to_wire() for page in pages]}
        page = self._service.answers(
            tenant,
            body.get("structure_id", ""),
            query=body.get("query"),
            formula=body.get("formula"),
            page=int(body.get("page", 0)),
            page_size=body.get("page_size"),
            deadline_ms=body.get("deadline_ms"),
            max_rows=body.get("max_rows"),
            free_variables=body.get("free_variables"),
            explain=bool(body.get("explain", False)),
        )
        return page.to_wire()


def _updates_target(path: str) -> str | None:
    """The structure id of a ``/v1/structures/<id>/updates`` path, if any."""
    parts = path.split("/")
    if (
        len(parts) == 5
        and parts[:3] == ["", "v1", "structures"]
        and parts[4] == "updates"
        and parts[3]
    ):
        return parts[3]
    return None


def _required_str(body: dict[str, Any], key: str) -> str:
    value = body.get(key)
    if not isinstance(value, str) or not value:
        raise ServerError(f"{key!r} must be a non-empty string")
    return value


def make_server(
    service: QueryService | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> QueryServer:
    """Bind (but do not start) a server; ``port=0`` picks an ephemeral
    port, readable from ``server.server_address``."""
    service = service if service is not None else QueryService()
    return QueryServer((host, port), service, verbose=verbose)


def serve(
    service: QueryService | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> tuple[QueryServer, threading.Thread]:
    """Start a server on a daemon thread (tests and notebooks); returns
    the server (for ``.url`` / ``.shutdown()``) and its thread."""
    server = make_server(service, host, port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread
