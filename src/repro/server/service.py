"""The multi-tenant query service (S18): sessions, prepared queries,
admission control.

:class:`QueryService` is the transport-independent core of the server —
the HTTP layer (:mod:`repro.server.http`) is a thin codec around it, and
tests/benchmarks drive it directly.  It owns exactly the state a served
FO system needs and nothing else:

* a **structure store** — content-addressed by
  :func:`repro.server.wire.structure_digest`, shared across tenants
  (sharing by content is what makes the shared caches effective).
  Structures are mutable through exactly one door:
  ``POST /v1/structures/<id>/updates`` (:meth:`QueryService.apply_updates`)
  applies a batch of tuple deltas in place — the incremental layer
  patches the structure's indexes rather than rebuilding them — and
  re-registers the structure under its new content digest, retiring the
  old id (queries against a retired id get a typed 409 naming the
  successor, so a client that raced an update can follow the chain);
* one **shared engine** — its plan and answer caches (the PR 5 locked
  LRUs) are the cross-tenant plan cache the ISSUE names: the first
  tenant to run a query pays for planning, every tenant afterwards
  reuses it;
* per-tenant **sessions** — named *prepared queries* (parse + validate
  + normalize once at prepare time, execute many), a per-tenant
  :class:`~repro.resilience.fallback.FallbackChain` over the shared
  engine (per-tenant circuit breakers: one tenant's pathological
  workload opens *its* breakers, not its neighbours'), and per-tenant
  request/refusal counters;
* **admission control** — every request runs under the tightest of the
  tenant's :class:`~repro.resilience.budget.Budget` spec, the service
  default, and the request's own ``deadline_ms``/``max_rows`` overrides
  (requests may tighten their envelope, never loosen it).  Exhaustion
  surfaces as the typed :class:`~repro.errors.BudgetExceededError`,
  which the wire layer maps to 429 (refusal) or 503 (injected fault) —
  never a hang, never a wrong answer.

Prepared answers flow through the tenant's fallback chain (engine →
bounded-degree census → naive), so under ``REPRO_FAULT_INJECT`` the
service degrades instead of erroring.  Ad-hoc answers (a formula in the
request body instead of a prepared-query name) deliberately bypass the
shared answer cache: cache admission is a prepared-query privilege, so
a flood of one-off queries cannot evict the working set of every other
tenant.  That split is also what the throughput benchmark measures —
prepared vs cold is the price of skipping preparation.

**Observability (telemetry v2, S19).**  Every answer request runs under
a :class:`~repro.telemetry.context.TraceContext` — reused when the
transport already installed one, minted here when the service is driven
directly — sampled at ``trace_sample``; the trace id is stamped on every
span, every degradation the request caused, the structured access-log
line (:class:`~repro.telemetry.logs.AccessLog`: tenant, query hash,
rows, budget spend, degradations, breaker states, status, duration),
and the wire response.  Labeled request metrics
(``server.requests{tenant,outcome}``, ``server.request_ms{tenant}``)
are recorded unconditionally — they are cheap, bounded-cardinality, and
what ``GET /metrics`` exposes in Prometheus text form.  The wire-level
``explain`` option returns :meth:`Engine.profile`'s per-node actuals
plus the request's span tree.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any

from repro.engine.engine import Engine
from repro.errors import (
    BudgetExceededError,
    FMTError,
    ServerError,
    UnknownResourceError,
)
from repro.logic.analysis import free_variables, validate
from repro.logic.syntax import Formula
from repro.resilience.budget import Budget, CancelToken
from repro.resilience.fallback import FallbackChain, default_chain
from repro.server import wire
from repro.structures.structure import Element, Structure
from repro.telemetry import context as trace_context
from repro.telemetry.logs import AccessLog
from repro.telemetry.metrics import counter as _counter
from repro.telemetry.metrics import gauge as _gauge
from repro.telemetry.metrics import histogram as _histogram
from repro.telemetry.metrics import metrics_snapshot
from repro.telemetry.prometheus import render_exposition
from repro.telemetry.tracer import is_enabled as _telemetry_enabled
from repro.telemetry.tracer import open_root as _open_root
from repro.telemetry.tracer import span as _span

__all__ = [
    "AnswerPage",
    "PreparedQuery",
    "QueryService",
    "TenantSession",
]

#: Page-size ceiling: one answer page never carries more rows than this,
#: whatever the request asks for (wire-level flow control).
MAX_PAGE_SIZE = 4096
DEFAULT_PAGE_SIZE = 512


@dataclass(frozen=True)
class PreparedQuery:
    """One named query, parsed and validated once at prepare time.

    ``free_names`` is the sorted free-variable order — the column order
    of every answer page, fixed at prepare time so clients can bind
    columns positionally.
    """

    name: str
    text: str
    formula: Formula
    free_names: tuple[str, ...]
    constants: tuple[str, ...] = ()

    @property
    def is_sentence(self) -> bool:
        return not self.free_names


@dataclass(frozen=True)
class AnswerPage:
    """One page of one answer set, plus enough context to continue."""

    rows: tuple[tuple[Element, ...], ...]
    page: int
    page_size: int
    total_rows: int
    has_more: bool
    free_names: tuple[str, ...]
    query: str | None = None
    structure_id: str = ""
    explain: dict[str, Any] | None = None

    def to_wire(self) -> dict[str, Any]:
        payload = {
            "rows": [
                [wire.encode_element(value) for value in row] for row in self.rows
            ],
            "page": self.page,
            "page_size": self.page_size,
            "total_rows": self.total_rows,
            "has_more": self.has_more,
            "free_variables": list(self.free_names),
            "query": self.query,
            "structure_id": self.structure_id,
        }
        if self.explain is not None:
            payload["explain"] = self.explain
        return payload


class TenantSession:
    """Everything the service keeps per tenant.

    The chain wraps the *shared* engine — rungs and caches are common,
    circuit breakers and counters are private to the tenant.
    """

    def __init__(self, name: str, budget: Budget | None, chain: FallbackChain) -> None:
        self.name = name
        self.budget = budget
        self.chain = chain
        self.prepared: dict[str, PreparedQuery] = {}
        self.counters: dict[str, int] = {
            "requests": 0,
            "answered": 0,
            "refused": 0,
            "errors": 0,
            "rows_returned": 0,
            "batch_requests": 0,
            "structures_registered": 0,
            "queries_prepared": 0,
            "updates_applied": 0,
        }
        self.lock = threading.Lock()

    def count(self, key: str, amount: int = 1) -> None:
        with self.lock:
            self.counters[key] = self.counters.get(key, 0) + amount

    def snapshot(self) -> dict[str, Any]:
        with self.lock:
            counters = dict(self.counters)
        return {
            "counters": counters,
            "prepared_queries": sorted(self.prepared),
            "budget": None
            if self.budget is None
            else {
                "deadline_ms": self.budget.deadline_ms,
                "max_rows": self.budget.max_rows,
                "max_solver_nodes": self.budget.max_solver_nodes,
            },
            "breakers": {
                rung: breaker.state for rung, breaker in self.chain.breakers.items()
            },
            "degradations": len(self.chain.degradations),
        }


class QueryService:
    """The transport-independent multi-tenant FO query service.

    Parameters
    ----------
    default_budget:
        Admission envelope applied to tenants that register without
        their own spec (and to auto-created tenants). ``None`` means
        unbudgeted unless the request itself carries limits.
    engine:
        The shared engine; defaults to a fresh one. Its caches are the
        cross-tenant plan/answer caches.
    degree_bound:
        Degree bound for the census rung of every tenant chain.
    auto_register:
        When true (default), a request naming an unknown tenant creates
        a session with the default budget — the multi-tenant analogue of
        "anonymous users get the public rate limit". When false, unknown
        tenants are a 404.
    trace_sample:
        Fraction of requests whose spans are recorded (deterministic
        per trace id). ``None`` (default) follows the process-wide
        telemetry switch: record everything when telemetry is enabled,
        nothing otherwise. Trace ids are minted and echoed regardless —
        sampling decides *profiling*, not *identity*.
    access_log:
        Optional :class:`~repro.telemetry.logs.AccessLog` receiving one
        structured entry per answer request.
    readonly:
        When true, :meth:`apply_updates` refuses every request with a
        typed 403 — the switch for replicas that must never diverge from
        their upstream (``--readonly`` on the CLI).
    """

    def __init__(
        self,
        default_budget: Budget | None = None,
        engine: Engine | None = None,
        degree_bound: int = 3,
        auto_register: bool = True,
        max_page_size: int = MAX_PAGE_SIZE,
        trace_sample: float | None = None,
        access_log: AccessLog | None = None,
        readonly: bool = False,
    ) -> None:
        self.engine = engine if engine is not None else Engine()
        self.default_budget = default_budget
        self.degree_bound = degree_bound
        self.auto_register = auto_register
        self.max_page_size = min(max_page_size, MAX_PAGE_SIZE)
        self.trace_sample = trace_sample
        self.access_log = access_log
        self.readonly = readonly
        self.structures: dict[str, Structure] = {}
        self._superseded: dict[str, str] = {}
        self.tenants: dict[str, TenantSession] = {}
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self.requests_served = 0

    # -- tracing -------------------------------------------------------------

    def trace_rate(self) -> float:
        """The effective sampling rate for a request arriving now."""
        if self.trace_sample is not None:
            return self.trace_sample
        return 1.0 if _telemetry_enabled() else 0.0

    @contextmanager
    def request_scope(self, trace_id: object = None):
        """The request's trace context: reuse the transport's, else mint.

        Yields ``(context, scope)`` where ``scope`` is ``None`` when an
        enclosing scope (installed by the HTTP layer) is already active —
        the service then joins that trace instead of starting a nested
        one, so transport-driven and directly-driven calls behave
        identically.
        """
        existing = trace_context.current_trace()
        if existing is not None:
            yield existing, None
            return
        minted = trace_context.mint(trace_id, rate=self.trace_rate())
        with trace_context.trace_scope(minted) as scope:
            yield minted, scope

    # -- tenants -------------------------------------------------------------

    def register_tenant(
        self, name: str, budget: Budget | None = None, exist_ok: bool = True
    ) -> TenantSession:
        """Create (or fetch) a tenant session.

        ``budget=None`` inherits the service default. Re-registering an
        existing tenant returns the live session unchanged (its breakers
        and counters survive) unless ``exist_ok`` is false.
        """
        if not name or not isinstance(name, str):
            raise ServerError("tenant name must be a non-empty string")
        with self._lock:
            session = self.tenants.get(name)
            if session is not None:
                if not exist_ok:
                    raise ServerError(f"tenant {name!r} already registered", status=409)
                return session
            session = TenantSession(
                name,
                budget if budget is not None else self.default_budget,
                default_chain(engine=self.engine, degree_bound=self.degree_bound),
            )
            self.tenants[name] = session
            return session

    def tenant(self, name: str) -> TenantSession:
        with self._lock:
            session = self.tenants.get(name)
        if session is None:
            if not self.auto_register:
                raise UnknownResourceError(f"unknown tenant {name!r}")
            session = self.register_tenant(name)
        return session

    # -- structures ----------------------------------------------------------

    def add_structure(
        self, structure: Structure | dict, tenant: str | None = None
    ) -> str:
        """Store a structure (wire dict or live object); return its id.

        Content-addressed and idempotent: uploading the same structure
        twice — by the same tenant or another — returns the same id.
        """
        if isinstance(structure, dict):
            structure = wire.structure_from_dict(structure)
        structure_id = wire.structure_digest(structure)
        with self._lock:
            self.structures.setdefault(structure_id, structure)
        if tenant is not None:
            self.tenant(tenant).count("structures_registered")
        return structure_id

    def structure(self, structure_id: str) -> Structure:
        with self._lock:
            structure = self.structures.get(structure_id)
            successor = self._superseded.get(structure_id)
        if structure is None:
            if successor is not None:
                raise ServerError(
                    f"structure {structure_id!r} was updated; "
                    f"its current id is {successor!r}",
                    status=409,
                )
            raise UnknownResourceError(f"unknown structure {structure_id!r}")
        return structure

    def apply_updates(
        self,
        tenant: str,
        structure_id: str,
        updates: list,
        deadline_ms: float | None = None,
        max_rows: int | None = None,
        trace_id: object = None,
    ) -> dict[str, Any]:
        """Apply a batch of tuple deltas to a stored structure, in place.

        ``updates`` is the wire-v1-additive delta list
        (:func:`repro.server.wire.updates_from_wire`), or already-decoded
        ``(op, relation, row)`` tuples.  The batch is **atomic at
        validation**: every delta is checked against the structure's
        signature and universe before any is applied, so a bad delta in
        the middle of the batch is a 400 with the store untouched.
        Applied deltas run through ``Structure.insert``/``delete`` — the
        incremental layer patches the Gaifman/incidence memos, and the
        locality census and cached answers are patched lazily on their
        next read.

        Admission follows the answers path: the batch charges one row
        per delta (all up front, so a 429 refusal is as atomic as a 400)
        against the tightest of the tenant budget and the request
        overrides — a tenant's write traffic is bounded by the same
        envelope as its reads.  The response echoes the structure's
        **new content digest** — the old id is retired (subsequent reads
        get a 409 naming the successor) unless the batch round-tripped
        back to the identical contents — and ``queries_dirtied``, the
        sorted names of the tenant's prepared queries whose answer sets
        changed (or could not be proven unchanged) across the batch,
        decided by the incremental layer without recomputation
        (:meth:`_dirtied_queries`).
        """
        session = self.tenant(tenant)
        session.count("requests")
        with self._lock:
            self.requests_served += 1
        started = time.perf_counter()
        with self.request_scope(trace_id) as (ctx, scope):  # noqa: F841 — scope keeps the trace open
            token: CancelToken | None = None
            status = 200
            outcome = "ok"
            applied = 0
            try:
                with _span("server.updates") as update_span:
                    update_span.set("tenant", tenant)
                    if self.readonly:
                        raise ServerError(
                            "this server is read-only; updates are disabled",
                            status=403,
                        )
                    structure = self.structure(structure_id)
                    token = self._effective_token(session, deadline_ms, max_rows)
                    if updates and isinstance(updates[0], dict):
                        deltas = wire.updates_from_wire(updates)
                    else:
                        deltas = [
                            (op, relation, tuple(row)) for op, relation, row in updates
                        ]
                    if not deltas:
                        raise ServerError("'updates' must be a non-empty list")
                    # Validate and charge the whole batch before applying
                    # any of it: a 400 or a 429 must leave the store
                    # untouched (a refusal *between* deltas would strand
                    # mutated content under its pre-update digest).
                    for _, relation, row in deltas:
                        structure.check_update(relation, row)
                    if token is not None:
                        token.consume_rows(len(deltas), "server.updates")
                    noops = 0
                    for op, relation, row in deltas:
                        changed = (
                            structure.insert(relation, row)
                            if op == "insert"
                            else structure.delete(relation, row)
                        )
                        if changed:
                            applied += 1
                        else:
                            noops += 1
                    new_id = wire.structure_digest(structure)
                    with self._lock:
                        if new_id != structure_id:
                            self.structures.pop(structure_id, None)
                            self.structures[new_id] = structure
                            self._superseded[structure_id] = new_id
                            # A resurrected id is current again, and any
                            # stale chain onto it must not shadow it.
                            self._superseded.pop(new_id, None)
                    dirtied = self._dirtied_queries(session, structure, token)
                    update_span.set("deltas", len(deltas)).set("applied", applied)
                    update_span.set("epoch", structure.epoch)
                    update_span.set("queries_dirtied", len(dirtied))
                    session.count("updates_applied", applied)
                    if _telemetry_enabled():
                        _counter("incremental.updates.applied", tenant=tenant).inc(applied)
                        _counter("incremental.updates.noops", tenant=tenant).inc(noops)
                        _counter(
                            "incremental.updates.queries_dirtied", tenant=tenant
                        ).inc(len(dirtied))
                    return {
                        "structure_id": new_id,
                        "previous_id": structure_id,
                        "applied": applied,
                        "noops": noops,
                        "epoch": structure.epoch,
                        "size": structure.size,
                        "queries_dirtied": dirtied,
                        "wire_version": wire.WIRE_VERSION,
                    }
            except BudgetExceededError as error:
                session.count("refused")
                status, outcome = wire.status_for_error(error), "refused"
                raise
            except FMTError as error:
                session.count("errors")
                status, outcome = wire.status_for_error(error), "error"
                raise
            except BaseException:
                status, outcome = 500, "error"
                raise
            finally:
                duration_ms = (time.perf_counter() - started) * 1000.0
                _counter("server.requests", tenant=tenant, outcome=outcome).inc()
                _histogram("server.request_ms", tenant=tenant).observe(duration_ms)
                self._record_access(
                    ctx=ctx,
                    session=session,
                    op="updates",
                    query=None,
                    query_hash=None,
                    rows=applied,
                    status=status,
                    outcome=outcome,
                    duration_ms=duration_ms,
                    token=token,
                    degradations_before=len(session.chain.degradations),
                )

    def _dirtied_queries(
        self,
        session: TenantSession,
        structure: Structure,
        token: CancelToken | None,
    ) -> list[str]:
        """Which of the tenant's prepared queries changed their answers.

        Decided entirely by the incremental layer
        (:meth:`Engine.maintained_changed`) — never by a full recompute,
        so the cost is bounded by the dirty neighborhoods of the batch,
        not the structure.  The list is *conservative-complete*: a query
        whose maintained record cannot decide (never queried, log
        outrun, work limits, budget expiry) is reported as dirtied.  The
        deltas are already applied when this runs, so a budget expiry
        here must not fail the request — the remaining queries are
        simply reported dirtied.
        """
        dirtied: list[str] = []
        exhausted = False
        for name in sorted(session.prepared):
            if exhausted:
                dirtied.append(name)
                continue
            prepared = session.prepared[name]
            try:
                changed = self.engine.maintained_changed(
                    structure, prepared.formula, budget=token
                )
            except BudgetExceededError:
                exhausted = True
                dirtied.append(name)
                continue
            if changed is not False:
                dirtied.append(name)
        return dirtied

    # -- prepared queries ----------------------------------------------------

    def prepare(
        self,
        tenant: str,
        text: str,
        name: str | None = None,
        structure_id: str | None = None,
        constants: tuple[str, ...] | list[str] = (),
        free_variables: tuple[str, ...] | list[str] | None = None,
    ) -> PreparedQuery:
        """Parse + validate once; register under ``name`` for the tenant.

        ``constants`` (or the signature of ``structure_id``) decides
        which identifiers parse as constant symbols.  ``free_variables``
        optionally pins the answer schema: it must contain every free
        variable of the formula, in the column order answers will use,
        and may add extra variables that range over the whole universe
        (cylindrification) — the wire-format escape hatch for formulas
        whose concrete syntax folds a free variable away (``false &
        P(y)`` parses to ``false``, dropping ``y``).  When a structure
        is supplied the plan is additionally warmed into the shared plan
        cache, so the first execution is already a plan-cache hit.
        Re-preparing the same name with the same text is idempotent; a
        different text under a taken name is a 409 conflict.
        """
        session = self.tenant(tenant)
        if not isinstance(text, str) or not text.strip():
            raise ServerError("'formula' must be a non-empty string")
        constant_names = frozenset(constants)
        structure = None
        if structure_id is not None:
            structure = self.structure(structure_id)
            constant_names = constant_names | structure.signature.constants
        formula = wire.parse_formula(text, constants=constant_names or None)
        if structure is not None:
            validate(formula, structure.signature)
        canonical = wire.format_formula(formula)
        _, free_names = _answer_schema(formula, free_variables)
        if name is None:
            key = (
                canonical
                + "|"
                + ",".join(sorted(constant_names))
                + "|"
                + ",".join(free_names)
            )
            name = "q-" + hashlib.sha256(key.encode()).hexdigest()[:16]
        prepared = PreparedQuery(
            name=name,
            text=canonical,
            formula=formula,
            free_names=free_names,
            constants=tuple(sorted(constant_names)),
        )
        with session.lock:
            existing = session.prepared.get(name)
            if existing is not None:
                if (
                    existing.text == prepared.text
                    and existing.constants == prepared.constants
                    and existing.free_names == prepared.free_names
                ):
                    return existing
                raise ServerError(
                    f"prepared query {name!r} already exists with a different formula",
                    status=409,
                )
            session.prepared[name] = prepared
            session.counters["queries_prepared"] += 1
        if structure is not None:
            # Warm the shared plan cache (cheap, deduplicated by key).
            self.engine.explain(structure, formula)
        return prepared

    def prepared_query(self, tenant: str, name: str) -> PreparedQuery:
        session = self.tenant(tenant)
        with session.lock:
            prepared = session.prepared.get(name)
        if prepared is None:
            raise UnknownResourceError(
                f"tenant {tenant!r} has no prepared query {name!r}"
            )
        return prepared

    # -- admission control ---------------------------------------------------

    def _effective_token(
        self,
        session: TenantSession,
        deadline_ms: float | None = None,
        max_rows: int | None = None,
    ) -> CancelToken | None:
        """Start a token for one request: the *tightest* of the tenant
        spec and the request overrides.  A request can only narrow its
        envelope — admission control would be decorative otherwise."""
        spec = session.budget
        if deadline_ms is not None and deadline_ms <= 0:
            raise ServerError(f"deadline_ms must be positive, got {deadline_ms}")
        if max_rows is not None and max_rows < 1:
            raise ServerError(f"max_rows must be positive, got {max_rows}")
        base_deadline = spec.deadline_ms if spec is not None else None
        base_rows = spec.max_rows if spec is not None else None
        base_nodes = spec.max_solver_nodes if spec is not None else None
        stride = spec.stride if spec is not None else None
        effective_deadline = _tightest(base_deadline, deadline_ms)
        effective_rows = _tightest(base_rows, max_rows)
        if effective_deadline is None and effective_rows is None and base_nodes is None:
            return None
        budget = Budget(
            deadline_ms=effective_deadline,
            max_rows=effective_rows,
            max_solver_nodes=base_nodes,
            **({} if stride is None else {"stride": stride}),
        )
        return budget.start()

    # -- answers -------------------------------------------------------------

    def answers(
        self,
        tenant: str,
        structure_id: str,
        query: str | None = None,
        formula: str | None = None,
        page: int = 0,
        page_size: int | None = None,
        deadline_ms: float | None = None,
        max_rows: int | None = None,
        free_variables: tuple[str, ...] | list[str] | None = None,
        explain: bool = False,
        trace_id: object = None,
    ) -> AnswerPage:
        """One answer page for a prepared query (by name) or an ad-hoc
        formula (by text).

        Prepared queries run through the tenant's fallback chain and the
        shared caches.  Ad-hoc formulas parse per request and execute
        with the answer cache bypassed (see the module docstring); their
        schema can be pinned with ``free_variables`` (see
        :meth:`prepare`).  Budget exhaustion raises
        :class:`~repro.errors.BudgetExceededError` — the transport maps
        it to a typed 429/503 refusal.

        ``explain=True`` attaches an EXPLAIN ANALYZE payload to the page:
        :meth:`Engine.profile`'s plan tree with per-node estimates and
        actuals, plus the request's span tree (when sampled).  Explained
        requests always execute through the engine's profiling path —
        actuals must be measured — so a prepared query explained here
        bypasses its fallback chain for this one call.  ``trace_id``
        joins (or seeds) the request's trace context.
        """
        session = self.tenant(tenant)
        session.count("requests")
        with self._lock:
            self.requests_served += 1
        started = time.perf_counter()
        with self.request_scope(trace_id) as (ctx, scope):
            degradations_before = len(session.chain.degradations)
            token: CancelToken | None = None
            status = 200
            outcome = "ok"
            query_hash: str | None = None
            rows_returned = 0
            try:
                with _span("server.answers") as answer_span:
                    answer_span.set("tenant", tenant)
                    structure = self.structure(structure_id)
                    token = self._effective_token(session, deadline_ms, max_rows)
                    if (query is None) == (formula is None):
                        raise ServerError(
                            "exactly one of 'query' (prepared name) or 'formula' "
                            "(ad-hoc text) is required"
                        )
                    profile = None
                    if query is not None:
                        if free_variables is not None:
                            raise ServerError(
                                "'free_variables' is fixed at prepare time for "
                                "prepared queries"
                            )
                        prepared = self.prepared_query(tenant, query)
                        query_hash = _query_hash(prepared.text)
                        validate(prepared.formula, structure.signature)
                        natural, free_names = _answer_schema(
                            prepared.formula, prepared.free_names
                        )
                        if explain:
                            profile = self.engine.profile(
                                structure, prepared.formula, budget=token
                            )
                            rows = profile.answers
                        else:
                            rows = session.chain.answers(
                                structure, prepared.formula, budget=token
                            )
                    else:
                        parsed = wire.parse_formula(
                            formula, constants=structure.signature
                        )
                        query_hash = _query_hash(wire.format_formula(parsed))
                        validate(parsed, structure.signature)
                        natural, free_names = _answer_schema(parsed, free_variables)
                        # profile() executes unconditionally (no answer-cache
                        # admission for ad-hoc queries) but still uses the shared
                        # plan cache and honors the budget.
                        profile = self.engine.profile(structure, parsed, budget=token)
                        rows = profile.answers
                    rows = _cylindrify(rows, natural, free_names, structure.universe)
                    _admit_result(len(rows), token)
                    answer_span.set("rows", len(rows))
            except BudgetExceededError as error:
                session.count("refused")
                status, outcome = wire.status_for_error(error), "refused"
                raise
            except FMTError as error:
                session.count("errors")
                status, outcome = wire.status_for_error(error), "error"
                raise
            except BaseException:
                status, outcome = 500, "error"
                raise
            else:
                result = self._page(
                    rows,
                    page,
                    page_size,
                    free_names,
                    query=query,
                    structure_id=structure_id,
                )
                if explain:
                    result = replace(
                        result, explain=self._explain_payload(profile, ctx, scope)
                    )
                rows_returned = len(result.rows)
                session.count("answered")
                session.count("rows_returned", rows_returned)
                return result
            finally:
                duration_ms = (time.perf_counter() - started) * 1000.0
                _counter("server.requests", tenant=tenant, outcome=outcome).inc()
                _histogram("server.request_ms", tenant=tenant).observe(duration_ms)
                self._record_access(
                    ctx=ctx,
                    session=session,
                    op="answers",
                    query=query,
                    query_hash=query_hash,
                    rows=rows_returned,
                    status=status,
                    outcome=outcome,
                    duration_ms=duration_ms,
                    token=token,
                    degradations_before=degradations_before,
                )

    def _explain_payload(self, profile, ctx, scope) -> dict[str, Any]:
        """The wire ``explain`` object: profile actuals + span tree."""
        spans: list[dict[str, Any]]
        root = _open_root()
        if root is not None:
            spans = [root.to_dict()]
        elif scope is not None:
            spans = [finished.to_dict() for finished in scope.roots]
        else:
            spans = []
        return {
            "trace_id": ctx.trace_id,
            "sampled": ctx.sampled,
            "profile": profile.to_dict() if profile is not None else None,
            "spans": spans,
        }

    def _record_access(
        self,
        *,
        ctx,
        session: TenantSession,
        op: str,
        query: str | None,
        query_hash: str | None,
        rows: int,
        status: int,
        outcome: str,
        duration_ms: float,
        token: CancelToken | None,
        degradations_before: int,
    ) -> None:
        """One structured access-log line for a finished request."""
        log = self.access_log
        if log is None:
            return
        all_degradations = session.chain.degradations
        degraded = (
            [
                {"rung": event.rung, "error": event.error, "trace_id": event.trace_id}
                for event in all_degradations[degradations_before:]
            ]
            if len(all_degradations) > degradations_before
            else []
        )
        log.log(
            {
                "trace_id": ctx.trace_id,
                "sampled": ctx.sampled,
                "tenant": session.name,
                "op": op,
                "query": query,
                "query_hash": query_hash,
                "rows": rows,
                "status": status,
                "outcome": outcome,
                "duration_ms": duration_ms,
                "budget_rows_spent": token.rows if token is not None else None,
                "budget_nodes_spent": token.nodes if token is not None else None,
                "degradations": degraded,
                "breakers": {
                    rung: breaker.state
                    for rung, breaker in session.chain.breakers.items()
                },
            }
        )

    def answers_batch(
        self,
        tenant: str,
        requests: list[dict[str, Any]],
        deadline_ms: float | None = None,
        max_rows: int | None = None,
        page_size: int | None = None,
        trace_id: object = None,
    ) -> list[AnswerPage]:
        """Many answer requests, executed through
        :meth:`Engine.answers_batch` under **one** shared budget.

        Each request dict carries ``structure_id`` plus ``query`` or
        ``formula`` (and optionally its own ``page``/``page_size``).
        Planning is deduplicated by the shared plan cache; execution
        fans out across the engine's workers.  The whole batch shares
        one admission token — a batch is one unit of work, and a budget
        that would refuse its parts refuses their sum.  It also shares
        one trace context: every engine span of the batch (including
        worker span trees merged back across ``parallel_map``) carries
        the same trace id, and the access log gets one line for the
        whole batch.
        """
        session = self.tenant(tenant)
        session.count("batch_requests")
        session.count("requests", len(requests))
        with self._lock:
            self.requests_served += 1
        started = time.perf_counter()
        with self.request_scope(trace_id) as (ctx, scope):
            degradations_before = len(session.chain.degradations)
            token: CancelToken | None = None
            status = 200
            outcome = "ok"
            rows_returned = 0
            try:
                with _span("server.answers_batch") as batch_span:
                    batch_span.set("tenant", tenant)
                    if not isinstance(requests, list) or not requests:
                        raise ServerError("'requests' must be a non-empty list")
                    batch_span.set("requests", len(requests))
                    token = self._effective_token(session, deadline_ms, max_rows)
                    pairs: list[tuple[Structure, Formula]] = []
                    shapes: list[tuple] = []
                    for request in requests:
                        if not isinstance(request, dict):
                            raise ServerError("each batch request must be an object")
                        structure = self.structure(request.get("structure_id", ""))
                        name = request.get("query")
                        text = request.get("formula")
                        if (name is None) == (text is None):
                            raise ServerError(
                                "each batch request needs exactly one of "
                                "'query' or 'formula'"
                            )
                        if name is not None:
                            if request.get("free_variables") is not None:
                                raise ServerError(
                                    "'free_variables' is fixed at prepare time for "
                                    "prepared queries"
                                )
                            prepared = self.prepared_query(tenant, name)
                            formula = prepared.formula
                            natural, free_names = _answer_schema(
                                formula, prepared.free_names
                            )
                        else:
                            formula = wire.parse_formula(
                                text, constants=structure.signature
                            )
                            natural, free_names = _answer_schema(
                                formula, request.get("free_variables")
                            )
                        validate(formula, structure.signature)
                        pairs.append((structure, formula))
                        shapes.append(
                            (
                                natural,
                                free_names,
                                name,
                                structure,
                                request.get("structure_id", ""),
                                int(request.get("page", 0)),
                                request.get("page_size", page_size),
                            )
                        )
                    try:
                        answer_sets = self.engine.answers_batch(pairs, budget=token)
                        answer_sets = [
                            _cylindrify(rows, natural, free_names, structure.universe)
                            for rows, (natural, free_names, _, structure, *_rest) in zip(
                                answer_sets, shapes
                            )
                        ]
                        _admit_result(sum(len(rows) for rows in answer_sets), token)
                    except BudgetExceededError:
                        session.count("refused", len(requests))
                        raise
                    pages = []
                    for rows, (_, free_names, name, _, structure_id, page, size) in zip(
                        answer_sets, shapes
                    ):
                        pages.append(
                            self._page(
                                rows,
                                page,
                                size,
                                free_names,
                                query=name,
                                structure_id=structure_id,
                            )
                        )
            except BudgetExceededError as error:
                status, outcome = wire.status_for_error(error), "refused"
                raise
            except FMTError as error:
                status, outcome = wire.status_for_error(error), "error"
                raise
            except BaseException:
                status, outcome = 500, "error"
                raise
            else:
                rows_returned = sum(len(p.rows) for p in pages)
                session.count("answered", len(requests))
                session.count("rows_returned", rows_returned)
                return pages
            finally:
                duration_ms = (time.perf_counter() - started) * 1000.0
                _counter("server.requests", tenant=tenant, outcome=outcome).inc()
                _histogram("server.request_ms", tenant=tenant).observe(duration_ms)
                self._record_access(
                    ctx=ctx,
                    session=session,
                    op="answers_batch",
                    query=None,
                    query_hash=None,
                    rows=rows_returned,
                    status=status,
                    outcome=outcome,
                    duration_ms=duration_ms,
                    token=token,
                    degradations_before=degradations_before,
                )

    def _page(
        self,
        rows: frozenset[tuple[Element, ...]],
        page: int,
        page_size: int | None,
        free_names: tuple[str, ...],
        query: str | None,
        structure_id: str,
    ) -> AnswerPage:
        if page < 0:
            raise ServerError(f"page must be non-negative, got {page}")
        size = DEFAULT_PAGE_SIZE if page_size is None else int(page_size)
        if size < 1:
            raise ServerError(f"page_size must be positive, got {size}")
        size = min(size, self.max_page_size)
        ordered = sorted(rows, key=repr)
        start = page * size
        window = tuple(ordered[start : start + size])
        return AnswerPage(
            rows=window,
            page=page,
            page_size=size,
            total_rows=len(ordered),
            has_more=start + size < len(ordered),
            free_names=free_names,
            query=query,
            structure_id=structure_id,
        )

    # -- health + metrics ----------------------------------------------------

    def health(self) -> dict[str, Any]:
        with self._lock:
            return {
                "ok": True,
                "wire_version": wire.WIRE_VERSION,
                "uptime_s": time.monotonic() - self._started,
                "tenants": len(self.tenants),
                "structures": len(self.structures),
                "requests_served": self.requests_served,
            }

    def metrics(self) -> dict[str, Any]:
        """The observability snapshot behind ``GET /metrics``: telemetry
        registry (counters/gauges/histograms), shared-cache stats, engine
        lifetime counters, and per-tenant session counters."""
        with self._lock:
            tenants = dict(self.tenants)
            requests_served = self.requests_served
            structures = len(self.structures)
        return {
            "wire_version": wire.WIRE_VERSION,
            "uptime_s": time.monotonic() - self._started,
            "requests_served": requests_served,
            "structures": structures,
            "engine": self.engine.stats.as_dict(),
            "caches": {
                "plan": self.engine.plan_cache.snapshot(),
                "answer": self.engine.answer_cache.snapshot(),
            },
            "tenants": {name: session.snapshot() for name, session in tenants.items()},
            "telemetry": metrics_snapshot(),
        }

    def metrics_prometheus(self) -> str:
        """``GET /metrics`` in Prometheus text format 0.0.4.

        The labeled registry series render directly; the service-level
        JSON numbers (uptime, requests served, cache rates) are exported
        as gauges first so one exposition carries both.
        """
        with self._lock:
            requests_served = self.requests_served
            structures = len(self.structures)
            tenants = len(self.tenants)
        _gauge("server.uptime_seconds").set(time.monotonic() - self._started)
        _gauge("server.requests_served").set(requests_served)
        _gauge("server.structures").set(structures)
        _gauge("server.tenants").set(tenants)
        _gauge("server.wire_version").set(wire.WIRE_VERSION)
        for cache_name, snapshot in (
            ("plan", self.engine.plan_cache.snapshot()),
            ("answer", self.engine.answer_cache.snapshot()),
        ):
            for stat, value in snapshot.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    _gauge("server.cache." + stat, cache=cache_name).set(value)
        return render_exposition()


def _query_hash(canonical_text: str) -> str:
    """A stable, loggable identity for one query's canonical text."""
    return hashlib.sha256(canonical_text.encode()).hexdigest()[:16]


def _answer_schema(
    formula: Formula,
    requested: tuple[str, ...] | list[str] | None,
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """The (natural, effective) answer column orders for one query.

    ``natural`` is the evaluators' own order — free variables sorted by
    name, the order every rung of the chain returns tuples in.  The
    effective order defaults to it; an explicit request must cover every
    free variable (a proper subset would be a silent projection) and may
    append extra variables, which cylindrify over the universe.
    """
    natural = tuple(sorted(var.name for var in free_variables(formula)))
    if requested is None:
        return natural, natural
    effective = tuple(requested)
    if any(not isinstance(name, str) or not name for name in effective):
        raise ServerError("free_variables must be non-empty strings")
    if len(set(effective)) != len(effective):
        raise ServerError("free_variables must not repeat names")
    missing = set(natural) - set(effective)
    if missing:
        raise ServerError(
            "free_variables must include every free variable of the "
            f"formula; missing {sorted(missing)}"
        )
    return natural, effective


def _cylindrify(
    rows: frozenset[tuple[Element, ...]],
    natural: tuple[str, ...],
    effective: tuple[str, ...],
    universe,
) -> frozenset[tuple[Element, ...]]:
    """Reorder answer columns from ``natural`` to ``effective``; extra
    variables range over the whole universe (ans(φ, A) with a widened
    free tuple — the cylindrification of the answer relation)."""
    if effective == natural:
        return rows
    index = {name: position for position, name in enumerate(natural)}
    extra = [name for name in effective if name not in index]
    combos = list(itertools.product(universe, repeat=len(extra)))
    widened = set()
    for row in rows:
        for combo in combos:
            bound = dict(zip(extra, combo))
            widened.add(
                tuple(
                    row[index[name]] if name in index else bound[name]
                    for name in effective
                )
            )
    return frozenset(widened)


def _admit_result(total_rows: int, token: CancelToken | None) -> None:
    """Result-size admission: the row budget bounds the *returned* answer
    set, not only intermediate materialization.  The fallback chain may
    legitimately degrade an over-budget engine execution to the naive
    rung (which materializes nothing), so without this check a row
    budget could never refuse a prepared query — the envelope would be
    decorative exactly where admission control matters most."""
    if token is not None and token.max_rows is not None and total_rows > token.max_rows:
        raise BudgetExceededError(
            "answer set exceeds the request's row budget",
            spent=total_rows,
            budget=token.max_rows,
        )


def _tightest(base: float | None, override: float | None) -> float | None:
    if base is None:
        return override
    if override is None:
        return base
    return min(base, override)
