"""repro.server — a multi-tenant FO query service (S18).

The serving layer over the toolbox: a long-running HTTP/JSON service
(stdlib only — ``http.server`` + ``ThreadingHTTPServer``) with

* a **stable wire format** (:mod:`repro.server.wire`, v1) shared with
  the conformance corpus — structures, formulas (concrete syntax),
  canonically ordered answer pages, and typed error payloads;
* **sessions**: named prepared queries (parse + validate once, execute
  many), a content-addressed structure store, and the shared engine's
  plan/answer caches as the cross-tenant plan cache
  (:mod:`repro.server.service`);
* **admission control**: per-tenant
  :class:`~repro.resilience.budget.Budget` specs +
  :class:`~repro.resilience.fallback.FallbackChain` degradation; over
  budget is a typed 429/503 refusal, never a hang or a wrong answer;
* **endpoints**: ``POST /v1/structures``, ``POST /v1/queries``,
  ``POST /v1/answers`` (single + batched via
  :meth:`~repro.engine.engine.Engine.answers_batch`, with paging),
  ``GET /metrics``, ``GET /healthz`` (:mod:`repro.server.http`);
* a **CLI**: ``python -m repro.server`` (:mod:`repro.server.cli`).

Importing :mod:`repro.server` (or just :mod:`repro.server.wire`) stays
lightweight; the engine stack loads lazily on first access to the
service/http/cli symbols.
"""

from __future__ import annotations

from repro.server.wire import WIRE_VERSION

__all__ = [
    "WIRE_VERSION",
    "AnswerPage",
    "PreparedQuery",
    "QueryServer",
    "QueryService",
    "TenantSession",
    "main",
    "make_server",
    "serve",
    "wire",
]

_LAZY = {
    "AnswerPage": ("repro.server.service", "AnswerPage"),
    "PreparedQuery": ("repro.server.service", "PreparedQuery"),
    "QueryService": ("repro.server.service", "QueryService"),
    "TenantSession": ("repro.server.service", "TenantSession"),
    "QueryServer": ("repro.server.http", "QueryServer"),
    "make_server": ("repro.server.http", "make_server"),
    "serve": ("repro.server.http", "serve"),
    "main": ("repro.server.cli", "main"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.server' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
