"""``python -m repro.server`` — run the multi-tenant FO query service.

Examples
--------
::

    python -m repro.server --port 8035
    python -m repro.server --port 0                      # ephemeral port
    python -m repro.server --deadline-ms 2000 --max-rows 200000
    python -m repro.server --fault-inject 3 --telemetry  # chaos + metrics

The first line on stdout is always ``serving on http://HOST:PORT``
(flushed before the accept loop starts), so scripts can scrape the bound
port even with ``--port 0``.  SIGINT/SIGTERM shut the server down
cleanly with exit status 0 — the CI server job asserts this.
"""

from __future__ import annotations

import argparse
import signal
import sys

from repro.resilience.budget import Budget
from repro.resilience.faults import FaultInjector, set_injector
from repro.server.http import make_server
from repro.server.service import QueryService

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="A multi-tenant FO query service: prepared queries, "
        "shared plan cache, per-tenant budgets and fallback chains.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8035, help="bind port (0 = ephemeral, printed)"
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="default per-request deadline for every tenant (admission "
        "control; requests may tighten, never loosen)",
    )
    parser.add_argument(
        "--max-rows",
        type=int,
        default=None,
        help="default per-request materialized-row budget for every tenant",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker fan-out for batched answer execution "
        "(Engine.answers_batch; default: serial unless REPRO_PARALLEL is set)",
    )
    parser.add_argument(
        "--executor",
        choices=("tuple", "columnar", "auto"),
        default=None,
        help="executor tier for plan execution: the reference tuple "
        "executor, the columnar kernel tier, or cost-based auto dispatch "
        "(default: the REPRO_EXECUTOR environment variable, else auto)",
    )
    parser.add_argument(
        "--degree-bound",
        type=int,
        default=3,
        help="degree bound for the census rung of every tenant chain",
    )
    parser.add_argument(
        "--fault-inject",
        type=int,
        default=None,
        metavar="PERIOD",
        help="arm deterministic fault injection at the given period "
        "(same semantics as REPRO_FAULT_INJECT; the fallback chains "
        "absorb the faults)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="enable span/metrics telemetry (REPRO_TELEMETRY=1 equivalent); "
        "/metrics is richer with it on",
    )
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        metavar="RATE",
        help="fraction of requests whose spans are recorded (deterministic "
        "per trace id; ids are echoed regardless). Default: 1.0 with "
        "--telemetry, 0.0 without",
    )
    parser.add_argument(
        "--access-log",
        default=None,
        metavar="PATH",
        help="write one structured JSON line per answer request to PATH "
        "('-' = stderr): trace_id, tenant, query hash, rows, budget "
        "spend, degradations, breaker states, status",
    )
    parser.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="flag access-log entries at or over this duration as slow "
        "(the slow-query log is the slow=true view of the access log)",
    )
    parser.add_argument(
        "--readonly",
        action="store_true",
        help="disable POST /v1/structures/<id>/updates (typed 403); for "
        "replicas that must never diverge from their upstream",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log one line per request to stderr"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.deadline_ms is not None and args.deadline_ms <= 0:
        print(
            f"error: --deadline-ms must be positive, got {args.deadline_ms}",
            file=sys.stderr,
        )
        return 2
    if args.max_rows is not None and args.max_rows < 1:
        print(f"error: --max-rows must be positive, got {args.max_rows}", file=sys.stderr)
        return 2
    if args.fault_inject is not None:
        if args.fault_inject < 2:
            print(
                f"error: --fault-inject period must be >= 2, got {args.fault_inject}",
                file=sys.stderr,
            )
            return 2
        set_injector(FaultInjector(period=args.fault_inject))
    if args.telemetry:
        from repro import telemetry

        telemetry.enable()

    default_budget = None
    if args.deadline_ms is not None or args.max_rows is not None:
        default_budget = Budget(deadline_ms=args.deadline_ms, max_rows=args.max_rows)

    if args.trace_sample is not None and not 0.0 <= args.trace_sample <= 1.0:
        print(
            f"error: --trace-sample must be in [0, 1], got {args.trace_sample}",
            file=sys.stderr,
        )
        return 2

    from repro.engine.engine import Engine
    from repro.telemetry.logs import open_access_log

    service = QueryService(
        default_budget=default_budget,
        engine=Engine(max_workers=args.workers, executor=args.executor),
        degree_bound=args.degree_bound,
        trace_sample=args.trace_sample,
        access_log=open_access_log(args.access_log, slow_ms=args.slow_ms),
        readonly=args.readonly,
    )
    server = make_server(service, host=args.host, port=args.port, verbose=args.verbose)
    print(f"serving on {server.url}", flush=True)

    def _shutdown(signum, frame) -> None:  # noqa: ARG001 — signal API
        # shutdown() must not run on the serve_forever thread; the signal
        # handler runs on the main thread, which is exactly that thread,
        # so hand the call to a helper.
        import threading

        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGINT, _shutdown)
    signal.signal(signal.SIGTERM, _shutdown)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
    print("server stopped", file=sys.stderr)
    return 0
