"""A small relational algebra engine.

Relations are named-column sets of tuples; the operators are the
classical six (selection, projection, rename, natural join, union,
difference) plus intersection, product, division, semijoin/antijoin, and
active-domain complement. The FO → algebra translation in
:mod:`repro.eval.translate` and the cost-based planner in
:mod:`repro.engine` both target this engine, making the textbook
equivalence "relational algebra = first-order logic (active-domain
semantics)" executable.

Every operator is a method on :class:`Relation`; the module also exports
a functional spelling of each (``natural_join(r, s)`` ≡ ``r.join(s)``),
which is the operator surface the planner consumes.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass
from operator import itemgetter

from repro.errors import EvaluationError
from repro.structures.structure import Element

__all__ = [
    "Relation",
    # functional operator surface (one per Relation method)
    "select",
    "select_eq",
    "select_attr_eq",
    "project",
    "rename",
    "natural_join",
    "semijoin",
    "antijoin",
    "product",
    "union",
    "difference",
    "intersection",
    "divide",
    "complement",
    "extend_columns",
]


def _key_getter(indices: list[int]) -> Callable[[tuple], object]:
    """A fast per-row key extractor for the given column indices.

    Both sides of a join use extractors built from *aligned* index lists,
    so the single-column scalar key and the multi-column tuple key are
    each consistent across the two sides.
    """
    if len(indices) == 1:
        index = indices[0]
        return lambda row: row[index]
    if not indices:
        return lambda row: ()
    return itemgetter(*indices)


@dataclass(frozen=True)
class Relation:
    """A finite relation with named attributes.

    >>> r = Relation(("a", "b"), {(1, 2), (2, 3)})
    >>> sorted(r.project(("b",)).rows)
    [(2,), (3,)]
    """

    attributes: tuple[str, ...]
    rows: frozenset[tuple[Element, ...]]

    def __post_init__(self) -> None:
        attributes = tuple(self.attributes)
        if len(set(attributes)) != len(attributes):
            raise EvaluationError(f"duplicate attribute names: {attributes}")
        rows = frozenset(tuple(row) for row in self.rows)
        for row in rows:
            if len(row) != len(attributes):
                raise EvaluationError(
                    f"row {row!r} has {len(row)} columns, expected {len(attributes)}"
                )
        object.__setattr__(self, "attributes", attributes)
        object.__setattr__(self, "rows", rows)

    # -- constructors --------------------------------------------------------

    @classmethod
    def _make(
        cls, attributes: tuple[str, ...], rows: frozenset[tuple[Element, ...]]
    ) -> "Relation":
        """Trusted constructor: skip ``__post_init__`` validation.

        For operator internals only — the caller guarantees ``attributes``
        is a duplicate-free tuple and every row is a tuple of matching
        width (which every algebra operator preserves by construction).
        """
        relation = object.__new__(cls)
        object.__setattr__(relation, "attributes", attributes)
        object.__setattr__(relation, "rows", rows)
        return relation

    @staticmethod
    def from_tuples(attributes: Iterable[str], rows: Iterable[tuple]) -> "Relation":
        """Build a relation from any iterables of attributes and rows."""
        return Relation(tuple(attributes), frozenset(tuple(row) for row in rows))

    @staticmethod
    def from_columns(
        attributes: Iterable[str], columns: Iterable[Iterable[Element]]
    ) -> "Relation":
        """Build a relation from parallel columns (the columnar boundary).

        Inverse of :meth:`to_columns` up to row order: ``columns`` holds
        one equally long value sequence per attribute, and row ``i`` is
        the i-th entry of every column. This is the layout the columnar
        executor tier (:mod:`repro.engine.columnar`) materializes base
        relations in.
        """
        attributes = tuple(attributes)
        columns = tuple(tuple(column) for column in columns)
        if len(columns) != len(attributes):
            raise EvaluationError(
                f"{len(attributes)} attributes but {len(columns)} columns"
            )
        lengths = {len(column) for column in columns}
        if len(lengths) > 1:
            raise EvaluationError(f"ragged columns: lengths {sorted(lengths)}")
        return Relation(attributes, frozenset(zip(*columns)) if columns else frozenset())

    def to_columns(self) -> tuple[tuple[Element, ...], ...]:
        """The relation as parallel columns, rows in sorted-by-repr order.

        One tuple per attribute, aligned row-wise; the deterministic row
        order makes the output usable in tests and serialization.
        """
        ordered = sorted(self.rows, key=repr)
        if not self.attributes:
            return ()
        return tuple(zip(*ordered)) if ordered else tuple(
            () for _ in self.attributes
        )

    @staticmethod
    def empty(attributes: Iterable[str]) -> "Relation":
        """The empty relation over the given attributes."""
        return Relation(tuple(attributes), frozenset())

    @staticmethod
    def nullary(truth: bool) -> "Relation":
        """The 0-ary relation: {()} encodes true, {} encodes false."""
        return Relation((), frozenset([()]) if truth else frozenset())

    # -- basics ----------------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def _index_of(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise EvaluationError(
                f"unknown attribute {attribute!r}; relation has {self.attributes}"
            ) from None

    def column(self, attribute: str) -> frozenset[Element]:
        """All values appearing in one column."""
        index = self._index_of(attribute)
        return frozenset(row[index] for row in self.rows)

    # -- the algebra -------------------------------------------------------------

    def select(self, predicate: Callable[[Mapping[str, Element]], bool]) -> "Relation":
        """σ: keep rows on which ``predicate`` (given a row-dict) holds."""
        kept = {
            row
            for row in self.rows
            if predicate(dict(zip(self.attributes, row)))
        }
        return Relation(self.attributes, frozenset(kept))

    def select_eq(self, attribute: str, value: Element) -> "Relation":
        """σ_{attribute = value}."""
        index = self._index_of(attribute)
        return Relation._make(
            self.attributes, frozenset(row for row in self.rows if row[index] == value)
        )

    def select_attr_eq(self, first: str, second: str) -> "Relation":
        """σ_{first = second} for two attributes."""
        i, j = self._index_of(first), self._index_of(second)
        return Relation._make(
            self.attributes, frozenset(row for row in self.rows if row[i] == row[j])
        )

    def project(self, attributes: Iterable[str]) -> "Relation":
        """π: keep (and reorder to) the given attributes, dropping duplicates."""
        attributes = tuple(attributes)
        if attributes == self.attributes:
            return self
        indices = [self._index_of(attribute) for attribute in attributes]
        if len(set(attributes)) != len(attributes):
            raise EvaluationError(f"duplicate attribute names: {attributes}")
        rows = frozenset(tuple(row[index] for index in indices) for row in self.rows)
        return Relation._make(attributes, rows)

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """ρ: rename attributes according to ``mapping``."""
        attributes = tuple(mapping.get(attribute, attribute) for attribute in self.attributes)
        return Relation(attributes, self.rows)

    def join(self, other: "Relation") -> "Relation":
        """⋈: natural join on the shared attributes (hash join).

        With no shared attributes this is the cartesian product. The hash
        table is always built on the *smaller* input, so memory and build
        time track min(|r|, |s|) rather than whichever operand happens to
        be on the right.
        """
        shared = [attribute for attribute in self.attributes if attribute in other.attributes]
        other_extra = [attribute for attribute in other.attributes if attribute not in shared]
        result_attributes = self.attributes + tuple(other_extra)

        self_key = _key_getter([self._index_of(attribute) for attribute in shared])
        other_key = _key_getter([other._index_of(attribute) for attribute in shared])
        extra_indices = [other._index_of(attribute) for attribute in other_extra]

        rows: set[tuple] = set()
        buckets: dict[object, list[tuple]] = {}
        if len(self.rows) < len(other.rows):
            # Hash the smaller (left) side, probe with the right.
            for row in self.rows:
                buckets.setdefault(self_key(row), []).append(row)
            for row in other.rows:
                matches = buckets.get(other_key(row))
                if matches:
                    extras = tuple(row[index] for index in extra_indices)
                    for mine in matches:
                        rows.add(mine + extras)
        else:
            # Hash the smaller (right) side, storing only the extra
            # columns each probe needs to append.
            for row in other.rows:
                buckets.setdefault(other_key(row), []).append(
                    tuple(row[index] for index in extra_indices)
                )
            for row in self.rows:
                matches = buckets.get(self_key(row))
                if matches:
                    for extras in matches:
                        rows.add(row + extras)
        return Relation._make(result_attributes, frozenset(rows))

    def semijoin(self, other: "Relation") -> "Relation":
        """⋉: rows of this relation with a join partner in ``other``.

        Equivalent to π_{self}(self ⋈ other), computed with one hash set
        over the shared attributes. With no shared attributes this is
        ``self`` when ``other`` is non-empty and the empty relation
        otherwise (the projection of the cartesian product).
        """
        return self._half_join(other, keep_matching=True)

    def antijoin(self, other: "Relation") -> "Relation":
        """▷: rows of this relation with *no* join partner in ``other``.

        The complement of :meth:`semijoin` within this relation — the
        hash-based realization of safe negation, used by the engine for
        negative conjuncts instead of a domain complement.
        """
        return self._half_join(other, keep_matching=False)

    def _half_join(self, other: "Relation", keep_matching: bool) -> "Relation":
        shared = [attribute for attribute in self.attributes if attribute in other.attributes]
        if not shared:
            nonempty = bool(other.rows) == keep_matching
            return self if nonempty else Relation._make(self.attributes, frozenset())
        self_key = _key_getter([self._index_of(attribute) for attribute in shared])
        other_key = _key_getter([other._index_of(attribute) for attribute in shared])
        keys = {other_key(row) for row in other.rows}
        rows = frozenset(
            row for row in self.rows if (self_key(row) in keys) == keep_matching
        )
        return Relation._make(self.attributes, rows)

    def product(self, other: "Relation") -> "Relation":
        """×: cartesian product (attribute sets must be disjoint)."""
        overlap = set(self.attributes) & set(other.attributes)
        if overlap:
            raise EvaluationError(f"product requires disjoint attributes, shared: {sorted(overlap)}")
        return self.join(other)

    def _require_compatible(self, other: "Relation", operation: str) -> None:
        if self.attributes != other.attributes:
            raise EvaluationError(
                f"{operation} requires identical attribute lists, "
                f"got {self.attributes} vs {other.attributes}"
            )

    def union(self, other: "Relation") -> "Relation":
        """∪ (requires identical attribute lists)."""
        self._require_compatible(other, "union")
        return Relation._make(self.attributes, self.rows | other.rows)

    def difference(self, other: "Relation") -> "Relation":
        """− (requires identical attribute lists)."""
        self._require_compatible(other, "difference")
        return Relation._make(self.attributes, self.rows - other.rows)

    def intersection(self, other: "Relation") -> "Relation":
        """∩ (requires identical attribute lists)."""
        self._require_compatible(other, "intersection")
        return Relation._make(self.attributes, self.rows & other.rows)

    def divide(self, divisor: "Relation") -> "Relation":
        """÷: relational division (the "for all" of the algebra).

        ``r.divide(s)`` keeps the tuples t over the attributes of r not
        in s such that (t, u) ∈ r for *every* u ∈ s. The divisor's
        attributes must be a proper non-empty subset of this relation's.
        """
        shared = [attribute for attribute in self.attributes if attribute in divisor.attributes]
        if set(shared) != set(divisor.attributes):
            raise EvaluationError(
                f"divisor attributes {divisor.attributes} must all occur in {self.attributes}"
            )
        quotient_attributes = tuple(
            attribute for attribute in self.attributes if attribute not in divisor.attributes
        )
        if not quotient_attributes or not shared:
            raise EvaluationError("division needs a proper, non-empty attribute split")
        quotient_indices = [self._index_of(attribute) for attribute in quotient_attributes]
        divisor_indices = [self._index_of(attribute) for attribute in divisor.attributes]
        required = divisor.rows
        seen: dict[tuple, set[tuple]] = {}
        for row in self.rows:
            key = tuple(row[index] for index in quotient_indices)
            value = tuple(row[index] for index in divisor_indices)
            seen.setdefault(key, set()).add(value)
        rows = frozenset(key for key, values in seen.items() if required <= values)
        return Relation(quotient_attributes, rows)

    def complement(self, domain: Iterable[Element]) -> "Relation":
        """Active-domain complement: domain^arity minus this relation.

        This implements negation under active-domain semantics — the
        classical trick that keeps FO queries domain-independent enough
        for databases.
        """
        import itertools

        domain = tuple(domain)
        full = frozenset(itertools.product(domain, repeat=self.arity))
        return Relation(self.attributes, full - self.rows)

    def extend_columns(self, attributes: Iterable[str], domain: Iterable[Element]) -> "Relation":
        """Pad with new attributes ranging over ``domain`` (a product)."""
        attributes = tuple(attributes)
        if not attributes:
            return self
        import itertools

        domain = tuple(domain)
        rows = set()
        for row in self.rows:
            for extra in itertools.product(domain, repeat=len(attributes)):
                rows.add(row + extra)
        return Relation(self.attributes + attributes, frozenset(rows))

    def __repr__(self) -> str:
        return f"Relation({self.attributes}, {len(self.rows)} rows)"


# ---------------------------------------------------------------------------
# Functional operator surface
# ---------------------------------------------------------------------------
#
# Thin module-level spellings of the Relation methods, so code that treats
# the algebra as a set of operators (the planner, tests, teaching examples)
# can import them by name.


def select(relation: Relation, predicate: Callable[[Mapping[str, Element]], bool]) -> Relation:
    """σ as a function: ``select(r, p)`` ≡ ``r.select(p)``."""
    return relation.select(predicate)


def select_eq(relation: Relation, attribute: str, value: Element) -> Relation:
    """σ_{attribute = value} as a function."""
    return relation.select_eq(attribute, value)


def select_attr_eq(relation: Relation, first: str, second: str) -> Relation:
    """σ_{first = second} as a function."""
    return relation.select_attr_eq(first, second)


def project(relation: Relation, attributes: Iterable[str]) -> Relation:
    """π as a function: ``project(r, attrs)`` ≡ ``r.project(attrs)``."""
    return relation.project(attributes)


def rename(relation: Relation, mapping: Mapping[str, str]) -> Relation:
    """ρ as a function: ``rename(r, m)`` ≡ ``r.rename(m)``."""
    return relation.rename(mapping)


def natural_join(left: Relation, right: Relation) -> Relation:
    """⋈ as a function: ``natural_join(r, s)`` ≡ ``r.join(s)``."""
    return left.join(right)


def semijoin(left: Relation, right: Relation) -> Relation:
    """⋉ as a function: ``semijoin(r, s)`` ≡ ``r.semijoin(s)``."""
    return left.semijoin(right)


def antijoin(left: Relation, right: Relation) -> Relation:
    """▷ as a function: ``antijoin(r, s)`` ≡ ``r.antijoin(s)``."""
    return left.antijoin(right)


def product(left: Relation, right: Relation) -> Relation:
    """× as a function: ``product(r, s)`` ≡ ``r.product(s)``."""
    return left.product(right)


def union(left: Relation, right: Relation) -> Relation:
    """∪ as a function: ``union(r, s)`` ≡ ``r.union(s)``."""
    return left.union(right)


def difference(left: Relation, right: Relation) -> Relation:
    """− as a function: ``difference(r, s)`` ≡ ``r.difference(s)``."""
    return left.difference(right)


def intersection(left: Relation, right: Relation) -> Relation:
    """∩ as a function: ``intersection(r, s)`` ≡ ``r.intersection(s)``."""
    return left.intersection(right)


def divide(left: Relation, right: Relation) -> Relation:
    """÷ as a function: ``divide(r, s)`` ≡ ``r.divide(s)``."""
    return left.divide(right)


def complement(relation: Relation, domain: Iterable[Element]) -> Relation:
    """Active-domain complement as a function."""
    return relation.complement(domain)


def extend_columns(
    relation: Relation, attributes: Iterable[str], domain: Iterable[Element]
) -> Relation:
    """Column padding as a function: ≡ ``r.extend_columns(attrs, domain)``."""
    return relation.extend_columns(attributes, domain)
