"""The naive recursive model checker and query evaluator.

This is exactly the algorithm the paper sketches for the PSPACE upper
bound: atoms are looked up in the structure, Boolean connectives apply
their truth tables, and ``∃x φ`` tries every element of the universe. Its
running time is O(n^k) for structure size n and formula size k, and it
uses O(k·log n) space — experiment E1 measures both scalings.

That exponential combined complexity is also why evaluation accepts an
optional ``cancel_token``: the recursion ticks the token once per
quantifier binding (amortized deadline checks), so even the reference
evaluator — the last rung of the resilience fallback chain — stops with
a typed :class:`~repro.errors.BudgetExceededError` instead of hanging.
With ``cancel_token=None`` (the default) the hot path pays a single
``is None`` test per binding.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import EvaluationError, FormulaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.resilience.budget import CancelToken
from repro.logic.analysis import free_variables, validate
from repro.logic.syntax import (
    And,
    Atom,
    Bottom,
    Const,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Term,
    Top,
    Var,
)
from repro.structures.structure import Element, Structure

__all__ = ["evaluate", "answers", "Query", "BooleanQuery", "EvaluationStats"]


@dataclass
class EvaluationStats:
    """Operation counters for complexity experiments (E1).

    ``atom_lookups`` counts atomic relation probes; ``bindings`` counts
    quantifier instantiations. Both are proxies for time that are immune
    to machine noise.
    """

    atom_lookups: int = 0
    bindings: int = 0


def _term_value(
    structure: Structure,
    term: Term,
    assignment: Mapping[Var, Element],
) -> Element:
    if isinstance(term, Var):
        try:
            return assignment[term]
        except KeyError:
            raise EvaluationError(f"free variable {term.name!r} has no binding") from None
    if isinstance(term, Const):
        return structure.constant(term.name)
    raise FormulaError(f"unknown term {term!r}")


def evaluate(
    structure: Structure,
    formula: Formula,
    assignment: Mapping[Var, Element] | None = None,
    stats: EvaluationStats | None = None,
    cancel_token: "CancelToken | None" = None,
) -> bool:
    """Decide A ⊨ φ[assignment].

    ``assignment`` must bind every free variable of ``formula``; for a
    sentence it can be omitted. Raises :class:`SignatureError` if the
    formula mentions symbols the structure's signature lacks.
    """
    validate(formula, structure.signature)
    env: dict[Var, Element] = dict(assignment or {})
    for var, value in env.items():
        if value not in structure:
            raise EvaluationError(f"assignment binds {var.name!r} to {value!r}, not in universe")
    return _eval(structure, formula, env, stats, cancel_token)


def _eval(
    structure: Structure,
    formula: Formula,
    env: dict[Var, Element],
    stats: EvaluationStats | None,
    token: "CancelToken | None" = None,
) -> bool:
    if isinstance(formula, Atom):
        if stats is not None:
            stats.atom_lookups += 1
        row = tuple(_term_value(structure, term, env) for term in formula.terms)
        return structure.holds(formula.relation, row)
    if isinstance(formula, Eq):
        if stats is not None:
            stats.atom_lookups += 1
        return _term_value(structure, formula.left, env) == _term_value(
            structure, formula.right, env
        )
    if isinstance(formula, Top):
        return True
    if isinstance(formula, Bottom):
        return False
    if isinstance(formula, Not):
        return not _eval(structure, formula.body, env, stats, token)
    if isinstance(formula, And):
        return all(_eval(structure, child, env, stats, token) for child in formula.children)
    if isinstance(formula, Or):
        return any(_eval(structure, child, env, stats, token) for child in formula.children)
    if isinstance(formula, Implies):
        return (not _eval(structure, formula.premise, env, stats, token)) or _eval(
            structure, formula.conclusion, env, stats, token
        )
    if isinstance(formula, Iff):
        return _eval(structure, formula.left, env, stats, token) == _eval(
            structure, formula.right, env, stats, token
        )
    if isinstance(formula, (Exists, Forall)):
        want = isinstance(formula, Exists)
        shadowed = env.get(formula.var)
        had_binding = formula.var in env
        result = not want
        for value in structure.universe:
            if token is not None:
                token.tick("eval.binding")
            if stats is not None:
                stats.bindings += 1
            env[formula.var] = value
            if _eval(structure, formula.body, env, stats, token) == want:
                result = want
                break
        if had_binding:
            env[formula.var] = shadowed
        else:
            env.pop(formula.var, None)
        return result
    raise FormulaError(f"unknown formula node {formula!r}")


def answers(
    structure: Structure,
    formula: Formula,
    free_order: Sequence[Var] | None = None,
    stats: EvaluationStats | None = None,
    cancel_token: "CancelToken | None" = None,
) -> frozenset[tuple[Element, ...]]:
    """ans(φ(x̄), A): all tuples d̄ with A ⊨ φ[x̄ ↦ d̄].

    ``free_order`` fixes the column order of the answer tuples; by default
    the free variables are taken in sorted name order. For a sentence the
    result is ``{()}`` (true) or ``frozenset()`` (false), matching the
    paper's convention for Boolean queries.
    """
    validate(formula, structure.signature)
    free = free_variables(formula)
    if free_order is None:
        order = tuple(sorted(free, key=lambda var: var.name))
    else:
        order = tuple(Var(var.name) for var in free_order)
        missing = free - set(order)
        if missing:
            names = sorted(var.name for var in missing)
            raise EvaluationError(f"free_order omits free variables {names}")
    result = []
    for values in itertools.product(structure.universe, repeat=len(order)):
        if cancel_token is not None:
            cancel_token.tick("eval.answers")
        env = dict(zip(order, values))
        if _eval(structure, formula, env, stats, cancel_token):
            result.append(values)
    return frozenset(result)


@dataclass(frozen=True)
class Query:
    """An m-ary query Q_φ : STRUCT(σ) → m-ary relations.

    Wraps a formula with an explicit answer-variable order; calling the
    query on a structure returns its answer set. These objects are what
    the locality tools (Gaifman, BNDP) take as input.
    """

    formula: Formula
    variables: tuple[Var, ...]
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "variables", tuple(Var(var.name) for var in self.variables)
        )
        free = free_variables(self.formula)
        missing = free - set(self.variables)
        if missing:
            names = sorted(var.name for var in missing)
            raise FormulaError(f"query variables omit free variables {names}")

    @property
    def arity(self) -> int:
        return len(self.variables)

    def __call__(self, structure: Structure) -> frozenset[tuple[Element, ...]]:
        return answers(structure, self.formula, self.variables)

    def holds(self, structure: Structure, values: tuple[Element, ...]) -> bool:
        """Whether the specific tuple ``values`` is an answer."""
        if len(values) != len(self.variables):
            raise EvaluationError(
                f"query has arity {len(self.variables)}, got tuple of length {len(values)}"
            )
        env = dict(zip(self.variables, values))
        return evaluate(structure, self.formula, env)

    def __repr__(self) -> str:
        label = self.name or repr(self.formula)
        vars_ = ", ".join(var.name for var in self.variables)
        return f"Query[{label}]({vars_})"


@dataclass(frozen=True)
class BooleanQuery:
    """A Boolean query: a sentence, viewed as a class of structures.

    Calling it returns a ``bool``. Used by the Hanf-locality tools and
    the 0–1 law machinery.
    """

    formula: Formula
    name: str = ""

    def __post_init__(self) -> None:
        free = free_variables(self.formula)
        if free:
            names = sorted(var.name for var in free)
            raise FormulaError(f"Boolean query must be a sentence; free: {names}")

    def __call__(self, structure: Structure) -> bool:
        return evaluate(structure, self.formula)

    def __repr__(self) -> str:
        return f"BooleanQuery[{self.name or repr(self.formula)}]"
