"""Query evaluation engines (S3).

Three independent back-ends for FO query evaluation — the naive
recursive evaluator, relational algebra compilation, and AC⁰ circuit
compilation — that must always agree (the "evaluator triangle").
"""

from repro.eval.algebra import Relation
from repro.eval.circuits import (
    Circuit,
    CircuitStats,
    circuit_stats,
    compile_query,
    evaluate_circuit,
)
from repro.eval.evaluator import (
    BooleanQuery,
    EvaluationStats,
    Query,
    answers,
    evaluate,
)
from repro.eval.translate import algebra_answers, translate_to_algebra

__all__ = [
    "evaluate",
    "answers",
    "Query",
    "BooleanQuery",
    "EvaluationStats",
    "Relation",
    "translate_to_algebra",
    "algebra_answers",
    "Circuit",
    "CircuitStats",
    "compile_query",
    "evaluate_circuit",
    "circuit_stats",
]
