"""Compilation of first-order formulas to relational algebra.

This makes the classical equivalence *FO = relational algebra* executable:
``algebra_answers(A, φ)`` evaluates φ by building one :class:`Relation`
per subformula bottom-up, and the test suite checks it always agrees with
the naive evaluator (one edge of the evaluator triangle, together with
the circuit compiler).

Negation is compiled as complement relative to a quantification domain.
By default the domain is the structure's full universe, which matches the
naive evaluator exactly; ``domain="active"`` gives the database-style
active-domain semantics instead (they agree on active-domain-safe
queries, and the test suite exhibits queries where they differ).
"""

from __future__ import annotations

from repro.errors import EvaluationError, FormulaError
from repro.logic.analysis import free_variables, validate
from repro.logic.syntax import (
    And,
    Atom,
    Bottom,
    Const,
    Eq,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Term,
    Top,
    Var,
)
from repro.logic.transform import eliminate_arrows, standardize_apart
from repro.eval.algebra import Relation
from repro.structures.structure import Element, Structure

__all__ = ["translate_to_algebra", "algebra_answers"]


def _domain_of(structure: Structure, domain: str) -> tuple[Element, ...]:
    if domain == "universe":
        return structure.universe
    if domain == "active":
        active = structure.active_domain()
        if not active:
            # A structure with all-empty relations has an empty active
            # domain; fall back to one arbitrary element so quantifiers
            # remain well defined (the universe is non-empty by invariant).
            return (structure.universe[0],)
        return tuple(sorted(active, key=repr))
    raise EvaluationError(f"domain must be 'universe' or 'active', got {domain!r}")


def translate_to_algebra(
    structure: Structure,
    formula: Formula,
    domain: str = "universe",
) -> Relation:
    """Evaluate ``formula`` on ``structure`` through relational algebra.

    Returns a relation whose attributes are the free variable names of
    ``formula`` in sorted order (the empty attribute list for sentences:
    ``{()}`` means true).
    """
    validate(formula, structure.signature)
    prepared = standardize_apart(eliminate_arrows(formula))
    values = _domain_of(structure, domain)
    result = _compile(structure, prepared, values)
    wanted = tuple(sorted(var.name for var in free_variables(formula)))
    if set(result.attributes) != set(wanted):
        # Subformula elimination can drop vacuous variables; pad them back.
        missing = [name for name in wanted if name not in result.attributes]
        result = result.extend_columns(missing, values)
    return result.project(wanted)


def algebra_answers(
    structure: Structure,
    formula: Formula,
    domain: str = "universe",
) -> frozenset[tuple[Element, ...]]:
    """Answer set via the algebra backend, columns in sorted-name order.

    Directly comparable with :func:`repro.eval.evaluator.answers`.
    """
    return translate_to_algebra(structure, formula, domain).rows


def _compile(
    structure: Structure,
    formula: Formula,
    domain: tuple[Element, ...],
) -> Relation:
    if isinstance(formula, Atom):
        return _compile_atom(structure, formula)
    if isinstance(formula, Eq):
        return _compile_eq(structure, formula, domain)
    if isinstance(formula, Top):
        return Relation.nullary(True)
    if isinstance(formula, Bottom):
        return Relation.nullary(False)
    if isinstance(formula, Not):
        inner = _compile(structure, formula.body, domain)
        return inner.complement(domain)
    if isinstance(formula, And):
        result = Relation.nullary(True)
        for child in formula.children:
            result = result.join(_compile(structure, child, domain))
        return result
    if isinstance(formula, Or):
        children = [_compile(structure, child, domain) for child in formula.children]
        all_attributes = tuple(
            sorted({attribute for child in children for attribute in child.attributes})
        )
        result = Relation.empty(all_attributes)
        for child in children:
            missing = [a for a in all_attributes if a not in child.attributes]
            padded = child.extend_columns(missing, domain).project(all_attributes)
            result = result.union(padded)
        return result
    if isinstance(formula, Exists):
        inner = _compile(structure, formula.body, domain)
        name = formula.var.name
        if name not in inner.attributes:
            # ∃x φ with x not free in φ: equivalent to φ over a non-empty
            # domain.
            return inner
        remaining = tuple(a for a in inner.attributes if a != name)
        return inner.project(remaining)
    if isinstance(formula, Forall):
        # ∀x φ  ≡  ¬∃x ¬φ, compiled directly.
        inner = _compile(structure, formula.body, domain)
        name = formula.var.name
        if name not in inner.attributes:
            return inner
        negated = inner.complement(domain)
        remaining = tuple(a for a in negated.attributes if a != name)
        witnessed = negated.project(remaining)
        return witnessed.complement(domain)
    raise FormulaError(f"arrows must be eliminated before compilation: {formula!r}")


def _compile_atom(structure: Structure, formula: Atom) -> Relation:
    rows = structure.tuples(formula.relation)
    positions = tuple(f"#{index}" for index in range(len(formula.terms)))
    relation = Relation(positions, rows)

    seen: dict[str, str] = {}
    rename: dict[str, str] = {}
    for index, term in enumerate(formula.terms):
        position = positions[index]
        if isinstance(term, Const):
            relation = relation.select_eq(position, structure.constant(term.name))
        elif isinstance(term, Var):
            if term.name in seen:
                relation = relation.select_attr_eq(seen[term.name], position)
            else:
                seen[term.name] = position
                rename[position] = term.name
    keep = tuple(rename)
    return relation.project(keep).rename(rename)


def _compile_eq(
    structure: Structure,
    formula: Eq,
    domain: tuple[Element, ...],
) -> Relation:
    def value_of(term: Term) -> Element | None:
        if isinstance(term, Const):
            return structure.constant(term.name)
        return None

    left_value = value_of(formula.left)
    right_value = value_of(formula.right)
    if left_value is not None and right_value is not None:
        return Relation.nullary(left_value == right_value)
    if left_value is not None or right_value is not None:
        value = left_value if left_value is not None else right_value
        var = formula.right if left_value is not None else formula.left
        assert isinstance(var, Var)
        rows = frozenset({(value,)} if value in domain else set())
        return Relation((var.name,), rows)
    assert isinstance(formula.left, Var) and isinstance(formula.right, Var)
    if formula.left == formula.right:
        return Relation((formula.left.name,), frozenset((d,) for d in domain))
    attributes = tuple(sorted((formula.left.name, formula.right.name)))
    return Relation(attributes, frozenset((d, d) for d in domain))
