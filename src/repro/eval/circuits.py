"""The AC⁰ data-complexity construction, made executable.

The paper (after Abiteboul–Hull–Vianu) proves FO ⊆ AC⁰ by compiling a
fixed query φ over schema σ into a family of Boolean circuits, one per
domain size n:

* one *input* per possible ground atom R(d̄), d̄ ∈ [n]^arity;
* a gate per subexpression, with ∧/∨/¬ becoming the corresponding gates;
* ∃ becoming an unbounded fan-in OR over the n instantiations, ∀ an AND.

This module builds those circuits concretely (with hash-consing so shared
subcircuits are represented once), evaluates them against structures, and
reports size and depth — experiment E2 measures that depth is constant in
n while size grows polynomially, which is the AC⁰ claim.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.errors import EvaluationError, FormulaError
from repro.logic.analysis import free_variables, validate
from repro.logic.signature import Signature
from repro.logic.syntax import (
    And,
    Atom,
    Bottom,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Term,
    Top,
    Var,
)
from repro.structures.structure import Structure

__all__ = ["Gate", "Circuit", "compile_query", "evaluate_circuit", "circuit_stats"]

_INPUT = "input"
_CONST = "const"
_NOT = "not"
_AND = "and"
_OR = "or"


@dataclass(frozen=True)
class Gate:
    """One gate: an input, a constant, or a NOT/AND/OR over earlier gates."""

    kind: str
    inputs: tuple[int, ...] = ()
    label: object = None  # for inputs: the ground atom (relation, tuple); for consts: bool


class Circuit:
    """A Boolean circuit with unbounded fan-in AND/OR, hash-consed.

    Gates are numbered in creation order; inputs of a gate always have
    smaller numbers, so a single forward pass evaluates the circuit.
    """

    def __init__(self) -> None:
        self.gates: list[Gate] = []
        self._intern: dict[Gate, int] = {}
        self.output: int | None = None

    # -- construction --------------------------------------------------------

    def add(self, kind: str, inputs: tuple[int, ...] = (), label: object = None) -> int:
        """Add (or reuse) a gate and return its id."""
        for gate_id in inputs:
            if not 0 <= gate_id < len(self.gates):
                raise EvaluationError(f"gate input {gate_id} does not exist")
        gate = Gate(kind, tuple(inputs), label)
        existing = self._intern.get(gate)
        if existing is not None:
            return existing
        self.gates.append(gate)
        gate_id = len(self.gates) - 1
        self._intern[gate] = gate_id
        return gate_id

    def input_gate(self, relation: str, row: tuple) -> int:
        return self.add(_INPUT, label=(relation, tuple(row)))

    def const_gate(self, value: bool) -> int:
        return self.add(_CONST, label=bool(value))

    def not_gate(self, child: int) -> int:
        return self.add(_NOT, (child,))

    def and_gate(self, children: tuple[int, ...]) -> int:
        if not children:
            return self.const_gate(True)
        if len(children) == 1:
            return children[0]
        return self.add(_AND, tuple(sorted(set(children))))

    def or_gate(self, children: tuple[int, ...]) -> int:
        if not children:
            return self.const_gate(False)
        if len(children) == 1:
            return children[0]
        return self.add(_OR, tuple(sorted(set(children))))

    # -- metrics -----------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of gates — polynomial in n for a fixed query (E2)."""
        return len(self.gates)

    def depth(self) -> int:
        """Longest input→output path — constant in n for a fixed query (E2)."""
        if self.output is None:
            raise EvaluationError("circuit has no designated output")
        depths = [0] * len(self.gates)
        for gate_id, gate in enumerate(self.gates):
            if gate.inputs:
                depths[gate_id] = 1 + max(depths[child] for child in gate.inputs)
        return depths[self.output]

    def input_labels(self) -> list[tuple[str, tuple]]:
        """All ground atoms this circuit reads."""
        return [gate.label for gate in self.gates if gate.kind == _INPUT]  # type: ignore[misc]

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, inputs: Mapping[tuple[str, tuple], bool]) -> bool:
        """Evaluate with the given truth value per ground atom."""
        if self.output is None:
            raise EvaluationError("circuit has no designated output")
        values = [False] * len(self.gates)
        for gate_id, gate in enumerate(self.gates):
            if gate.kind == _INPUT:
                try:
                    values[gate_id] = bool(inputs[gate.label])  # type: ignore[index]
                except KeyError:
                    raise EvaluationError(f"no input value for ground atom {gate.label!r}") from None
            elif gate.kind == _CONST:
                values[gate_id] = bool(gate.label)
            elif gate.kind == _NOT:
                values[gate_id] = not values[gate.inputs[0]]
            elif gate.kind == _AND:
                values[gate_id] = all(values[child] for child in gate.inputs)
            elif gate.kind == _OR:
                values[gate_id] = any(values[child] for child in gate.inputs)
            else:  # pragma: no cover - Gate kinds are fixed above
                raise EvaluationError(f"unknown gate kind {gate.kind!r}")
        return values[self.output]


def compile_query(formula: Formula, signature: Signature, n: int) -> Circuit:
    """Compile a sentence into the n-th circuit of its AC⁰ family.

    The domain is [n] = {0, ..., n-1}. The query must be a sentence over
    a purely relational signature (the construction in the paper assumes
    this; constants are easily eliminated but kept out of scope here).
    """
    if n < 1:
        raise EvaluationError(f"domain size must be at least 1, got {n}")
    if signature.constants:
        raise EvaluationError("circuit compilation requires a constant-free signature")
    free = free_variables(formula)
    if free:
        names = sorted(var.name for var in free)
        raise FormulaError(f"circuit compilation requires a sentence; free: {names}")
    validate(formula, signature)

    circuit = Circuit()
    domain = tuple(range(n))

    def term_value(term: Term, env: dict[Var, int]) -> int:
        if isinstance(term, Var):
            return env[term]
        raise FormulaError(f"unexpected constant {term!r} in relational compilation")

    def build(node: Formula, env: dict[Var, int]) -> int:
        if isinstance(node, Atom):
            row = tuple(term_value(term, env) for term in node.terms)
            return circuit.input_gate(node.relation, row)
        if isinstance(node, Eq):
            return circuit.const_gate(
                term_value(node.left, env) == term_value(node.right, env)
            )
        if isinstance(node, Top):
            return circuit.const_gate(True)
        if isinstance(node, Bottom):
            return circuit.const_gate(False)
        if isinstance(node, Not):
            return circuit.not_gate(build(node.body, env))
        if isinstance(node, And):
            return circuit.and_gate(tuple(build(child, env) for child in node.children))
        if isinstance(node, Or):
            return circuit.or_gate(tuple(build(child, env) for child in node.children))
        if isinstance(node, Implies):
            return circuit.or_gate(
                (circuit.not_gate(build(node.premise, env)), build(node.conclusion, env))
            )
        if isinstance(node, Iff):
            left = build(node.left, env)
            right = build(node.right, env)
            both = circuit.and_gate((left, right))
            neither = circuit.and_gate((circuit.not_gate(left), circuit.not_gate(right)))
            return circuit.or_gate((both, neither))
        if isinstance(node, (Exists, Forall)):
            children = []
            for value in domain:
                child_env = dict(env)
                child_env[node.var] = value
                children.append(build(node.body, child_env))
            if isinstance(node, Exists):
                return circuit.or_gate(tuple(children))
            return circuit.and_gate(tuple(children))
        raise FormulaError(f"unknown formula node {node!r}")

    circuit.output = build(formula, {})
    return circuit


def evaluate_circuit(circuit: Circuit, structure: Structure) -> bool:
    """Evaluate a compiled circuit on a structure with universe [n].

    The structure's universe must be exactly {0, ..., n-1} for the ground
    atoms to line up with the circuit's inputs.
    """
    expected = set(range(structure.size))
    if set(structure.universe) != expected:
        raise EvaluationError(
            "circuit evaluation requires universe {0, ..., n-1}; relabel the structure first"
        )
    inputs = {
        label: structure.holds(label[0], label[1]) for label in circuit.input_labels()
    }
    return circuit.evaluate(inputs)


@dataclass(frozen=True)
class CircuitStats:
    """Size/depth summary of one member of a circuit family."""

    n: int
    size: int
    depth: int
    inputs: int


def circuit_stats(formula: Formula, signature: Signature, n: int) -> CircuitStats:
    """Compile and measure the n-th circuit of a query's AC⁰ family."""
    circuit = compile_query(formula, signature, n)
    return CircuitStats(
        n=n,
        size=circuit.size,
        depth=circuit.depth(),
        inputs=len(circuit.input_labels()),
    )
