"""Structures with order and order-invariant queries (§3.6 of the paper).

Databases usually live over ordered domains, so the right notion of FO
definability is *order-invariant* FO: a sentence over σ ∪ {<} whose
truth value does not depend on which linear order expands the structure.
This module provides

* :func:`expand_with_order` — expand a σ-structure with a chosen linear
  order on its universe;
* :func:`order_invariance_counterexample` — search for two orders on
  which a sentence disagrees (exhaustive for small universes, sampled
  beyond a factorial cutoff);
* :func:`is_order_invariant_on` — the corresponding decision on a
  structure family;
* :func:`evaluate_invariant` — evaluate an (asserted) order-invariant
  sentence by picking an arbitrary order, with optional verification.

The paper's point (Grohe–Schwentick, Benedikt–Segoufin) is that
order-invariant FO *stays Gaifman-local*, so the locality toolbox keeps
working over ordered databases; experiment-level checks of this live in
the test suite.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterable, Sequence

from repro.errors import FMTError, FormulaError
from repro.eval.evaluator import evaluate
from repro.logic.analysis import free_variables
from repro.logic.syntax import Formula
from repro.structures.structure import Element, Structure

__all__ = [
    "expand_with_order",
    "all_order_expansions",
    "order_invariance_counterexample",
    "is_order_invariant_on",
    "evaluate_invariant",
]

#: Above this universe size, exhaustive enumeration of the n! orders is
#: replaced by random sampling.
_EXHAUSTIVE_CUTOFF = 6


def expand_with_order(
    structure: Structure,
    ordering: Sequence[Element],
    relation: str = "<",
) -> Structure:
    """Expand a structure with the strict linear order given by ``ordering``.

    ``ordering`` must be a permutation of the universe; the new binary
    relation ``<`` holds between x and y iff x precedes y in it.
    """
    if structure.signature.has_relation(relation):
        raise FMTError(f"structure already interprets {relation!r}")
    if sorted(map(repr, ordering)) != sorted(map(repr, structure.universe)):
        raise FMTError("ordering must be a permutation of the universe")
    position = {element: index for index, element in enumerate(ordering)}
    pairs = [
        (a, b)
        for a in structure.universe
        for b in structure.universe
        if position[a] < position[b]
    ]
    return structure.with_relation(relation, 2, pairs)


def all_order_expansions(
    structure: Structure,
    relation: str = "<",
    sample: int | None = None,
    seed: int = 0,
) -> Iterable[Structure]:
    """Yield expansions of the structure by linear orders.

    All n! of them when the universe is small (or ``sample`` is None and
    n ≤ the exhaustive cutoff); otherwise ``sample`` random ones.
    """
    universe = list(structure.universe)
    if sample is None and len(universe) <= _EXHAUSTIVE_CUTOFF:
        for ordering in itertools.permutations(universe):
            yield expand_with_order(structure, ordering, relation)
        return
    count = sample if sample is not None else 24
    rng = random.Random(seed)
    for _ in range(count):
        ordering = universe[:]
        rng.shuffle(ordering)
        yield expand_with_order(structure, ordering, relation)


def order_invariance_counterexample(
    sentence: Formula,
    structure: Structure,
    relation: str = "<",
    sample: int | None = None,
    seed: int = 0,
) -> tuple[Structure, Structure] | None:
    """Two order-expansions of ``structure`` on which ``sentence`` disagrees.

    Returns ``None`` when no disagreement is found — a *proof* of
    invariance on this structure when the universe is small enough for
    exhaustive enumeration, and strong evidence otherwise.
    """
    free = free_variables(sentence)
    if free:
        names = sorted(var.name for var in free)
        raise FormulaError(f"order invariance concerns sentences; free: {names}")
    witness_true: Structure | None = None
    witness_false: Structure | None = None
    for expansion in all_order_expansions(structure, relation, sample, seed):
        if evaluate(expansion, sentence):
            witness_true = witness_true or expansion
        else:
            witness_false = witness_false or expansion
        if witness_true is not None and witness_false is not None:
            return witness_true, witness_false
    return None


def is_order_invariant_on(
    sentence: Formula,
    structures: Iterable[Structure],
    relation: str = "<",
    sample: int | None = None,
    seed: int = 0,
) -> bool:
    """Whether the sentence is order-invariant on every given structure."""
    return all(
        order_invariance_counterexample(sentence, structure, relation, sample, seed) is None
        for structure in structures
    )


def evaluate_invariant(
    sentence: Formula,
    structure: Structure,
    relation: str = "<",
    verify: bool = False,
    seed: int = 0,
) -> bool:
    """Evaluate an order-invariant sentence on an *unordered* structure.

    Picks the canonical (universe-sorted) order. With ``verify=True``
    the invariance is first checked (exhaustively or by sampling) and
    :class:`FMTError` is raised if a disagreeing pair of orders exists —
    the semantics would otherwise be ill-defined.
    """
    if verify:
        counterexample = order_invariance_counterexample(
            sentence, structure, relation, seed=seed
        )
        if counterexample is not None:
            raise FMTError(
                "sentence is not order-invariant on this structure: "
                "two orders give different truth values"
            )
    expansion = expand_with_order(structure, structure.universe, relation)
    return evaluate(expansion, sentence)
