"""Structures with order (§3.6): order-invariant queries."""

from repro.orders.invariance import (
    all_order_expansions,
    evaluate_invariant,
    expand_with_order,
    is_order_invariant_on,
    order_invariance_counterexample,
)

__all__ = [
    "expand_with_order",
    "all_order_expansions",
    "order_invariance_counterexample",
    "is_order_invariant_on",
    "evaluate_invariant",
]
