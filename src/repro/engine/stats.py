"""Structure statistics: the planner's view of the data.

A :class:`StructureStats` snapshot holds what a database catalog would:
per-relation cardinalities, the universe and active-domain sizes, and the
maximal Gaifman degree (the ``k`` of the bounded-degree theorems, reused
from :mod:`repro.structures.gaifman`). Collection is linear in the
structure and memoized per structure, so repeated engine calls pay for it
once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.structures.structure import Structure

__all__ = ["StructureStats", "collect_stats"]


@dataclass(frozen=True)
class StructureStats:
    """Catalog statistics for one structure (immutable, hashable)."""

    universe_size: int
    active_domain_size: int
    cardinalities: tuple[tuple[str, int], ...]
    max_degree: int
    has_constants: bool

    def cardinality(self, relation: str) -> int:
        """Number of tuples in ``relation`` (0 for unknown symbols)."""
        for name, count in self.cardinalities:
            if name == relation:
                return count
        return 0

    @property
    def plan_key(self) -> tuple:
        """The part of the stats a plan's shape depends on.

        Two structures with the same plan key get the same plan from the
        planner, so the plan cache can serve both with one entry.
        """
        return (self.universe_size, self.active_domain_size, self.cardinalities)

    def __repr__(self) -> str:
        rels = ", ".join(f"{name}:{count}" for name, count in self.cardinalities)
        return (
            f"StructureStats(|A|={self.universe_size}, adom={self.active_domain_size}, "
            f"deg={self.max_degree}, {rels or 'no relations'})"
        )


def collect_stats(structure: Structure) -> StructureStats:
    """Collect (and memoize on the structure) planner statistics."""

    def compute() -> StructureStats:
        cardinalities = tuple(
            (name, len(structure.relations[name]))
            for name in sorted(structure.signature.relation_names())
        )
        return StructureStats(
            universe_size=structure.size,
            active_domain_size=len(structure.active_domain()),
            cardinalities=cardinalities,
            max_degree=structure.max_degree(),
            has_constants=bool(structure.constants),
        )

    return structure.cached(("engine-stats",), compute)  # type: ignore[return-value]
