"""The columnar executor: compiled kernel pipelines → :class:`Relation`.

Drop-in alternative to :class:`repro.engine.executor.Executor` with the
same constructor and ``run`` contract, but a completely different inner
loop: the plan is compiled once per (structure, domain) into a tree of
generated kernel closures over integer-coded rows
(:mod:`repro.engine.columnar.compile`), cached on the structure, and
re-executions just walk that tree. Element objects only reappear at the
plan root, where the (usually small) answer key set is bulk-decoded.

Parity with the tuple executor is deliberate and load-bearing:

* the same per-node observability — ``executor.{ops,rows,ms}.<Op>``
  counters/histograms under telemetry, ``NodeActuals`` per plan node
  when a recorder is attached (fused nodes record under the outermost
  plan node; the swallowed inner node simply has no actuals);
* the same budget semantics — ``CancelToken.consume_rows`` per
  materialized node, so row budgets and deadlines trip at the operator
  that blew up;
* the same semijoin pre-filter policy — ``semijoin_filtering`` plus the
  :data:`~repro.engine.executor.SEMIJOIN_THRESHOLD` size gate, counted
  in ``ExecutionStats.semijoin_filters`` — applied at run time so one
  cached pipeline serves every engine configuration.

The tuple executor remains the conformance reference; the
``engine-columnar`` backend in :mod:`repro.conformance.backends` holds
this tier to exact answer-set agreement.
"""

from __future__ import annotations

import time
from typing import MutableMapping

from repro.resilience.budget import CancelToken
from repro.engine.columnar.codec import codec_for
from repro.engine.columnar.compile import CompiledPlan, PipelineNode, compile_plan
from repro.engine.executor import (
    SEMIJOIN_THRESHOLD,
    ExecutionStats,
    NodeActuals,
)
from repro.engine.plan import Plan
from repro.eval.algebra import Relation
from repro.structures.structure import Element, Structure
from repro.telemetry.metrics import counter as _counter
from repro.telemetry.metrics import histogram as _histogram
from repro.telemetry.tracer import is_enabled as _telemetry_enabled

__all__ = ["ColumnarExecutor"]


class ColumnarExecutor:
    """Execute compiled kernel pipelines against one structure and domain."""

    def __init__(
        self,
        structure: Structure,
        domain: tuple[Element, ...],
        stats: ExecutionStats | None = None,
        recorder: MutableMapping[int, NodeActuals] | None = None,
        semijoin_filtering: bool = True,
        cancel_token: CancelToken | None = None,
    ) -> None:
        self.structure = structure
        self.domain = domain
        self.stats = stats if stats is not None else ExecutionStats()
        self.recorder = recorder
        self.semijoin_filtering = semijoin_filtering
        self.cancel_token = cancel_token

    def run(self, plan: Plan) -> Relation:
        compiled = self._compiled(plan)
        keys = self._exec(compiled.root)
        rows = compiled.codec.decode_rows(keys, plan.arity, compiled.packed)
        return Relation._make(plan.attributes, rows)

    # -- pipeline cache -------------------------------------------------------

    def _compiled(self, plan: Plan) -> CompiledPlan:
        key = ("columnar-pipeline", id(plan), self.domain)
        compiled = self.structure.cached(key, lambda: self._compile(plan))
        if compiled.plan is not plan:  # pragma: no cover - defensive: the
            # cached CompiledPlan pins its plan object alive, so a live id
            # can never be reused; recompile rather than trust a collision.
            return self._compile(plan)
        if compiled.epoch != self.structure.epoch:
            compiled = self._refresh(plan, compiled, key)
        return compiled

    def _refresh(
        self, plan: Plan, compiled: CompiledPlan, key: tuple
    ) -> CompiledPlan:
        """Bring a cached pipeline forward across structure updates.

        The cheap path: the delta log covers the gap and ``codec_for``
        patched the same codec object the pipeline compiled against — the
        generated kernels read the patched columns directly, so only the
        leaf memos of relations the deltas touched are dropped
        (:meth:`CompiledPlan.refresh`).  If the codec had to be rebuilt
        (log outrun, foreign codec), the captured column references are
        orphaned and the whole pipeline is recompiled.
        """
        structure = self.structure
        deltas = structure.deltas_since(compiled.epoch)
        codec = codec_for(structure, self.domain)
        if deltas is None or codec is not compiled.codec:
            compiled = self._compile(plan)
            structure._cache[key] = compiled
            return compiled
        compiled.refresh(deltas, structure.epoch)
        if _telemetry_enabled():
            _counter("columnar.pipeline.refreshes").inc()
        return compiled

    def _compile(self, plan: Plan) -> CompiledPlan:
        if not _telemetry_enabled():
            return compile_plan(plan, self.structure, self.domain)
        start = time.perf_counter()
        compiled = compile_plan(plan, self.structure, self.domain)
        _counter("columnar.pipeline.compiles").inc()
        _histogram("columnar.compile.ms").observe(
            (time.perf_counter() - start) * 1000.0
        )
        return compiled

    # -- interpretation -------------------------------------------------------

    def _exec(self, node: PipelineNode) -> set:
        token = self.cancel_token
        recorder = self.recorder
        if recorder is None and not _telemetry_enabled():
            rows = self._apply(node)
            if token is not None:
                token.consume_rows(len(rows), node.kind)
            return rows
        start = time.perf_counter()
        rows = self._apply(node)
        elapsed = time.perf_counter() - start
        if token is not None:
            token.consume_rows(len(rows), node.kind)
        if _telemetry_enabled():
            kind = node.kind
            _counter(f"executor.ops.{kind}").inc()
            _counter(f"executor.rows.{kind}").inc(len(rows))
            _histogram(f"executor.ms.{kind}").observe(elapsed * 1000.0)
            _counter(f"columnar.kernel.{kind}").inc()
        if recorder is not None:
            recorder[id(node.plan)] = NodeActuals(rows=len(rows), seconds=elapsed)
        return rows

    def _apply(self, node: PipelineNode) -> set:
        stats = self.stats
        children = node.children
        if not children:
            # Leaves (scans, domain columns, constant sets) depend only
            # on the immutable structure and the pipeline's domain:
            # materialize once, reuse the set on every execution.
            rows = node.cache
            if rows is None:
                rows = node.fn()
                node.cache = rows
        elif node.kind == "Join":
            left = self._exec(children[0])
            right = self._exec(children[1])
            stats.joins += 1
            if (
                node.shared
                and self.semijoin_filtering
                and len(left) > SEMIJOIN_THRESHOLD
                and len(right) > SEMIJOIN_THRESHOLD
            ):
                stats.semijoin_filters += 1
                before = max(len(left), len(right))
                if len(left) >= len(right):
                    left = node.semi_left(left, right)
                    after = len(left)
                else:
                    right = node.semi_right(right, left)
                    after = len(right)
                if _telemetry_enabled():
                    _counter("executor.semijoin.filters").inc()
                    _counter("executor.semijoin.rows_filtered").inc(before - after)
            rows = node.fn(left, right)
        elif node.kind == "AntiJoin":
            stats.antijoins += 1
            rows = node.fn(self._exec(children[0]), self._exec(children[1]))
        else:
            rows = node.fn(*[self._exec(child) for child in children])
        stats.rows_materialized += len(rows)
        return rows
