"""The columnar executor tier: integer-coded relations + generated kernels.

Three layers (see DESIGN S20):

* :mod:`~repro.engine.columnar.codec` — one element ↔ dense-int-id
  bijection per (structure, quantification domain), with relations
  materialized as parallel ``array('q')`` columns and, for packable
  arities, as cached sets of mixed-radix composite keys;
* :mod:`~repro.engine.columnar.kernels` — per-shape generated sources
  (fastconj-style specialization) for scan/join/semijoin/antijoin/
  project/extend/complement/union over those keys;
* :mod:`~repro.engine.columnar.compile` + ``executor`` — plan trees
  compiled bottom-up into pipelines of kernel closures (σπ fused into
  scans, π fused into join probe loops), cached on the structure, and
  interpreted by :class:`ColumnarExecutor` with the same observability,
  budget, and semijoin-filter semantics as the tuple executor.

Selection happens in :class:`repro.engine.engine.Engine` — the
``executor`` parameter / ``REPRO_EXECUTOR`` env var force a tier, and
the default ``auto`` mode dispatches on plan cost.
"""

from repro.engine.columnar.codec import (
    PACK_KEY_LIMIT,
    PACK_MAX_ARITY,
    DomainCodec,
    codec_for,
)
from repro.engine.columnar.compile import CompiledPlan, PipelineNode, compile_plan
from repro.engine.columnar.executor import ColumnarExecutor

__all__ = [
    "ColumnarExecutor",
    "CompiledPlan",
    "DomainCodec",
    "PipelineNode",
    "PACK_KEY_LIMIT",
    "PACK_MAX_ARITY",
    "codec_for",
    "compile_plan",
]
