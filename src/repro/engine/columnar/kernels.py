"""Vectorized kernels over integer-coded relations, generated per shape.

Every kernel here is *specialized source code*: instead of interpreting
"join on the shared attributes" per row (index lists, ``itemgetter``,
generic ``all(...)`` filters), each builder renders a small Python
function with the strides, pinned ids and column positions **inlined as
constants**, compiles it once, and returns the closure — the technique
pracmln's ``fastconj`` grounding uses for conjunction specialization.
Generated sources are memoized globally, so two plans with the same
shape over the same domain size share one code object.

Two row encodings (see :mod:`repro.engine.columnar.codec`):

* packed mode — a row is one int in mixed radix base ``n``; extracting
  attribute ``p`` of an arity-``k`` key compiles to
  ``(key // n**(k-1-p)) % n`` (with the boundary cases simplified), and
  composite join keys compile to closed-form arithmetic;
* tuple mode — a row is a tuple of ints; extraction compiles to plain
  subscripts.

All kernels consume and produce ``set``\\ s (never mutating inputs), so
hash joins, semijoins, antijoins, project-dedup, unions and domain
complements all run as C-level set/dict operations with one generated
expression per row.
"""

from __future__ import annotations

from itertools import product
from typing import Callable

__all__ = [
    "build_scan",
    "build_join",
    "build_half_join",
    "build_project",
    "build_extend",
    "build_extend_insert",
    "build_complement",
    "build_union",
    "compile_source",
]

#: source string -> compiled code object (same-shape plans share kernels).
_CODE_CACHE: dict[str, object] = {}

_EXEC_GLOBALS = {"product": product, "range": range, "set": set, "zip": zip, "len": len}


def compile_source(source: str, name: str) -> Callable:
    """Compile (memoized) generated kernel source and return the function."""
    code = _CODE_CACHE.get(source)
    if code is None:
        code = compile(source, f"<columnar:{name}>", "exec")
        _CODE_CACHE[source] = code
    namespace: dict = dict(_EXEC_GLOBALS)
    exec(code, namespace)
    return namespace[name]


# -- expression rendering ----------------------------------------------------


def _elem(var: str, position: int, arity: int, base: int, packed: bool) -> str:
    """Expression for attribute ``position`` of key ``var``."""
    if not packed:
        return f"{var}[{position}]"
    if arity == 1:
        return var
    if position == arity - 1:
        return f"({var} % {base})"
    if position == 0:
        return f"({var} // {base ** (arity - 1)})"
    return f"(({var} // {base ** (arity - 1 - position)}) % {base})"


def _subkey(
    var: str, positions: tuple[int, ...], arity: int, base: int, packed: bool
) -> str:
    """Expression packing the given positions of ``var`` into a new key."""
    if positions == tuple(range(arity)):
        return var
    if packed:
        if not positions:
            return "0"
        width = len(positions)
        terms = []
        for rank, position in enumerate(positions):
            element = _elem(var, position, arity, base, packed)
            weight = base ** (width - 1 - rank)
            terms.append(element if weight == 1 else f"{element} * {weight}")
        return " + ".join(terms)
    if not positions:
        return "()"
    elements = ", ".join(_elem(var, p, arity, base, packed) for p in positions)
    return f"({elements},)"


def _pair_emit(
    sources: tuple[tuple[str, int, int], ...], base: int, packed: bool
) -> str:
    """Emit expression combining attributes drawn from two keys.

    ``sources`` lists ``(var, position, arity)`` per output attribute in
    output order — the fused join ⨝ π kernel: the projected key is
    computed straight from the probe pair, no intermediate row exists.
    """
    if packed:
        if not sources:
            return "0"
        width = len(sources)
        terms = []
        for rank, (var, position, arity) in enumerate(sources):
            element = _elem(var, position, arity, base, packed)
            weight = base ** (width - 1 - rank)
            terms.append(element if weight == 1 else f"{element} * {weight}")
        return " + ".join(terms)
    if not sources:
        return "()"
    elements = ", ".join(
        _elem(var, position, arity, base, packed) for var, position, arity in sources
    )
    return f"({elements},)"


# -- kernel builders ---------------------------------------------------------


def build_scan(
    raw_arity: int,
    pins: tuple[tuple[int, int], ...],
    equalities: tuple[tuple[int, int], ...],
    projection: tuple[int, ...],
    base: int,
    packed: bool,
) -> Callable:
    """σπ-fused scan kernel: ``fn(columns) -> set`` of projected keys.

    ``pins`` are (position, id) constant selections, ``equalities`` are
    (position, position) repeated-variable selections, ``projection``
    lists the surviving raw positions in output order — all inlined.
    """
    names = [f"r{i}" for i in range(raw_arity)]
    if raw_arity == 1:
        head = f"for r0 in cols[0]"
    else:
        unpack = ", ".join(names)
        zipped = ", ".join(f"cols[{i}]" for i in range(raw_arity))
        head = f"for {unpack} in zip({zipped})"
    conditions = [f"r{position} == {ident}" for position, ident in pins]
    conditions += [f"r{i} == r{j}" for i, j in equalities]
    guard = f" if {' and '.join(conditions)}" if conditions else ""
    if packed:
        if not projection:
            emit = "0"
        else:
            width = len(projection)
            terms = []
            for rank, position in enumerate(projection):
                weight = base ** (width - 1 - rank)
                terms.append(
                    f"r{position}" if weight == 1 else f"r{position} * {weight}"
                )
            emit = " + ".join(terms)
    else:
        emit = "(" + "".join(f"r{p}, " for p in projection) + ")"
    source = f"def kernel(cols):\n    return {{{emit} {head}{guard}}}\n"
    return compile_source(source, "kernel")


def build_join(
    left_arity: int,
    right_arity: int,
    left_shared: tuple[int, ...],
    right_shared: tuple[int, ...],
    right_extras: tuple[int, ...],
    base: int,
    packed: bool,
    projection: tuple[tuple[str, int], ...] | None = None,
) -> Callable:
    """Hash-join kernel ``fn(L, R) -> set``, build side chosen by size.

    Output attributes are ``left + right extras`` (the planner's
    ``join_attributes`` order). ``projection`` optionally fuses a parent
    π into the probe loop: each entry is ``('l'|'r', position)`` naming
    the side and position of one projected output attribute.
    """
    if projection is None:
        emitted = [("l", position) for position in range(left_arity)]
        emitted += [("r", position) for position in right_extras]
    else:
        emitted = list(projection)
    sources = tuple(
        ("lk", position, left_arity) if side == "l" else ("rk", position, right_arity)
        for side, position in emitted
    )
    emit = _pair_emit(sources, base, packed)
    if not left_shared:
        source = (
            "def kernel(L, R):\n"
            "    out = set()\n"
            "    add = out.add\n"
            "    for lk in L:\n"
            "        for rk in R:\n"
            f"            add({emit})\n"
            "    return out\n"
        )
        return compile_source(source, "kernel")
    lsub = _subkey("lk", left_shared, left_arity, base, packed)
    rsub = _subkey("rk", right_shared, right_arity, base, packed)
    source = (
        "def kernel(L, R):\n"
        "    out = set()\n"
        "    add = out.add\n"
        "    tbl = {}\n"
        "    if len(L) <= len(R):\n"
        "        for lk in L:\n"
        f"            k = {lsub}\n"
        "            b = tbl.get(k)\n"
        "            if b is None:\n"
        "                tbl[k] = [lk]\n"
        "            else:\n"
        "                b.append(lk)\n"
        "        for rk in R:\n"
        f"            b = tbl.get({rsub})\n"
        "            if b is not None:\n"
        "                for lk in b:\n"
        f"                    add({emit})\n"
        "    else:\n"
        "        for rk in R:\n"
        f"            k = {rsub}\n"
        "            b = tbl.get(k)\n"
        "            if b is None:\n"
        "                tbl[k] = [rk]\n"
        "            else:\n"
        "                b.append(rk)\n"
        "        for lk in L:\n"
        f"            b = tbl.get({lsub})\n"
        "            if b is not None:\n"
        "                for rk in b:\n"
        f"                    add({emit})\n"
        "    return out\n"
    )
    return compile_source(source, "kernel")


def build_half_join(
    left_arity: int,
    right_arity: int,
    left_shared: tuple[int, ...],
    right_shared: tuple[int, ...],
    base: int,
    packed: bool,
    keep_matching: bool,
) -> Callable:
    """Semijoin (⋉, ``keep_matching``) / antijoin (▷) kernel ``fn(L, R)``.

    One generated key-set over the right side, one membership test per
    left row — the hash-based realization of safe negation.
    """
    lsub = _subkey("lk", left_shared, left_arity, base, packed)
    rsub = _subkey("rk", right_shared, right_arity, base, packed)
    test = "in" if keep_matching else "not in"
    source = (
        "def kernel(L, R):\n"
        f"    keys = {{{rsub} for rk in R}}\n"
        f"    return {{lk for lk in L if {lsub} {test} keys}}\n"
    )
    return compile_source(source, "kernel")


def build_project(
    positions: tuple[int, ...], arity: int, base: int, packed: bool
) -> Callable:
    """Project-dedup kernel ``fn(rows) -> set`` (dedup is the set itself)."""
    sub = _subkey("k", positions, arity, base, packed)
    source = f"def kernel(rows):\n    return {{{sub} for k in rows}}\n"
    return compile_source(source, "kernel")


def build_extend(
    arity: int, new_count: int, base: int, packed: bool
) -> Callable:
    """Pad kernel: append ``new_count`` domain-ranging columns (a product).

    In packed mode the appended digits are the *low* digits, so each
    input key expands to one contiguous run of output keys — emitted as
    a single C-level ``set.update(range(...))`` per input row instead of
    a per-output-key comprehension.
    """
    if packed:
        block = base**new_count
        source = (
            "def kernel(rows):\n"
            "    out = set()\n"
            "    update = out.update\n"
            "    for k in rows:\n"
            f"        b = k * {block}\n"
            f"        update(range(b, b + {block}))\n"
            "    return out\n"
        )
        return compile_source(source, "kernel")
    source = (
        "def kernel(rows):\n"
        f"    extras = list(product(range({base}), repeat={new_count}))\n"
        "    return {k + e for k in rows for e in extras}\n"
    )
    return compile_source(source, "kernel")


def build_extend_insert(
    child_arity: int, new_count: int, insert_at: int, base: int
) -> Callable:
    """Fused π ∘ Extend kernel (packed mode): insert the new digits mid-key.

    Realizes ``Project(Extend(child))`` when the projection keeps the
    child attributes in order and splices the new attributes in as one
    contiguous block at position ``insert_at``. Each child key ``c``
    splits at the insertion point into high digits ``c // split`` and
    low digits ``c % split`` (``split = base**(child_arity - insert_at)``),
    and the output keys form one arithmetic progression with stride
    ``split`` — again a single ``set.update(range(...))`` per input row,
    never a materialized intermediate of the unprojected extend.
    """
    split = base ** (child_arity - insert_at)
    count = base**new_count
    hi_mult = split * count
    span = count * split
    if insert_at == child_arity:  # appended at the end: contiguous run
        body = f"        b = k * {hi_mult}\n        update(range(b, b + {span}))\n"
    elif insert_at == 0:  # prepended: the child key is the low digits
        body = f"        update(range(k, k + {span}, {split}))\n"
    else:
        body = (
            f"        b = (k // {split}) * {hi_mult} + (k % {split})\n"
            f"        update(range(b, b + {span}, {split}))\n"
        )
    source = (
        "def kernel(rows):\n"
        "    out = set()\n"
        "    update = out.update\n"
        "    for k in rows:\n"
        f"{body}"
        "    return out\n"
    )
    return compile_source(source, "kernel")


def build_complement(arity: int, base: int, packed: bool, universe_cache: dict) -> Callable:
    """Complement kernel: ``domain^arity`` minus the rows.

    The full key universe for (base, arity) is built once and kept in
    ``universe_cache`` (owned by the pipeline/codec), so repeated
    complements — the ∀-as-¬∃¬ pattern produces two per quantifier —
    pay one C-level ``difference`` each.
    """
    if packed:
        size = base**arity

        def kernel(rows: set) -> set:
            full = universe_cache.get(arity)
            if full is None:
                full = frozenset(range(size))
                universe_cache[arity] = full
            return full.difference(rows)

        return kernel

    def kernel(rows: set) -> set:
        full = universe_cache.get(arity)
        if full is None:
            full = frozenset(product(range(base), repeat=arity))
            universe_cache[arity] = full
        return full.difference(rows)

    return kernel


def build_union() -> Callable:
    """n-ary ∪ kernel: one set constructed from all parts at once."""

    def kernel(*parts: set) -> set:
        return set().union(*parts)

    return kernel
