"""The domain codec: integer-code one quantification domain, once.

Everything the columnar tier does — packed composite keys, vectorized
kernels, generated pipelines — rests on a single bijection between the
quantification domain and ``range(n)``. :class:`DomainCodec` owns that
bijection plus the columnar materialization of each base relation:
parallel ``array('q')`` columns of element ids instead of frozensets of
tuples of arbitrary Python objects. Both are cached on the structure
(via :meth:`Structure.cached`), so the coding cost is paid once per
(structure, domain) and the caches evaporate on pickling exactly like
every other per-structure memo (:meth:`Structure.__getstate__` ships
the mathematical content only — workers rebuild codecs on demand).

Row encodings come in two flavors, chosen per plan execution:

* **packed** — a row over ``k ≤ PACK_MAX_ARITY`` attributes becomes one
  int in mixed radix base ``n`` (``id0·n^{k-1} + … + id_{k-1}``); whole
  relations become plain ``set``\\ s of ints, and every kernel turns
  into C-speed int-set operations;
* **tuple** — above the packing arity (or if ``n^k`` would overflow a
  machine word) rows are tuples of ints, still far cheaper to hash than
  tuples of arbitrary elements.
"""

from __future__ import annotations

import weakref
from array import array

from repro.structures.structure import Element, Structure
from repro.telemetry.metrics import counter as _counter
from repro.telemetry.tracer import is_enabled as _telemetry_enabled

__all__ = [
    "DomainCodec",
    "codec_for",
    "codec_stats",
    "PACK_MAX_ARITY",
    "PACK_KEY_LIMIT",
]

#: Maximal arity packed into a single int key; wider rows fall back to
#: tuple-of-int keys.
PACK_MAX_ARITY = 3

#: Packed keys must stay below this bound (signed 64-bit ``array('q')``
#: territory) — with base ``n`` and arity ``k`` we require ``n**k`` to
#: fit, which it does for every universe this library handles.
PACK_KEY_LIMIT = 2**62


class DomainCodec:
    """Element ↔ dense int id for one (structure, domain) pair.

    ``domain`` is the executor's quantification domain — the structure's
    universe under ``domain="universe"`` semantics, the active domain
    otherwise. Ids are positions in the domain tuple, so decoding is a
    tuple index, not a dict lookup.
    """

    __slots__ = (
        "_structure",
        "domain",
        "base",
        "index",
        "universes",
        "_columns",
        "_packed",
        "epoch",
    )

    def __init__(self, structure: Structure, domain: tuple[Element, ...]) -> None:
        # Weakly referenced: the codec lives in the structure's own memo
        # cache, and a strong backref would make every coded structure a
        # reference cycle — dead structures (with their cached columns
        # and pipelines) would pile up until a cyclic-GC pass instead of
        # dying by refcount. The codec is only ever used through a live
        # structure, so the dereference below cannot dangle in practice.
        self._structure = weakref.ref(structure)
        self.domain = domain
        self.base = len(domain)
        self.index: dict[Element, int] = {
            element: position for position, element in enumerate(domain)
        }
        #: arity -> frozenset of every key over domain^arity, built lazily
        #: by complement kernels (the ∀-as-¬∃¬ pattern complements twice
        #: per quantifier, so the full key universe is worth keeping).
        self.universes: dict[int, frozenset] = {}
        self._columns: dict[str, tuple[array, ...]] = {}
        self._packed: dict[str, frozenset[int]] = {}
        #: The structure epoch the cached columns were built against.
        #: ``codec_for`` compares it on every fetch — a codec built
        #: before an ``insert``/``delete`` holds stale columns and packed
        #: sets and must never be served again.
        self.epoch = structure.epoch

    @property
    def structure(self) -> Structure:
        structure = self._structure()
        if structure is None:  # pragma: no cover - see __init__
            raise ReferenceError("the structure owning this codec is gone")
        return structure

    # -- scalar and row coding ------------------------------------------------

    def encode(self, value: Element) -> int | None:
        """The id of ``value``, or ``None`` when it is outside the domain."""
        return self.index.get(value)

    def decode(self, ident: int) -> Element:
        return self.domain[ident]

    def can_pack(self, arity: int) -> bool:
        """Whether rows of this arity fit a single-int composite key."""
        return arity <= PACK_MAX_ARITY and self.base**arity < PACK_KEY_LIMIT

    def encode_row(self, row: tuple[Element, ...], packed: bool = True) -> int | tuple[int, ...] | None:
        """Pack one element row into a key (``None`` if any value is foreign)."""
        ids = []
        for value in row:
            ident = self.index.get(value)
            if ident is None:
                return None
            ids.append(ident)
        if not packed:
            return tuple(ids)
        key = 0
        for ident in ids:
            key = key * self.base + ident
        return key

    def decode_key(self, key: int | tuple[int, ...], arity: int) -> tuple[Element, ...]:
        """Invert :meth:`encode_row` for a packed-int or tuple-of-int key."""
        domain = self.domain
        if isinstance(key, tuple):
            return tuple(domain[ident] for ident in key)
        ids = [0] * arity
        base = self.base
        for position in range(arity - 1, -1, -1):
            key, ids[position] = divmod(key, base)
        return tuple(domain[ident] for ident in ids)

    def decode_rows(
        self, keys: set[int] | set[tuple[int, ...]], arity: int, packed: bool
    ) -> frozenset[tuple[Element, ...]]:
        """Bulk-decode a kernel result back into element tuples.

        This is the only boundary where the columnar tier touches Python
        element objects again — at the *root* of a plan, where the
        answer set is usually small.
        """
        domain = self.domain
        if arity == 0:
            return frozenset(() for _ in keys)
        if not packed:
            return frozenset(
                tuple(domain[ident] for ident in key) for key in keys
            )
        if arity == 1:
            return frozenset((domain[key],) for key in keys)
        base = self.base
        if arity == 2:
            return frozenset(
                (domain[key // base], domain[key % base]) for key in keys
            )
        if arity == 3:
            square = base * base
            return frozenset(
                (domain[key // square], domain[(key // base) % base], domain[key % base])
                for key in keys
            )
        return frozenset(self.decode_key(key, arity) for key in keys)

    # -- relation materialization --------------------------------------------

    def columns(self, relation: str) -> tuple[array, ...]:
        """The relation as parallel ``array('q')`` id columns (cached).

        Rows mentioning elements outside the domain are dropped — they
        cannot contribute to any answer over this domain (under active-
        domain semantics every relation row is inside the domain anyway).
        """
        cached = self._columns.get(relation)
        if cached is not None:
            return cached
        rows = self.structure.tuples(relation)
        arity = self.structure.signature.arity(relation)
        cols: tuple[array, ...] = tuple(array("q") for _ in range(arity))
        index = self.index
        for row in rows:
            ids = []
            for value in row:
                ident = index.get(value)
                if ident is None:
                    break
                ids.append(ident)
            else:
                for column, ident in zip(cols, ids):
                    column.append(ident)
        self._columns[relation] = cols
        return cols

    def packed_relation(self, relation: str) -> frozenset[int]:
        """The whole relation as a frozenset of packed int keys (cached).

        Only valid when :meth:`can_pack` holds for the relation's arity;
        identity scans (no pins, no equalities, untouched column order)
        return this set directly — a scan with zero per-row work.
        """
        cached = self._packed.get(relation)
        if cached is not None:
            return cached
        cols = self.columns(relation)
        base = self.base
        if not cols:
            packed = frozenset(
                {0} if self.structure.tuples(relation) else set()
            )
        elif len(cols) == 1:
            packed = frozenset(cols[0])
        elif len(cols) == 2:
            packed = frozenset(a * base + b for a, b in zip(cols[0], cols[1]))
        else:
            packed = frozenset(
                (a * base + b) * base + c
                for a, b, c in zip(cols[0], cols[1], cols[2])
            )
        self._packed[relation] = packed
        return packed

    # -- delta maintenance ----------------------------------------------------

    def apply_deltas(self, deltas: list[tuple[str, str, tuple]]) -> None:
        """Patch the cached materializations with applied structure deltas.

        The domain is unchanged by updates (inserts and deletes touch
        relations only, never the universe), so the id bijection,
        ``base``, and the cached key ``universes`` all stay valid — only
        the per-relation columns and packed sets move.  Each delta costs
        O(1) for an insert (append one id per column, one frozenset
        union) and O(rows) for a delete (locate the coded row).  Only
        *materialized* entries are patched; relations never coded against
        this codec are still built lazily from the current contents.

        Rows mentioning elements outside the domain are skipped, exactly
        as :meth:`columns` drops them at build time.  Nullary relations
        carry no columns to patch — their entries are dropped and rebuilt
        on demand.
        """
        for op, relation, row in deltas:
            if not row:
                self._columns.pop(relation, None)
                self._packed.pop(relation, None)
                continue
            ids = []
            for value in row:
                ident = self.index.get(value)
                if ident is None:
                    break
                ids.append(ident)
            if len(ids) != len(row):
                continue  # foreign row: never materialized, nothing to patch
            cols = self._columns.get(relation)
            if cols is not None:
                if op == "insert":
                    for column, ident in zip(cols, ids):
                        column.append(ident)
                else:
                    first = cols[0]
                    for position in range(len(first) - 1, -1, -1):
                        if all(
                            column[position] == ident
                            for column, ident in zip(cols, ids)
                        ):
                            for column in cols:
                                del column[position]
                            break
            packed = self._packed.get(relation)
            if packed is not None:
                key = 0
                for ident in ids:
                    key = key * self.base + ident
                if op == "insert":
                    self._packed[relation] = packed | {key}
                else:
                    self._packed[relation] = packed - {key}
        self.epoch = self.structure.epoch


#: Process-wide patch/rebuild tallies, maintained even with telemetry
#: disabled — benchmarks and tests assert "zero full re-encodes" against
#: these without paying for the metrics registry in the timed loop.
codec_stats = {"patched": 0, "rebuilt": 0}


def codec_for(structure: Structure, domain: tuple[Element, ...]) -> DomainCodec:
    """The (structure, domain) codec, cached on the structure.

    The cache key includes the domain tuple because one structure can be
    queried under both universe and active-domain semantics; under
    ``"universe"`` the domain *is* ``structure.universe``, so the common
    path shares a single codec. Like every ``Structure.cached`` memo the
    codec is excluded from pickles (see ``Structure.__getstate__``) and
    rebuilt on demand in worker processes.

    **Epoch check.**  ``Structure.insert``/``delete`` keeps the memo
    (see ``Structure._patch_memos``) but bumps the epoch; the check here
    is what makes that safe — a codec stamped with an older epoch is
    never served as-is.  When the structure's delta log still covers the
    gap, the codec is *patched in place* (:meth:`DomainCodec.apply_deltas`
    — O(delta) instead of O(structure)); only a codec too far behind the
    bounded log, adopted from another structure, or built for a
    different domain tuple is rebuilt from scratch.
    """
    key = ("columnar-codec", domain)
    codec = structure.cached(key, lambda: DomainCodec(structure, domain))
    if codec.epoch != structure.epoch:
        deltas = structure.deltas_since(codec.epoch)
        if (
            deltas is not None
            and codec.domain == domain
            and codec._structure() is structure
        ):
            codec.apply_deltas(deltas)
            codec_stats["patched"] += 1
            if _telemetry_enabled():
                _counter("columnar.codec.patched").inc()
        else:
            codec = DomainCodec(structure, domain)
            structure._cache[key] = codec
            codec_stats["rebuilt"] += 1
            if _telemetry_enabled():
                _counter("columnar.codec.rebuilt").inc()
    return codec  # type: ignore[return-value]
