"""Query normalization for the engine: NNF, simplification, miniscoping.

The planner wants formulas in a shape where (a) negation sits as low as
possible, so conjunctions expose their negative conjuncts for antijoin
compilation, and (b) quantifiers sit as low as possible, so projections
happen early and intermediate relations stay narrow. The pipeline reuses
the semantics-preserving passes of :mod:`repro.logic.transform` and adds
*miniscoping* — the classical push-quantifiers-down rewrite that is the
syntactic half of every real planner's "project early" rule.
"""

from __future__ import annotations

from repro.errors import FormulaError
from repro.logic.analysis import free_variables
from repro.logic.syntax import (
    And,
    Atom,
    Bottom,
    Eq,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Top,
    Var,
)
from repro.logic.transform import simplify, standardize_apart, to_nnf

__all__ = ["normalize", "miniscope"]


def normalize(formula: Formula) -> Formula:
    """The engine's normal form: NNF, constant-folded, miniscoped.

    Arrows are eliminated and negation pushed to atoms (NNF), trivial
    subformulas are folded away, bound variables are standardized apart,
    and quantifiers are pushed below the connectives they commute with.
    The result is logically equivalent to the input (the equivalence
    suite checks this against the naive evaluator on random formulas).
    """
    prepared = simplify(to_nnf(formula))
    prepared = standardize_apart(prepared)
    return miniscope(prepared)


def miniscope(formula: Formula) -> Formula:
    """Push quantifiers inward as far as they commute.

    ``∃x (φ ∨ ψ)`` becomes ``∃x φ ∨ ∃x ψ``; ``∃x (φ ∧ ψ)`` with x not
    free in ψ becomes ``(∃x φ) ∧ ψ`` (dually for ∀). A quantifier over a
    body it does not occur in is dropped — sound because universes are
    non-empty. The input should be standardized apart (no shadowing), as
    :func:`normalize` guarantees.
    """
    if isinstance(formula, (Atom, Eq, Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(miniscope(formula.body))
    if isinstance(formula, And):
        return And(tuple(miniscope(child) for child in formula.children))
    if isinstance(formula, Or):
        return Or(tuple(miniscope(child) for child in formula.children))
    if isinstance(formula, (Exists, Forall)):
        return _push(type(formula), formula.var, miniscope(formula.body))
    raise FormulaError(f"unknown formula node {formula!r}")


def _push(kind: type, var: Var, body: Formula) -> Formula:
    if var not in free_variables(body):
        return body
    # ∃ distributes over ∨, ∀ over ∧; the dual connective only lets the
    # quantifier slide past children that do not mention the variable.
    distributes = Or if kind is Exists else And
    blocks = And if kind is Exists else Or
    if isinstance(body, distributes):
        return distributes(tuple(_push(kind, var, child) for child in body.children))
    if isinstance(body, blocks):
        inside = tuple(c for c in body.children if var in free_variables(c))
        outside = tuple(c for c in body.children if var not in free_variables(c))
        if outside:
            narrowed = inside[0] if len(inside) == 1 else blocks(inside)
            return blocks(outside + (_push(kind, var, narrowed),))
        if len(inside) == 1:
            return _push(kind, var, inside[0])
        return kind(var, body)
    return kind(var, body)
