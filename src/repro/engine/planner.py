"""The cost-based planner: normalized FO → costed algebra plans.

Compilation follows the classical FO = relational algebra translation
(:mod:`repro.eval.translate`), but instead of evaluating eagerly it
builds a :class:`~repro.engine.plan.Plan` tree, making three database-
style decisions along the way:

* **selection/projection push-down** — constant and repeated-variable
  selections are fused into :class:`AtomScan` leaves, and quantifier
  projections sit exactly where normalization miniscoped them;
* **greedy join reordering** — the conjuncts of ∧ are joined smallest-
  estimate-first, always preferring a join partner that shares an
  attribute over a cartesian product;
* **negation as antijoin** — a negative conjunct whose attributes are
  covered by the positive part compiles to an antijoin instead of a
  materialized domain complement.

Cardinality estimates use the textbook independence assumptions over
:class:`~repro.engine.stats.StructureStats`: |L ⋈ R| ≈ |L|·|R| / d^s for
s shared attributes over a domain of size d.
"""

from __future__ import annotations

from repro.errors import EvaluationError, FormulaError
from repro.engine.plan import (
    AntiJoin,
    AtomScan,
    Complement,
    ConstEq,
    ConstPair,
    Diagonal,
    DomainColumn,
    Extend,
    Join,
    NullaryTruth,
    Plan,
    Project,
    Union,
    join_attributes,
)
from repro.engine.stats import StructureStats
from repro.logic.syntax import (
    And,
    Atom,
    Bottom,
    Const,
    Eq,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Top,
    Var,
)

__all__ = ["Planner"]


class Planner:
    """Compile one normalized formula against one statistics snapshot."""

    def __init__(self, stats: StructureStats, domain_size: int) -> None:
        self.stats = stats
        self.domain_size = max(1, domain_size)

    # -- public entry --------------------------------------------------------

    def plan(self, formula: Formula, wanted: tuple[str, ...]) -> Plan:
        """Plan ``formula`` and shape the output to the ``wanted`` columns.

        ``wanted`` is the sorted free-variable list of the *original*
        (pre-normalization) formula; variables the normalizer proved
        vacuous are padded back with domain columns, matching the naive
        evaluator's convention.
        """
        root = self._plan(formula)
        missing = tuple(name for name in wanted if name not in root.attributes)
        if missing:
            root = self._extend(root, missing)
        if root.attributes != wanted:
            root = self._project(root, wanted)
        return root

    # -- node constructors (each computes its own estimate) ------------------

    def _domain_power(self, arity: int) -> float:
        return float(self.domain_size) ** arity

    def _extend(self, child: Plan, new_attributes: tuple[str, ...]) -> Plan:
        return Extend(
            attributes=child.attributes + new_attributes,
            estimated_rows=child.estimated_rows * self._domain_power(len(new_attributes)),
            child=child,
            new_attributes=new_attributes,
        )

    def _project(self, child: Plan, attributes: tuple[str, ...]) -> Plan:
        estimate = min(child.estimated_rows, self._domain_power(len(attributes)))
        return Project(attributes=attributes, estimated_rows=estimate, child=child)

    def _complement(self, child: Plan) -> Plan:
        estimate = max(self._domain_power(child.arity) - child.estimated_rows, 0.0)
        return Complement(
            attributes=child.attributes, estimated_rows=estimate, child=child
        )

    def _join(self, left: Plan, right: Plan) -> Plan:
        return Join(
            attributes=join_attributes(left.attributes, right.attributes),
            estimated_rows=self._join_estimate(left, right),
            left=left,
            right=right,
        )

    def _join_estimate(self, left: Plan, right: Plan) -> float:
        shared = sum(1 for a in left.attributes if a in right.attributes)
        return left.estimated_rows * right.estimated_rows / self._domain_power(shared)

    def _antijoin(self, left: Plan, right: Plan) -> Plan:
        # An antijoin can only shrink its left input; assume half survives.
        return AntiJoin(
            attributes=left.attributes,
            estimated_rows=left.estimated_rows / 2.0,
            left=left,
            right=right,
        )

    # -- recursive compilation ------------------------------------------------

    def _plan(self, formula: Formula) -> Plan:
        if isinstance(formula, Atom):
            return self._plan_atom(formula)
        if isinstance(formula, Eq):
            return self._plan_eq(formula)
        if isinstance(formula, Top):
            return NullaryTruth(attributes=(), estimated_rows=1.0, truth=True)
        if isinstance(formula, Bottom):
            return NullaryTruth(attributes=(), estimated_rows=0.0, truth=False)
        if isinstance(formula, Not):
            return self._complement(self._plan(formula.body))
        if isinstance(formula, And):
            return self._plan_and(formula)
        if isinstance(formula, Or):
            return self._plan_or(formula)
        if isinstance(formula, Exists):
            inner = self._plan(formula.body)
            name = formula.var.name
            if name not in inner.attributes:
                # ∃x φ with x not free in φ: φ itself (non-empty domain).
                return inner
            remaining = tuple(a for a in inner.attributes if a != name)
            return self._project(inner, remaining)
        if isinstance(formula, Forall):
            inner = self._plan(formula.body)
            name = formula.var.name
            if name not in inner.attributes:
                return inner
            # ∀x φ ≡ ¬∃x ¬φ.
            negated = self._complement(inner)
            remaining = tuple(a for a in negated.attributes if a != name)
            return self._complement(self._project(negated, remaining))
        raise FormulaError(f"arrows must be eliminated before planning: {formula!r}")

    def _plan_atom(self, formula: Atom) -> Plan:
        const_selects: list[tuple[int, str]] = []
        equalities: list[tuple[int, int]] = []
        projection: list[tuple[int, str]] = []
        seen: dict[str, int] = {}
        for position, term in enumerate(formula.terms):
            if isinstance(term, Const):
                const_selects.append((position, term.name))
            elif isinstance(term, Var):
                if term.name in seen:
                    equalities.append((seen[term.name], position))
                else:
                    seen[term.name] = position
                    projection.append((position, term.name))
        base = float(self.stats.cardinality(formula.relation))
        selectivity = self._domain_power(len(const_selects) + len(equalities))
        return AtomScan(
            attributes=tuple(name for _, name in projection),
            estimated_rows=base / selectivity,
            relation=formula.relation,
            const_selects=tuple(const_selects),
            equalities=tuple(equalities),
            projection=tuple(projection),
        )

    def _plan_eq(self, formula: Eq) -> Plan:
        left, right = formula.left, formula.right
        if isinstance(left, Const) and isinstance(right, Const):
            return ConstPair(
                attributes=(), estimated_rows=1.0, left=left.name, right=right.name
            )
        if isinstance(left, Const) or isinstance(right, Const):
            const = left if isinstance(left, Const) else right
            var = right if isinstance(left, Const) else left
            assert isinstance(var, Var) and isinstance(const, Const)
            return ConstEq(
                attributes=(var.name,), estimated_rows=1.0, constant=const.name
            )
        assert isinstance(left, Var) and isinstance(right, Var)
        if left == right:
            return DomainColumn(
                attributes=(left.name,), estimated_rows=float(self.domain_size)
            )
        attributes = tuple(sorted((left.name, right.name)))
        return Diagonal(attributes=attributes, estimated_rows=float(self.domain_size))

    def _plan_and(self, formula: And) -> Plan:
        positives: list[Plan] = []
        negatives: list[Plan] = []
        for child in formula.children:
            if isinstance(child, Not):
                negatives.append(self._plan(child.body))
            else:
                positives.append(self._plan(child))

        current = self._order_joins(positives)
        if current is None:
            current = NullaryTruth(attributes=(), estimated_rows=1.0, truth=True)

        # Place negative conjuncts: antijoin whenever the positive part
        # already covers the negated attributes, complement-join otherwise
        # (complement-joins widen ``current``, which can unlock antijoins
        # for the remaining negatives — hence the loop).
        remaining = sorted(negatives, key=lambda p: p.estimated_rows)
        while remaining:
            covered = [
                p for p in remaining if set(p.attributes) <= set(current.attributes)
            ]
            if covered:
                chosen = covered[0]
                current = self._antijoin(current, chosen)
            else:
                chosen = remaining[0]
                current = self._join(current, self._complement(chosen))
            remaining.remove(chosen)
        return current

    def _order_joins(self, parts: list[Plan]) -> Plan | None:
        """Greedy left-deep join ordering, cheapest first, sharing preferred."""
        if not parts:
            return None
        pending = list(parts)
        pending.sort(key=lambda p: p.estimated_rows)
        current = pending.pop(0)
        while pending:
            sharing = [
                p
                for p in pending
                if any(a in current.attributes for a in p.attributes)
            ]
            pool = sharing or pending
            chosen = min(pool, key=lambda p: self._join_estimate(current, p))
            pending.remove(chosen)
            current = self._join(current, chosen)
        return current

    def _plan_or(self, formula: Or) -> Plan:
        parts = [self._plan(child) for child in formula.children]
        if not parts:
            return NullaryTruth(attributes=(), estimated_rows=0.0, truth=False)
        target = tuple(sorted({a for part in parts for a in part.attributes}))
        aligned: list[Plan] = []
        for part in parts:
            missing = tuple(a for a in target if a not in part.attributes)
            if missing:
                part = self._extend(part, missing)
            if part.attributes != target:
                part = self._project(part, target)
            aligned.append(part)
        if len(aligned) == 1:
            return aligned[0]
        return Union(
            attributes=target,
            estimated_rows=sum(part.estimated_rows for part in aligned),
            parts=tuple(aligned),
        )
