"""A small LRU cache used for plans and answers.

Both engine caches are bounded LRU maps with hit/miss counters; the
answer cache additionally supports per-structure invalidation (structures
are immutable, so this only matters when callers want to bound memory or
drop results for structures they no longer hold).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Hashable
from typing import Any

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """Bounded least-recently-used mapping with hit/miss counters."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict[Hashable, Any] = OrderedDict()

    def get(self, key: Hashable, default: Any = None) -> Any:
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        value = self._data.get(key, _MISSING)
        if value is not _MISSING:
            self.hits += 1
            self._data.move_to_end(key)
            return value
        self.misses += 1
        value = compute()
        self.put(key, value)
        return value

    def evict_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``; return count."""
        doomed = [key for key in self._data if predicate(key)]
        for key in doomed:
            del self._data[key]
        return len(doomed)

    def clear(self) -> None:
        self._data.clear()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return (
            f"LRUCache({len(self._data)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
