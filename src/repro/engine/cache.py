"""A small LRU cache used for plans and answers.

Both engine caches are bounded LRU maps with hit/miss/eviction counters;
the answer cache additionally supports per-structure invalidation.
Since structures became mutable (``Structure.insert``/``delete``), a key
stored before an update may *hash differently* afterwards — its content
hash moved with the structure it embeds.  Such entries are inert (no
probe with the old bucket's hash can compare equal to the new content),
but they can no longer be deleted by key, so :meth:`evict_where` and
eviction generally must never assume ``del d[key]`` works for a key
listed by iteration; see :meth:`evict_where`.

The cache is **thread-safe**: under ``REPRO_PARALLEL_BACKEND=thread``
the engine's caches are hit by pool workers concurrently, and an
unguarded ``OrderedDict`` corrupts under concurrent ``move_to_end`` /
``popitem`` (and double-counts hit/miss stats). Every mutating path —
including the counter updates — runs under one internal lock, and
:meth:`snapshot` takes the same lock so its counters and occupancy are a
consistent cut. :meth:`get_or_compute` runs ``compute`` *outside* the
lock (a slow compute must not serialize unrelated lookups, and a
re-entrant compute — the engine's census fallback calls back into the
answer cache — must not deadlock); two threads racing the same missing
key may therefore both compute it, and the last ``put`` wins, which is
harmless for the engine's pure, deterministic values.

Named caches double as telemetry sources: when the telemetry layer is
enabled, every lookup and eviction also updates
``cache.<name>.{hits,misses,evictions}`` counters and a
``cache.<name>.size`` gauge in the default metrics registry, so cache
behaviour shows up in benchmark snapshots without reaching into engine
internals.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Hashable
from typing import Any

from repro.telemetry.metrics import counter as _counter
from repro.telemetry.metrics import gauge as _gauge
from repro.telemetry.tracer import is_enabled as _telemetry_enabled

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """Bounded least-recently-used mapping with hit/miss/eviction counters."""

    def __init__(self, capacity: int, name: str | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.RLock()

    def _record(self, event: str, amount: int = 1) -> None:
        if amount and self.name is not None and _telemetry_enabled():
            _counter(f"cache.{self.name}.{event}").inc(amount)
            _gauge(f"cache.{self.name}.size").set(len(self._data))

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                self._record("misses")
                return default
            self.hits += 1
            self._record("hits")
            self._data.move_to_end(key)
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            evicted = 0
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                evicted += 1
            self.evictions += evicted
            self._record("evictions", evicted)

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is not _MISSING:
                self.hits += 1
                self._record("hits")
                self._data.move_to_end(key)
                return value
            self.misses += 1
            self._record("misses")
        # Compute outside the lock: a slow (or re-entrant) compute must
        # not block other threads' lookups. Racing threads may duplicate
        # the work; the last put wins.
        value = compute()
        self.put(key, value)
        return value

    def evict_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``; return count.

        Rebuilds the survivor map instead of deleting doomed keys one by
        one: a key whose hash changed since insertion (a mutated
        structure embedded in an answer-cache key) cannot be looked up —
        ``del`` would raise or, worse, silently miss — but iteration
        still reaches it, so rebuild-and-swap removes it reliably.
        """
        with self._lock:
            survivors = OrderedDict()
            doomed = 0
            for key, value in self._data.items():
                if predicate(key):
                    doomed += 1
                else:
                    survivors[key] = value
            self._data = survivors
            self.evictions += doomed
            self._record("evictions", doomed)
            return doomed

    def clear(self) -> None:
        with self._lock:
            dropped = len(self._data)
            self._data.clear()
            self.evictions += dropped
            self._record("evictions", dropped)

    def snapshot(self) -> dict[str, Any]:
        """Counters and occupancy as a consistent, JSON-serializable dict."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "name": self.name,
                "capacity": self.capacity,
                "size": len(self._data),
                "hits": self.hits,
                "misses": self.misses,
                "lookups": lookups,
                "evictions": self.evictions,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"LRUCache({f'{self.name!r}, ' if self.name else ''}"
                f"{len(self._data)}/{self.capacity}, "
                f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
            )
