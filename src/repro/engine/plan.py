"""Relational-algebra plan trees produced by the planner.

A plan is an immutable operator tree whose leaves scan base relations (or
synthesize equality/constant relations) and whose inner nodes are the
algebra operators of :mod:`repro.eval.algebra`. Every node carries the
attribute list of its output and the planner's cardinality estimate, so
``explain`` can render the full costed tree. Plans are structure-agnostic
— constants are stored by name and resolved at execution time — which is
what makes them cacheable across structures with the same statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Plan",
    "AtomScan",
    "NullaryTruth",
    "DomainColumn",
    "Diagonal",
    "ConstEq",
    "ConstPair",
    "Join",
    "AntiJoin",
    "Project",
    "Complement",
    "Extend",
    "Union",
    "join_attributes",
    "explain_plan",
]


def join_attributes(left: tuple[str, ...], right: tuple[str, ...]) -> tuple[str, ...]:
    """Output attribute order of a natural join (matches ``Relation.join``)."""
    return left + tuple(a for a in right if a not in left)


@dataclass(frozen=True)
class Plan:
    """Base class: every node knows its output attributes and row estimate."""

    attributes: tuple[str, ...]
    estimated_rows: float

    def children(self) -> tuple["Plan", ...]:
        return ()

    def label(self) -> str:
        return type(self).__name__

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def total_estimated_rows(self) -> float:
        """Sum of row estimates over the whole subtree (the plan's cost)."""
        return self.estimated_rows + sum(
            child.total_estimated_rows() for child in self.children()
        )


@dataclass(frozen=True)
class AtomScan(Plan):
    """Scan a base relation with selections pushed into the scan.

    ``const_selects`` pins positions to named constants, ``equalities``
    pins pairs of positions to each other (repeated variables), and
    ``projection`` maps the surviving positions to variable-named output
    attributes — i.e. σ and π are fused into the leaf.
    """

    relation: str = ""
    const_selects: tuple[tuple[int, str], ...] = ()
    equalities: tuple[tuple[int, int], ...] = ()
    projection: tuple[tuple[int, str], ...] = ()

    def label(self) -> str:
        parts = [self.relation]
        for position, name in self.const_selects:
            parts.append(f"#{position}=!{name}")
        for first, second in self.equalities:
            parts.append(f"#{first}=#{second}")
        return f"Scan[{' '.join(parts)}]"


@dataclass(frozen=True)
class NullaryTruth(Plan):
    """The 0-ary relation: {()} for true, {} for false."""

    truth: bool = True

    def label(self) -> str:
        return f"Nullary[{self.truth}]"


@dataclass(frozen=True)
class DomainColumn(Plan):
    """One column holding every element of the quantification domain."""

    def label(self) -> str:
        return f"Domain[{self.attributes[0]}]"


@dataclass(frozen=True)
class Diagonal(Plan):
    """The equality relation {(d, d) : d ∈ domain} over two attributes."""

    def label(self) -> str:
        return f"Diagonal[{self.attributes[0]} = {self.attributes[1]}]"


@dataclass(frozen=True)
class ConstEq(Plan):
    """The singleton {(c,)} for a variable pinned to a named constant."""

    constant: str = ""

    def label(self) -> str:
        return f"ConstEq[{self.attributes[0]} = !{self.constant}]"


@dataclass(frozen=True)
class ConstPair(Plan):
    """0-ary truth of ``c = d`` for two named constants (resolved at run time)."""

    left: str = ""
    right: str = ""

    def label(self) -> str:
        return f"ConstPair[!{self.left} = !{self.right}]"


@dataclass(frozen=True)
class Join(Plan):
    """Hash natural join (with semijoin pre-filtering in the executor)."""

    left: Plan = field(default=None)  # type: ignore[assignment]
    right: Plan = field(default=None)  # type: ignore[assignment]

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        shared = [a for a in self.left.attributes if a in self.right.attributes]
        return f"Join[{', '.join(shared) or '×'}]"


@dataclass(frozen=True)
class AntiJoin(Plan):
    """▷: rows of the left with no matching right row (safe negation)."""

    left: Plan = field(default=None)  # type: ignore[assignment]
    right: Plan = field(default=None)  # type: ignore[assignment]

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        shared = [a for a in self.left.attributes if a in self.right.attributes]
        return f"AntiJoin[{', '.join(shared)}]"


@dataclass(frozen=True)
class Project(Plan):
    """π onto (and reordering to) the node's attribute list."""

    child: Plan = field(default=None)  # type: ignore[assignment]

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Project[{', '.join(self.attributes) or '()'}]"


@dataclass(frozen=True)
class Complement(Plan):
    """domain^arity minus the child — negation as active/universe complement."""

    child: Plan = field(default=None)  # type: ignore[assignment]

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Complement[{', '.join(self.attributes) or '()'}]"


@dataclass(frozen=True)
class Extend(Plan):
    """Pad with new columns ranging over the domain (vacuous variables)."""

    child: Plan = field(default=None)  # type: ignore[assignment]
    new_attributes: tuple[str, ...] = ()

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Extend[+{', '.join(self.new_attributes)}]"


@dataclass(frozen=True)
class Union(Plan):
    """∪ of children over identical attribute lists (disjunction)."""

    parts: tuple[Plan, ...] = ()

    def children(self) -> tuple[Plan, ...]:
        return self.parts

    def label(self) -> str:
        return f"Union[{len(self.parts)}]"


def explain_plan(plan: Plan, indent: int = 0, actuals: dict | None = None) -> str:
    """Render a plan as an indented tree with cost annotations.

    ``actuals`` is an optional EXPLAIN ANALYZE overlay: a mapping from
    ``id(node)`` to an object with ``rows`` and ``milliseconds``
    attributes (the executor's :class:`~repro.engine.executor.NodeActuals`).
    Nodes present in the mapping render ``actual=... rows in ...ms``
    next to the planner's estimate; durations are inclusive of children.
    """
    pad = "  " * indent
    line = (
        f"{pad}{plan.label()}  "
        f"attrs=({', '.join(plan.attributes)})  est={plan.estimated_rows:.1f}"
    )
    if actuals is not None:
        recorded = actuals.get(id(plan))
        if recorded is not None:
            line += f"  actual={recorded.rows} rows in {recorded.milliseconds:.3f}ms"
    lines = [line]
    for child in plan.children():
        lines.append(explain_plan(child, indent + 1, actuals))
    return "\n".join(lines)
