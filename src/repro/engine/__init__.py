"""The query engine (S3+): planned, cached, locality-aware FO evaluation.

``repro.engine`` is the production path for answering FO queries —
normalize → statistics → cost-based plan → hash-join execution — with an
LRU plan cache, a per-structure answer cache, and a bounded-degree fast
path that realizes Theorem 3.11 inside the engine. The naive evaluator
(:mod:`repro.eval.evaluator`) remains as the reference oracle; the
Hypothesis equivalence suite keeps the two in lockstep.

>>> from repro.engine import Engine
>>> from repro.logic.parser import parse
>>> from repro.structures.builders import directed_cycle
>>> Engine().evaluate(directed_cycle(5), parse("forall x exists y E(x, y)"))
True
"""

from repro.engine.cache import LRUCache
from repro.engine.columnar import ColumnarExecutor
from repro.engine.engine import Engine, EngineStats, Explanation, ProfiledExplanation
from repro.engine.executor import ExecutionStats, Executor, NodeActuals
from repro.engine.normalize import miniscope, normalize
from repro.engine.plan import Plan, explain_plan
from repro.engine.planner import Planner
from repro.engine.stats import StructureStats, collect_stats

__all__ = [
    "ColumnarExecutor",
    "Engine",
    "EngineStats",
    "Explanation",
    "Executor",
    "ExecutionStats",
    "LRUCache",
    "NodeActuals",
    "Plan",
    "Planner",
    "ProfiledExplanation",
    "StructureStats",
    "collect_stats",
    "default_engine",
    "engine_answers",
    "engine_evaluate",
    "explain_plan",
    "miniscope",
    "normalize",
]

_default: Engine | None = None


def default_engine() -> Engine:
    """The process-wide shared engine (lazily constructed).

    Library call sites (e.g. :mod:`repro.queries.zoo`) evaluate through
    this instance so plan and answer caches are shared across the whole
    process.
    """
    global _default
    if _default is None:
        _default = Engine()
    return _default


def engine_answers(structure, formula, free_order=None):
    """``default_engine().answers(...)`` — drop-in for the naive ``answers``."""
    return default_engine().answers(structure, formula, free_order)


def engine_evaluate(structure, formula, assignment=None):
    """``default_engine().evaluate(...)`` — drop-in for the naive ``evaluate``."""
    return default_engine().evaluate(structure, formula, assignment)
