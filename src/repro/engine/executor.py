"""The plan executor: costed plans → :class:`Relation` values.

Joins are hash-based (via :meth:`Relation.join`) with a semijoin
pre-filter: when both inputs are large and share attributes, the bigger
side is first reduced to the rows that can possibly match — the
classical distributed-database trick, which here keeps the hash table
and the output of skewed joins small. Negative conjuncts execute as hash
antijoins, so safe negation never materializes a domain complement.

Observability: with telemetry enabled, every plan-node execution feeds
per-operator row counters and duration histograms
(``executor.rows.<Op>`` / ``executor.ms.<Op>``) into the default metrics
registry. Independently, passing a ``recorder`` dict gives EXPLAIN
ANALYZE semantics: the executor stores a :class:`NodeActuals` (output
rows, inclusive seconds) per plan node, keyed by ``id(node)``, which
:meth:`repro.engine.engine.Engine.profile` renders next to the planner's
estimates. With neither in play, node execution is dispatched directly
with no timing calls at all.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import MutableMapping

from repro.errors import EvaluationError
from repro.resilience.budget import CancelToken
from repro.engine.plan import (
    AntiJoin,
    AtomScan,
    Complement,
    ConstEq,
    ConstPair,
    Diagonal,
    DomainColumn,
    Extend,
    Join,
    NullaryTruth,
    Plan,
    Project,
    Union,
)
from repro.eval.algebra import Relation
from repro.structures.structure import Element, Structure
from repro.telemetry.metrics import counter as _counter
from repro.telemetry.metrics import histogram as _histogram
from repro.telemetry.tracer import is_enabled as _telemetry_enabled

__all__ = ["Executor", "ExecutionStats", "NodeActuals"]

#: Minimum input size before a join bothers with a semijoin pre-filter.
SEMIJOIN_THRESHOLD = 64


@dataclass
class ExecutionStats:
    """Row counters for one (or several) plan executions."""

    rows_materialized: int = 0
    joins: int = 0
    semijoin_filters: int = 0
    antijoins: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "rows_materialized": self.rows_materialized,
            "joins": self.joins,
            "semijoin_filters": self.semijoin_filters,
            "antijoins": self.antijoins,
        }

    def _observe(self, relation: Relation) -> Relation:
        self.rows_materialized += len(relation)
        return relation


@dataclass(frozen=True)
class NodeActuals:
    """What one plan node actually did: output rows and inclusive seconds.

    ``seconds`` covers the node *and* its children (EXPLAIN ANALYZE's
    convention for tree rendering); subtract child times for exclusive
    cost.
    """

    rows: int
    seconds: float

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1000.0


class Executor:
    """Execute plans against one structure and quantification domain."""

    def __init__(
        self,
        structure: Structure,
        domain: tuple[Element, ...],
        stats: ExecutionStats | None = None,
        recorder: MutableMapping[int, NodeActuals] | None = None,
        semijoin_filtering: bool = True,
        cancel_token: CancelToken | None = None,
    ) -> None:
        self.structure = structure
        self.domain = domain
        self._domain_set = frozenset(domain)
        self.stats = stats if stats is not None else ExecutionStats()
        self.recorder = recorder
        # The engine turns the pre-filter off for trivially small plans,
        # where building the extra hash sets costs more than it saves.
        self.semijoin_filtering = semijoin_filtering
        # Budget enforcement: checked once per operator batch (every plan
        # node), with materialized rows charged against the row budget —
        # a join that blows up trips the budget at the operator that
        # produced it, not after the fact.
        self.cancel_token = cancel_token

    def run(self, plan: Plan) -> Relation:
        relation = self._run(plan)
        if relation.attributes != plan.attributes:  # pragma: no cover - invariant
            raise EvaluationError(
                f"executor produced {relation.attributes}, plan promised {plan.attributes}"
            )
        return relation

    def _run(self, plan: Plan) -> Relation:
        token = self.cancel_token
        recorder = self.recorder
        if recorder is None and not _telemetry_enabled():
            relation = self._execute(plan)
            if token is not None:
                token.consume_rows(len(relation), plan.__class__.__name__)
            return relation
        start = time.perf_counter()
        relation = self._execute(plan)
        elapsed = time.perf_counter() - start
        if token is not None:
            token.consume_rows(len(relation), plan.__class__.__name__)
        if _telemetry_enabled():
            kind = plan.__class__.__name__
            _counter(f"executor.ops.{kind}").inc()
            _counter(f"executor.rows.{kind}").inc(len(relation))
            _histogram(f"executor.ms.{kind}").observe(elapsed * 1000.0)
        if recorder is not None:
            recorder[id(plan)] = NodeActuals(rows=len(relation), seconds=elapsed)
        return relation

    def _execute(self, plan: Plan) -> Relation:
        observe = self.stats._observe
        if isinstance(plan, AtomScan):
            return observe(self._scan(plan))
        if isinstance(plan, NullaryTruth):
            return observe(Relation.nullary(plan.truth))
        if isinstance(plan, DomainColumn):
            return observe(
                Relation(plan.attributes, frozenset((d,) for d in self.domain))
            )
        if isinstance(plan, Diagonal):
            return observe(
                Relation(plan.attributes, frozenset((d, d) for d in self.domain))
            )
        if isinstance(plan, ConstEq):
            value = self.structure.constant(plan.constant)
            rows = frozenset({(value,)} if value in self._domain_set else set())
            return observe(Relation(plan.attributes, rows))
        if isinstance(plan, ConstPair):
            left = self.structure.constant(plan.left)
            right = self.structure.constant(plan.right)
            return observe(Relation.nullary(left == right))
        if isinstance(plan, Join):
            return observe(self._join(plan))
        if isinstance(plan, AntiJoin):
            self.stats.antijoins += 1
            left = self._run(plan.left)
            right = self._run(plan.right)
            return observe(left.antijoin(right))
        if isinstance(plan, Project):
            return observe(self._run(plan.child).project(plan.attributes))
        if isinstance(plan, Complement):
            return observe(self._run(plan.child).complement(self.domain))
        if isinstance(plan, Extend):
            return observe(
                self._run(plan.child).extend_columns(plan.new_attributes, self.domain)
            )
        if isinstance(plan, Union):
            # One result set filled from every part — pairwise
            # Relation.union would re-hash the accumulated rows once per
            # part (quadratic for wide unions).
            rows: set[tuple] = set()
            for part in plan.parts:
                relation = self._run(part)
                if relation.attributes != plan.attributes:
                    raise EvaluationError(
                        f"union part produced {relation.attributes}, "
                        f"expected {plan.attributes}"
                    )
                rows.update(relation.rows)
            return observe(Relation._make(plan.attributes, frozenset(rows)))
        raise EvaluationError(f"unknown plan node {plan!r}")

    def _scan(self, plan: AtomScan) -> Relation:
        rows = self.structure.tuples(plan.relation)
        if plan.const_selects:
            pins = [
                (position, self.structure.constant(name))
                for position, name in plan.const_selects
            ]
            rows = {r for r in rows if all(r[i] == v for i, v in pins)}
        if plan.equalities:
            rows = {
                r for r in rows if all(r[i] == r[j] for i, j in plan.equalities)
            }
        indices = [position for position, _ in plan.projection]
        return Relation(
            plan.attributes, frozenset(tuple(r[i] for i in indices) for r in rows)
        )

    def _join(self, plan: Join) -> Relation:
        self.stats.joins += 1
        left = self._run(plan.left)
        right = self._run(plan.right)
        shared = [a for a in left.attributes if a in right.attributes]
        if (
            shared
            and self.semijoin_filtering
            and len(left) > SEMIJOIN_THRESHOLD
            and len(right) > SEMIJOIN_THRESHOLD
        ):
            # Reduce the bigger side to the rows that can find a partner
            # before building the join output.
            self.stats.semijoin_filters += 1
            before = max(len(left), len(right))
            if len(left) >= len(right):
                left = left.semijoin(right)
                after = len(left)
            else:
                right = right.semijoin(left)
                after = len(right)
            if _telemetry_enabled():
                _counter("executor.semijoin.filters").inc()
                _counter("executor.semijoin.rows_filtered").inc(before - after)
        joined = left.join(right)
        if joined.attributes != plan.attributes:
            joined = joined.project(plan.attributes)
        return joined
