"""The engine facade: normalize → stats → plan → execute, with caches.

:class:`Engine` is the default, set-at-a-time way to answer FO queries.
Per call it (1) collects catalog statistics for the structure (memoized),
(2) looks up or builds a costed relational-algebra plan (LRU plan cache,
keyed by formula × signature × statistics profile), (3) executes the plan
with hash joins, semijoin filtering, and antijoin negation, and (4)
memoizes the answer per (structure, formula) in an LRU answer cache.

For *sentences* over low-degree structures the engine additionally owns a
locality fast path: it dispatches to
:class:`repro.locality.bounded_degree.BoundedDegreeEvaluator`, realizing
Theorem 3.11 (linear-time FO evaluation on bounded-degree classes) as a
production code path rather than a standalone demo. Table misses inside
the fast path fall back to the engine's own algebra pipeline, never to
the naive O(n^k) evaluator.

Default semantics is ``domain="universe"``, which agrees with the naive
evaluator on *every* formula (the Hypothesis equivalence suite asserts
this); ``domain="active"`` gives database-style active-domain semantics.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import EvaluationError, LocalityError
from repro.resilience.budget import Budget, CancelToken, as_token
from repro.resilience.faults import fault_point
from repro.engine.cache import LRUCache
from repro.engine.columnar.executor import ColumnarExecutor
from repro.engine.executor import ExecutionStats, Executor, NodeActuals
from repro.engine.normalize import normalize
from repro.engine.plan import Plan, explain_plan
from repro.engine.planner import Planner
from repro.engine.stats import StructureStats, collect_stats
from repro.eval.algebra import Relation
from repro.incremental.answers import AnswerIndex
from repro.incremental.enumeration import AnswerStream, plan_enumeration
from repro.eval.evaluator import answers as naive_answers
from repro.locality.bounded_degree import BoundedDegreeEvaluator
from repro.locality.hanf import hanf_locality_radius
from repro.locality.neighborhoods import max_ball_size
from repro.logic.analysis import free_variables, quantifier_rank, validate
from repro.logic.syntax import Formula, Var
from repro.structures.structure import Element, Structure
from repro.telemetry.metrics import counter as _counter
from repro.telemetry.tracer import is_enabled as _telemetry_enabled
from repro.telemetry.tracer import span as _span

__all__ = ["Engine", "EngineStats", "Explanation", "ProfiledExplanation"]


@dataclass
class EngineStats:
    """Counters across one engine's lifetime."""

    plans_built: int = 0
    executions: int = 0
    fast_path_dispatches: int = 0
    answers_patched: int = 0
    enumerations: int = 0
    execution: ExecutionStats = field(default_factory=ExecutionStats)

    def as_dict(self) -> dict[str, Any]:
        """A JSON-serializable snapshot (for benchmarks and dashboards)."""
        return {
            "plans_built": self.plans_built,
            "executions": self.executions,
            "fast_path_dispatches": self.fast_path_dispatches,
            "answers_patched": self.answers_patched,
            "enumerations": self.enumerations,
            "execution": self.execution.as_dict(),
        }


@dataclass(frozen=True)
class Explanation:
    """What the engine would do for one (structure, formula) pair."""

    formula: Formula
    normalized: Formula
    plan: Plan
    statistics: StructureStats
    fast_path: bool
    fast_path_reason: str

    def __str__(self) -> str:
        dispatch = "dispatched" if self.fast_path else "not dispatched"
        return "\n".join(
            [
                f"query: {self.formula!r}",
                f"normalized: {self.normalized!r}",
                f"stats: {self.statistics!r}",
                f"bounded-degree fast path: {dispatch} ({self.fast_path_reason})",
                f"estimated plan cost: {self.plan.total_estimated_rows():.1f} rows",
                explain_plan(self.plan),
            ]
        )


@dataclass(frozen=True, eq=False)
class ProfiledExplanation(Explanation):
    """EXPLAIN ANALYZE: an :class:`Explanation` plus measured actuals.

    ``actuals`` maps ``id(plan node)`` to the executor's
    :class:`~repro.engine.executor.NodeActuals` (output rows, inclusive
    seconds); ``answers`` is the executed result — identical to what
    :meth:`Engine.answers` returns for the same call; ``seconds`` is the
    end-to-end execution wall clock.
    """

    actuals: dict[int, NodeActuals] = field(default_factory=dict)
    answers: frozenset[tuple[Element, ...]] = frozenset()
    seconds: float = 0.0

    def node_actuals(self, node: Plan) -> NodeActuals | None:
        """Measured rows/duration for one node of :attr:`plan`, if recorded."""
        return self.actuals.get(id(node))

    def to_dict(self) -> dict:
        """A JSON-ready EXPLAIN ANALYZE: the plan tree with the
        planner's estimates next to the executor's measured actuals per
        node — what the server's wire-level ``explain`` option ships."""

        def node_dict(node: Plan) -> dict:
            measured = self.actuals.get(id(node))
            return {
                "op": node.label(),
                "attributes": list(node.attributes),
                "estimated_rows": node.estimated_rows,
                "actual_rows": measured.rows if measured is not None else None,
                "actual_ms": measured.milliseconds if measured is not None else None,
                "children": [node_dict(child) for child in node.children()],
            }

        return {
            "formula": str(self.formula),
            "normalized": str(self.normalized),
            "fast_path": self.fast_path,
            "fast_path_reason": self.fast_path_reason,
            "estimated_total_rows": self.plan.total_estimated_rows(),
            "rows": len(self.answers),
            "seconds": self.seconds,
            "plan": node_dict(self.plan),
        }

    def __str__(self) -> str:
        dispatch = "dispatched" if self.fast_path else "not dispatched"
        return "\n".join(
            [
                f"query: {self.formula!r}",
                f"normalized: {self.normalized!r}",
                f"stats: {self.statistics!r}",
                f"bounded-degree fast path: {dispatch} ({self.fast_path_reason})",
                f"estimated plan cost: {self.plan.total_estimated_rows():.1f} rows",
                f"actual: {len(self.answers)} answer rows in {self.seconds * 1000.0:.3f}ms",
                explain_plan(self.plan, actuals=self.actuals),
            ]
        )


class Engine:
    """A planned, cached, locality-aware FO query engine.

    Parameters
    ----------
    domain:
        Quantification domain for negation/quantifiers: ``"universe"``
        (default; agrees with the naive evaluator everywhere) or
        ``"active"`` (active-domain semantics).
    plan_cache_size / answer_cache_size:
        LRU capacities for the two caches.
    degree_threshold:
        Maximal Gaifman degree for the bounded-degree fast path.
    fast_path_ball_limit:
        The fast path only engages when the worst-case Hanf-radius ball
        (``max_ball_size(degree, (3^qr − 1)/2)``) stays below this bound,
        keeping the linear-time census genuinely cheap.
    fast_path_threshold:
        Census-count truncation m for the fast path (Theorem 3.10).
        ``None`` (default) keeps exact censuses, which is unconditionally
        sound; a finite m lets structures of different sizes share table
        entries (e.g. all large cycles), trading the formal guarantee for
        the empirically validated cross-size reuse.
    enable_fast_path:
        Master switch for the Theorem 3.11 dispatch.
    small_plan_rows:
        Plans whose total estimated row count stays at or under this
        bound execute with the semijoin pre-filter switched off — for
        trivially small plans the filter's extra hash sets cost more
        than they save. Set to 0 to always filter.
    executor:
        Which executor tier runs plans: ``"tuple"`` (the reference
        row-at-a-time executor), ``"columnar"`` (compiled integer-key
        kernel pipelines, :mod:`repro.engine.columnar`), or ``"auto"``
        (cost-based dispatch, the default). ``None`` defers to the
        ``REPRO_EXECUTOR`` environment variable, falling back to
        ``"auto"``. :meth:`profile` always runs the tuple executor —
        per-node EXPLAIN ANALYZE actuals are defined on the fully
        materialized pipeline, which fusion deliberately destroys.
    tiny_plan_rows / columnar_min_rows:
        The ``"auto"`` dispatch bands, by total estimated rows: at most
        ``tiny_plan_rows`` → columnar (its cached compiled pipeline is
        the cheapest path for trivially small plans, where the tuple
        executor's per-node setup dominates); at least
        ``columnar_min_rows`` → columnar (integer kernels win on bulk);
        in between → the tuple executor (both are fast; the reference
        path keeps its production mileage).
    max_workers:
        Default worker count for the batch APIs (:meth:`answers_batch`,
        :meth:`evaluate_batch`, :meth:`evaluate_many`). ``None`` defers
        to ``REPRO_PARALLEL``; single calls are always serial.
    """

    def __init__(
        self,
        domain: str = "universe",
        plan_cache_size: int = 256,
        answer_cache_size: int = 1024,
        degree_threshold: int = 3,
        fast_path_ball_limit: int = 64,
        fast_path_threshold: int | None = None,
        enable_fast_path: bool = True,
        small_plan_rows: int = 2048,
        executor: str | None = None,
        tiny_plan_rows: int = 64,
        columnar_min_rows: int = 512,
        max_workers: int | None = None,
    ) -> None:
        if domain not in ("universe", "active"):
            raise EvaluationError(f"domain must be 'universe' or 'active', got {domain!r}")
        if executor is None:
            executor = os.environ.get("REPRO_EXECUTOR", "auto") or "auto"
        if executor not in ("auto", "tuple", "columnar"):
            raise EvaluationError(
                f"executor must be 'auto', 'tuple', or 'columnar', got {executor!r}"
            )
        self.domain_mode = domain
        self.executor_mode = executor
        self.tiny_plan_rows = tiny_plan_rows
        self.columnar_min_rows = columnar_min_rows
        self.degree_threshold = degree_threshold
        self.fast_path_ball_limit = fast_path_ball_limit
        self.fast_path_threshold = fast_path_threshold
        self.enable_fast_path = enable_fast_path
        self.small_plan_rows = small_plan_rows
        self.max_workers = max_workers
        self.plan_cache = LRUCache(plan_cache_size, name="plan")
        self.answer_cache = LRUCache(answer_cache_size, name="answer")
        self._bounded_degree = LRUCache(64, name="bounded_degree")
        self._answer_index = AnswerIndex()
        self.stats = EngineStats()

    # -- public API ----------------------------------------------------------

    def answers(
        self,
        structure: Structure,
        formula: Formula,
        free_order: tuple[Var, ...] | None = None,
        *,
        budget: "Budget | CancelToken | None" = None,
    ) -> frozenset[tuple[Element, ...]]:
        """ans(φ(x̄), A) through the planner — same contract as the naive
        :func:`repro.eval.evaluator.answers`.

        ``budget`` (a :class:`~repro.resilience.budget.Budget`, an already
        started :class:`~repro.resilience.budget.CancelToken`, or ``None``)
        bounds execution: the executor checks the deadline per operator
        batch and charges materialized rows against the row budget,
        raising :class:`~repro.errors.BudgetExceededError` instead of
        running long. Exhausted runs cache nothing; answer-cache hits
        return without consuming budget.

        For quantifier-free formulas — and, since ISSUE 10, quantified
        formulas in the local-existential and Hanf-gated fragments —
        under universe semantics the engine additionally *maintains*
        answers across structure updates: a content-cache miss caused by
        ``Structure.insert``/``delete`` first tries to patch the answer
        set recorded at an earlier epoch
        (:mod:`repro.incremental.answers`) before recomputing.
        """
        token = as_token(budget)
        free = free_variables(formula)
        sorted_names = tuple(sorted(var.name for var in free))
        if free_order is None:
            order_names = sorted_names
        else:
            order_names = tuple(var.name for var in free_order)
            missing = {var.name for var in free} - set(order_names)
            if missing:
                raise EvaluationError(f"free_order omits free variables {sorted(missing)}")
            if len(set(order_names)) != len(order_names):
                # Duplicated answer columns have bespoke naive semantics;
                # defer to the reference implementation for this corner.
                return naive_answers(structure, formula, free_order, cancel_token=token)

        key = (structure, formula, self.domain_mode, order_names)
        maintain = self.domain_mode == "universe" and order_names == sorted_names
        cached = self.answer_cache.get(key)
        if cached is not None:
            if maintain:
                # The hit certifies the rows match the *current* content,
                # so re-stamp the maintenance record at the current epoch.
                self._answer_index.remember(structure, formula, order_names, cached)
            return cached
        if maintain:
            patched = self._answer_index.patch(
                structure, formula, order_names, cancel_token=token
            )
            if patched is not None:
                self.stats.answers_patched += 1
                self.answer_cache.put(key, patched)
                return patched
        rows = self._compute_answers(structure, formula, sorted_names, order_names, token)
        self.answer_cache.put(key, rows)
        if maintain:
            self._answer_index.remember(structure, formula, order_names, rows)
        return rows

    def maintained_changed(
        self,
        structure: Structure,
        formula: Formula,
        *,
        budget: "Budget | CancelToken | None" = None,
    ) -> bool | None:
        """Did φ's maintained answer set change across pending deltas?

        ``True``/``False`` when a maintenance record for (structure uid,
        φ) could be patched to the current epoch and compared; ``None``
        when the engine cannot cheaply decide (no record, non-universe
        semantics, delta log outrun, or the patch work limits tripped) —
        callers that must not miss a change treat ``None`` as "assume
        changed".  The patched rows stay in the maintenance record, so a
        follow-up :meth:`answers` call reuses the work.  This is what
        the server's updates endpoint uses to report dirtied prepared
        queries without re-running them.
        """
        if self.domain_mode != "universe":
            return None
        token = as_token(budget)
        order_names = tuple(sorted(var.name for var in free_variables(formula)))
        return self._answer_index.changed(
            structure, formula, order_names, cancel_token=token
        )

    def enumerate(
        self,
        structure: Structure,
        formula: Formula,
        *,
        budget: "Budget | CancelToken | None" = None,
    ) -> AnswerStream:
        """ans(φ, A) as a lazy stream with measured per-answer delay.

        Same answer set as :meth:`answers` (columns in sorted-variable
        order), but produced one tuple at a time after a preprocessing
        phase — the Kazana–Segoufin contract (arXiv:1105.3583).  Single
        atoms stream straight off the relation; single-free-variable
        queries on bounded-degree, constant-free structures enumerate by
        neighborhood type (one evaluation per Gaifman class, O(1) delay);
        everything else falls back to materializing through the planned
        pipeline.  The returned :class:`~repro.incremental.enumeration.AnswerStream`
        exposes ``mode``, ``preprocessing_seconds``, and ``delays``.

        ``budget`` charges one row per *yielded* answer (plus deadline
        ticks during preprocessing), so consuming k answers costs k rows
        even when the full answer set would exceed the row budget.
        """
        token = as_token(budget)
        validate(formula, structure.signature)
        self.stats.enumerations += 1
        with _span("engine.enumerate") as enum_span:
            stream = plan_enumeration(self, structure, formula, token)
            enum_span.set("mode", stream.mode)
        if _telemetry_enabled():
            _counter("engine.enumerations").inc()
        return stream

    def answers_batch(
        self,
        requests: list[tuple[Structure, Formula]],
        *,
        max_workers: int | None = None,
        budget: "Budget | CancelToken | None" = None,
    ) -> list[frozenset[tuple[Element, ...]]]:
        """:meth:`answers` for many (structure, formula) pairs at once.

        Normalization and planning happen once per distinct (formula,
        signature, statistics) combination in the calling process (the
        shared plan cache does the deduplication); only plan *execution*
        fans out across workers. Answer-cache hits skip execution
        entirely, duplicate requests execute once, and every computed
        answer set is merged back into the answer cache — a later
        :meth:`answers` call sees exactly the state a serial loop would
        have left. Results are ordered like ``requests``.

        ``budget`` bounds the whole batch: workers inherit the remaining
        allowance (thread workers share the live token, process workers
        get a snapshot), and the parent additionally bounds its wait on
        stragglers by the remaining deadline.
        """
        from repro.parallel import parallel_map

        token = as_token(budget)
        requests = [(structure, formula) for structure, formula in requests]
        results: list = [None] * len(requests)
        pending: dict[tuple, list[int]] = {}
        for position, (structure, formula) in enumerate(requests):
            sorted_names = tuple(sorted(var.name for var in free_variables(formula)))
            key = (structure, formula, self.domain_mode, sorted_names)
            if key not in pending:
                cached = self.answer_cache.get(key)
                if cached is not None:
                    results[position] = cached
                    continue
            pending.setdefault(key, []).append(position)

        keys = list(pending)
        payloads = []
        for structure, formula, _, sorted_names in keys:
            plan, _ = self._plan_for(structure, formula)
            payloads.append(
                (
                    plan,
                    structure,
                    self._domain_values(structure),
                    sorted_names,
                    sorted_names,
                    plan.total_estimated_rows() > self.small_plan_rows,
                    self._use_columnar(plan),
                    token.to_payload() if token is not None else None,
                )
            )
        workers = max_workers if max_workers is not None else self.max_workers
        with _span("engine.answers_batch") as batch_span:
            batch_span.set("requests", len(requests)).set("executions", len(payloads))
            outcomes = parallel_map(
                _execute_payload, payloads, max_workers=workers, cancel_token=token
            )
        for key, (rows, run_stats) in zip(keys, outcomes):
            self.answer_cache.put(key, rows)
            self.stats.executions += 1
            execution = self.stats.execution
            execution.rows_materialized += run_stats["rows_materialized"]
            execution.joins += run_stats["joins"]
            execution.semijoin_filters += run_stats["semijoin_filters"]
            execution.antijoins += run_stats["antijoins"]
            for position in pending[key]:
                results[position] = rows
        if _telemetry_enabled():
            _counter("engine.batch.requests").inc(len(requests))
            _counter("engine.executions").inc(len(payloads))
        return results

    def evaluate_batch(
        self,
        requests: list[tuple[Structure, Formula]],
        *,
        max_workers: int | None = None,
        budget: "Budget | CancelToken | None" = None,
    ) -> list[bool]:
        """:meth:`evaluate` for many (structure, sentence) pairs at once.

        Sentences eligible for the bounded-degree fast path are grouped
        per formula and decided through one batched census
        (:meth:`repro.locality.bounded_degree.BoundedDegreeEvaluator.evaluate_many`);
        the rest go through :meth:`answers_batch`. Results match a
        serial :meth:`evaluate` loop, in request order. ``budget``
        bounds the whole batch (census loops and plan execution alike).
        """
        token = as_token(budget)
        requests = [(structure, formula) for structure, formula in requests]
        for _, formula in requests:
            if free_variables(formula):
                raise EvaluationError(
                    "evaluate_batch expects sentences; use answers_batch for queries"
                )
        results: list = [None] * len(requests)
        fast_groups: dict[Formula, list[int]] = {}
        slow: list[int] = []
        for position, (structure, formula) in enumerate(requests):
            dispatch, _ = self.fast_path_decision(structure, formula)
            if dispatch:
                fast_groups.setdefault(formula, []).append(position)
            else:
                slow.append(position)
        workers = max_workers if max_workers is not None else self.max_workers
        for formula, positions in fast_groups.items():
            evaluator = self._bounded_degree_evaluator(formula)
            structures = [requests[position][0] for position in positions]
            self.stats.fast_path_dispatches += len(positions)
            if _telemetry_enabled():
                _counter("engine.fast_path.dispatches").inc(len(positions))
            with _span("engine.fast_path"):
                try:
                    values = evaluator.evaluate_many(
                        structures, max_workers=workers, cancel_token=token
                    )
                except LocalityError:  # pragma: no cover - decision guards this
                    slow.extend(positions)
                    continue
            for position, value in zip(positions, values):
                results[position] = value
        if slow:
            slow.sort()
            answer_sets = self.answers_batch(
                [requests[position] for position in slow],
                max_workers=workers,
                budget=token,
            )
            for position, rows in zip(slow, answer_sets):
                results[position] = bool(rows)
        return results

    def evaluate_many(
        self,
        structures: list[Structure],
        formula: Formula,
        *,
        max_workers: int | None = None,
        budget: "Budget | CancelToken | None" = None,
    ) -> list[bool]:
        """Decide one sentence on many structures (batched evaluation)."""
        return self.evaluate_batch(
            [(structure, formula) for structure in structures],
            max_workers=max_workers,
            budget=budget,
        )

    def evaluate(
        self,
        structure: Structure,
        formula: Formula,
        assignment: dict[Var, Element] | None = None,
        *,
        budget: "Budget | CancelToken | None" = None,
    ) -> bool:
        """Decide A ⊨ φ[assignment] — same contract as the naive
        :func:`repro.eval.evaluator.evaluate`."""
        token = as_token(budget)
        free = free_variables(formula)
        if free:
            env = dict(assignment or {})
            missing = sorted(var.name for var in free if var not in env)
            if missing:
                raise EvaluationError(f"free variables {missing} have no binding")
            for var in free:
                if env[var] not in structure:
                    raise EvaluationError(
                        f"assignment binds {var.name!r} to {env[var]!r}, not in universe"
                    )
            order = tuple(sorted(free, key=lambda var: var.name))
            values = tuple(env[var] for var in order)
            return values in self.answers(structure, formula, budget=token)

        dispatch, _ = self.fast_path_decision(structure, formula)
        if dispatch:
            self.stats.fast_path_dispatches += 1
            if _telemetry_enabled():
                _counter("engine.fast_path.dispatches").inc()
            evaluator = self._bounded_degree_evaluator(formula)
            with _span("engine.fast_path"):
                try:
                    return evaluator.evaluate(structure, cancel_token=token)
                except LocalityError:  # pragma: no cover - decision guards this
                    pass
        return bool(self.answers(structure, formula, budget=token))

    def explain(self, structure: Structure, formula: Formula) -> Explanation:
        """The chosen plan (with cost annotations) and the dispatch decision."""
        plan, normalized = self._plan_for(structure, formula)
        dispatch, reason = self.fast_path_decision(structure, formula)
        return Explanation(
            formula=formula,
            normalized=normalized,
            plan=plan,
            statistics=collect_stats(structure),
            fast_path=dispatch,
            fast_path_reason=reason,
        )

    def profile(
        self,
        structure: Structure,
        formula: Formula,
        free_order: tuple[Var, ...] | None = None,
        *,
        budget: "Budget | CancelToken | None" = None,
    ) -> ProfiledExplanation:
        """EXPLAIN ANALYZE: execute under tracing, return estimates + actuals.

        Unlike :meth:`answers` this always executes (bypassing the
        answer cache — actuals must be measured, not remembered), with a
        per-node recorder attached to the executor. The returned
        :class:`ProfiledExplanation` carries the executed answer set —
        identical to :meth:`answers` on the same arguments — plus actual
        rows and inclusive milliseconds per plan node next to the
        planner's estimates, so estimate-vs-actual misplanning is
        visible node by node.
        """
        free = free_variables(formula)
        sorted_names = tuple(sorted(var.name for var in free))
        if free_order is None:
            order_names = sorted_names
        else:
            order_names = tuple(var.name for var in free_order)
            missing = {var.name for var in free} - set(order_names)
            if missing:
                raise EvaluationError(f"free_order omits free variables {sorted(missing)}")
            if len(set(order_names)) != len(order_names):
                raise EvaluationError(
                    "profile does not support duplicated free_order columns"
                )
        plan, normalized = self._plan_for(structure, formula)
        dispatch, reason = self.fast_path_decision(structure, formula)
        recorder: dict[int, NodeActuals] = {}
        start = time.perf_counter()
        with _span("engine.profile"):
            rows = self._execute_plan(
                structure, formula, sorted_names, order_names, recorder,
                cancel_token=as_token(budget),
            )
        elapsed = time.perf_counter() - start
        return ProfiledExplanation(
            formula=formula,
            normalized=normalized,
            plan=plan,
            statistics=collect_stats(structure),
            fast_path=dispatch,
            fast_path_reason=reason,
            actuals=recorder,
            answers=rows,
            seconds=elapsed,
        )

    def invalidate(self, structure: Structure) -> int:
        """Drop every cached answer for ``structure``; return the count.

        Both layers go: the content-hash answer cache *and* the
        delta-maintained records (:class:`AnswerIndex`), so the next
        read genuinely re-executes instead of being answered by a
        surviving maintenance record.  The count reports cache entries
        (one per cached answer set, as before); forgotten maintenance
        records ride along uncounted.
        """
        self._answer_index.forget(structure)
        return self.answer_cache.evict_where(lambda key: key[0] == structure)

    def clear_caches(self) -> None:
        self.plan_cache.clear()
        self.answer_cache.clear()
        self._bounded_degree.clear()
        self._answer_index.clear()

    def reset_stats(self) -> None:
        """Zero the lifetime counters (cache contents are untouched)."""
        self.stats = EngineStats()

    # -- the locality fast path (Theorem 3.11) -------------------------------

    def fast_path_decision(self, structure: Structure, formula: Formula) -> tuple[bool, str]:
        """Whether a bounded-degree census dispatch is sound *and* cheap.

        Sound: sentence, constant-free structure, Gaifman degree within
        the configured class bound (the theorem is about bounded-degree
        classes). Cheap: the Hanf-radius ball-size bound stays under
        ``fast_path_ball_limit``, so the linear-time census has a small
        constant.
        """
        if not self.enable_fast_path:
            return False, "fast path disabled"
        if self.domain_mode != "universe":
            return False, "fast path requires universe semantics"
        if free_variables(formula):
            return False, "not a sentence"
        if collect_stats(structure).has_constants:
            return False, "structure interprets constants"
        degree = collect_stats(structure).max_degree
        if degree > self.degree_threshold:
            return False, f"Gaifman degree {degree} exceeds bound {self.degree_threshold}"
        radius = hanf_locality_radius(quantifier_rank(formula))
        ball_bound = max_ball_size(self.degree_threshold, radius)
        if ball_bound > self.fast_path_ball_limit:
            return False, (
                f"ball bound {ball_bound} at Hanf radius {radius} exceeds "
                f"limit {self.fast_path_ball_limit}"
            )
        return True, (
            f"degree {degree} ≤ {self.degree_threshold}, "
            f"ball bound {ball_bound} ≤ {self.fast_path_ball_limit}"
        )

    def _bounded_degree_evaluator(self, sentence: Formula) -> BoundedDegreeEvaluator:
        return self._bounded_degree.get_or_compute(
            sentence,
            lambda: BoundedDegreeEvaluator(
                sentence,
                degree_bound=self.degree_threshold,
                threshold=self.fast_path_threshold,
                fallback=self._fast_path_fallback,
            ),
        )

    def _fast_path_fallback(
        self,
        structure: Structure,
        sentence: Formula,
        cancel_token: CancelToken | None = None,
    ) -> bool:
        # Census-table miss: answer through the algebra pipeline (and its
        # caches), not the naive evaluator.
        return bool(self.answers(structure, sentence, budget=cancel_token))

    # -- plan + execute ------------------------------------------------------

    def _plan_for(self, structure: Structure, formula: Formula) -> tuple[Plan, Formula]:
        with _span("engine.collect_stats"):
            stats = collect_stats(structure)
        key = (formula, structure.signature, self.domain_mode, stats.plan_key)

        def build() -> tuple[Plan, Formula]:
            with _span("engine.plan") as plan_span:
                validate(formula, structure.signature)
                with _span("engine.normalize"):
                    normalized = normalize(formula)
                wanted = tuple(sorted(var.name for var in free_variables(formula)))
                planner = Planner(stats, len(self._domain_values(structure)))
                self.stats.plans_built += 1
                if _telemetry_enabled():
                    _counter("engine.plans_built").inc()
                plan = planner.plan(normalized, wanted)
                plan_span.set("estimated_rows", plan.total_estimated_rows())
                return plan, normalized

        return self.plan_cache.get_or_compute(key, build)

    def _use_columnar(self, plan: Plan) -> bool:
        """The executor-tier dispatch decision for one plan.

        Forced modes short-circuit; ``auto`` sends the two extremes of
        the cost range to the columnar tier — trivially small plans
        (cached pipeline beats the tuple executor's per-node setup, the
        fix for the old ``has-loop`` regression) and bulky plans
        (integer kernels beat per-row tuple hashing) — and keeps the
        middle band on the reference tuple executor.
        """
        if self.executor_mode == "tuple":
            return False
        if self.executor_mode == "columnar":
            return True
        estimate = plan.total_estimated_rows()
        return estimate <= self.tiny_plan_rows or estimate >= self.columnar_min_rows

    def _domain_values(self, structure: Structure) -> tuple[Element, ...]:
        if self.domain_mode == "universe":
            return structure.universe
        active = structure.active_domain()
        if not active:
            # Mirror the translate convention: keep quantifiers well
            # defined on structures with all-empty relations.
            return (structure.universe[0],)
        return tuple(sorted(active, key=repr))

    def _compute_answers(
        self,
        structure: Structure,
        formula: Formula,
        sorted_names: tuple[str, ...],
        order_names: tuple[str, ...],
        cancel_token: CancelToken | None = None,
    ) -> frozenset[tuple[Element, ...]]:
        with _span("engine.answers") as answers_span:
            rows = self._execute_plan(
                structure, formula, sorted_names, order_names, None,
                cancel_token=cancel_token,
            )
            answers_span.set("rows", len(rows))
            return rows

    def _execute_plan(
        self,
        structure: Structure,
        formula: Formula,
        sorted_names: tuple[str, ...],
        order_names: tuple[str, ...],
        recorder: dict[int, NodeActuals] | None,
        cancel_token: CancelToken | None = None,
    ) -> frozenset[tuple[Element, ...]]:
        plan, _ = self._plan_for(structure, formula)
        domain = self._domain_values(structure)
        fault_point("engine.execute")
        executor_class = (
            ColumnarExecutor
            if recorder is None and self._use_columnar(plan)
            else Executor
        )
        executor = executor_class(
            structure,
            domain,
            self.stats.execution,
            recorder=recorder,
            semijoin_filtering=plan.total_estimated_rows() > self.small_plan_rows,
            cancel_token=cancel_token,
        )
        self.stats.executions += 1
        if _telemetry_enabled():
            _counter("engine.executions").inc()
        with _span("engine.execute"):
            relation = executor.run(plan)
        extra = tuple(name for name in order_names if name not in sorted_names)
        if extra:
            # Naive `answers` ranges extra free_order columns over the
            # full universe, independent of the domain mode.
            relation = relation.extend_columns(extra, structure.universe)
        if relation.attributes != order_names:
            relation = relation.project(order_names)
        return relation.rows


def _execute_payload(payload: tuple) -> tuple[frozenset, dict[str, int]]:
    """Worker body for one :meth:`Engine.answers_batch` execution.

    Takes a pre-built plan (planning stays in the calling process) plus
    everything the executor needs, and returns the shaped answer rows
    together with the execution counters, so the parent can merge both
    back into its caches and stats.
    """
    (
        plan,
        structure,
        domain,
        sorted_names,
        order_names,
        semijoin_filtering,
        use_columnar,
        token_payload,
    ) = payload
    token = CancelToken.from_payload(token_payload) if token_payload is not None else None
    run_stats = ExecutionStats()
    executor_class = ColumnarExecutor if use_columnar else Executor
    executor = executor_class(
        structure,
        domain,
        run_stats,
        semijoin_filtering=semijoin_filtering,
        cancel_token=token,
    )
    relation = executor.run(plan)
    extra = tuple(name for name in order_names if name not in sorted_names)
    if extra:
        relation = relation.extend_columns(extra, structure.universe)
    if relation.attributes != order_names:
        relation = relation.project(order_names)
    return relation.rows, run_stats.as_dict()


def relation_answers(
    engine: Engine, structure: Structure, formula: Formula
) -> Relation:
    """The answer set as a named-column :class:`Relation` (sorted columns)."""
    free = tuple(sorted(var.name for var in free_variables(formula)))
    return Relation(free, engine.answers(structure, formula))
