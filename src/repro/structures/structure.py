"""Finite relational structures — the library's model of a database.

A :class:`Structure` is a finite universe together with an interpretation
of every relation symbol of its signature (and of its constants, if any).
Structures are immutable and hashable; all "mutating" operations return
new structures.

The element sort order used internally is deterministic (by type name and
repr), so every derived object — neighborhoods, unions, canonical invariants
— is reproducible run to run.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from typing import Callable

from repro.errors import SignatureError, StructureError
from repro.logic.signature import Signature

__all__ = ["Structure", "Element"]

Element = Hashable


def _sort_key(element: Element) -> tuple[str, str]:
    return (type(element).__name__, repr(element))


class Structure:
    """A finite structure A = (A, R1^A, ..., Rk^A, c1^A, ..., cm^A).

    Parameters
    ----------
    signature:
        The relational signature the structure interprets.
    universe:
        The (non-empty, finite) domain. Elements may be any hashable
        values; duplicates are removed.
    relations:
        For each relation symbol, the set of tuples in its interpretation.
        Symbols may be omitted — they are interpreted as empty. Tuples of
        binary relations may be given as 2-tuples, etc.
    constants:
        For each constant symbol of the signature, the element it denotes.

    >>> from repro.logic.signature import GRAPH
    >>> triangle = Structure(GRAPH, [0, 1, 2], {"E": [(0, 1), (1, 2), (2, 0)]})
    >>> triangle.size
    3
    """

    __slots__ = (
        "signature",
        "universe",
        "relations",
        "constants",
        "_universe_set",
        "_hash",
        "_cache",
        # Weak referenceability: the columnar tier's codecs live in
        # ``_cache`` and point back at the structure through a weakref,
        # so a dead structure (and its cached pipelines, columns and
        # memoized scan sets) is reclaimed by refcounting alone instead
        # of waiting for a cyclic-GC pass.
        "__weakref__",
    )

    def __init__(
        self,
        signature: Signature,
        universe: Iterable[Element],
        relations: Mapping[str, Iterable[tuple]] | None = None,
        constants: Mapping[str, Element] | None = None,
    ) -> None:
        self.signature = signature
        elements = list(dict.fromkeys(universe))
        if not elements:
            raise StructureError("the universe of a structure must be non-empty")
        try:
            elements.sort(key=_sort_key)
        except TypeError:  # pragma: no cover - repr-keys are always comparable
            pass
        self.universe: tuple[Element, ...] = tuple(elements)
        self._universe_set = frozenset(elements)

        interp: dict[str, frozenset[tuple]] = {}
        provided = dict(relations or {})
        for name in provided:
            if not signature.has_relation(name):
                raise SignatureError(
                    f"structure interprets undeclared relation {name!r}; "
                    f"signature has {sorted(signature.relations)}"
                )
        for name in signature.relation_names():
            arity = signature.arity(name)
            tuples = frozenset(tuple(row) for row in provided.get(name, ()))
            for row in tuples:
                if len(row) != arity:
                    raise StructureError(
                        f"tuple {row!r} in {name!r} has length {len(row)}, expected {arity}"
                    )
                for value in row:
                    if value not in self._universe_set:
                        raise StructureError(
                            f"tuple {row!r} in {name!r} mentions {value!r}, "
                            "which is outside the universe"
                        )
            interp[name] = tuples
        self.relations: dict[str, frozenset[tuple]] = interp

        const_interp: dict[str, Element] = dict(constants or {})
        for name in const_interp:
            if not signature.has_constant(name):
                raise SignatureError(f"structure interprets undeclared constant {name!r}")
            if const_interp[name] not in self._universe_set:
                raise StructureError(
                    f"constant {name!r} denotes {const_interp[name]!r}, "
                    "which is outside the universe"
                )
        missing = signature.constants - const_interp.keys()
        if missing:
            raise StructureError(f"constants {sorted(missing)} are not interpreted")
        self.constants: dict[str, Element] = const_interp

        self._hash: int | None = None
        self._cache: dict = {}

    # -- basic protocol ----------------------------------------------------

    @property
    def size(self) -> int:
        """Number of elements in the universe (written |A| or n)."""
        return len(self.universe)

    def __len__(self) -> int:
        return len(self.universe)

    def __contains__(self, element: Element) -> bool:
        return element in self._universe_set

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return (
            self.signature == other.signature
            and self._universe_set == other._universe_set
            and self.relations == other.relations
            and self.constants == other.constants
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (
                    self.signature,
                    self._universe_set,
                    frozenset(self.relations.items()),
                    frozenset(self.constants.items()),
                )
            )
        return self._hash

    def __repr__(self) -> str:
        rels = ", ".join(
            f"{name}:{len(tuples)}" for name, tuples in sorted(self.relations.items())
        )
        return f"Structure(|A|={self.size}, {rels or 'no relations'})"

    # -- pickling (worker payloads) -------------------------------------------

    def __getstate__(self) -> tuple:
        """Pickle the mathematical content only, not the memo caches.

        Worker payloads (parallel census chunks, batch plan executions)
        stay small, and each worker rebuilds Gaifman graphs / WL colors
        on demand — those are cheaper to recompute than to ship. The
        columnar tier's per-structure memos (domain codecs, compiled
        kernel pipelines — :mod:`repro.engine.columnar`) live in the
        same cache and are likewise rebuilt where they're used: shipping
        compiled closures would be impossible anyway (they don't
        pickle), and the rebuild is one linear pass over each relation.
        """
        return (self.signature, self.universe, self.relations, self.constants)

    def __setstate__(self, state: tuple) -> None:
        signature, universe, relations, constants = state
        self.signature = signature
        self.universe = universe
        self._universe_set = frozenset(universe)
        self.relations = relations
        self.constants = constants
        self._hash = None
        self._cache = {}

    # -- membership ----------------------------------------------------------

    def holds(self, relation: str, row: tuple) -> bool:
        """Whether the tuple ``row`` is in relation ``relation``."""
        try:
            return tuple(row) in self.relations[relation]
        except KeyError:
            raise SignatureError(f"unknown relation symbol {relation!r}") from None

    def tuples(self, relation: str) -> frozenset[tuple]:
        """The interpretation of ``relation`` as a set of tuples."""
        try:
            return self.relations[relation]
        except KeyError:
            raise SignatureError(f"unknown relation symbol {relation!r}") from None

    def constant(self, name: str) -> Element:
        """The element denoted by constant ``name``."""
        try:
            return self.constants[name]
        except KeyError:
            raise SignatureError(f"unknown constant symbol {name!r}") from None

    def active_domain(self) -> frozenset[Element]:
        """Elements occurring in some relation tuple or as a constant.

        The *active domain* is the semantics used by the FO→relational
        algebra translation (databases only see values that appear in
        tables).
        """
        active: set[Element] = set(self.constants.values())
        for tuples in self.relations.values():
            for row in tuples:
                active.update(row)
        return frozenset(active)

    # -- derived structures ---------------------------------------------------

    def induced(self, elements: Iterable[Element]) -> "Structure":
        """The substructure induced on ``elements`` (which must be non-empty).

        Relations are restricted to tuples entirely inside the chosen set.
        Constants must all lie inside the set (otherwise the substructure
        would not interpret them), or :class:`StructureError` is raised.
        """
        keep = set(elements)
        stray = keep - self._universe_set
        if stray:
            raise StructureError(f"elements {sorted(map(repr, stray))} are not in the universe")
        for name, value in self.constants.items():
            if value not in keep:
                raise StructureError(
                    f"constant {name!r} = {value!r} lies outside the induced universe"
                )
        relations = {
            name: {row for row in tuples if all(value in keep for value in row)}
            for name, tuples in self.relations.items()
        }
        return Structure(self.signature, keep, relations, self.constants)

    def relabel(self, mapping: Callable[[Element], Element] | Mapping[Element, Element]) -> "Structure":
        """Rename elements through an injective mapping."""
        if callable(mapping):
            rename = {element: mapping(element) for element in self.universe}
        else:
            rename = {element: mapping[element] for element in self.universe}
        if len(set(rename.values())) != len(rename):
            raise StructureError("relabeling must be injective")
        relations = {
            name: {tuple(rename[value] for value in row) for row in tuples}
            for name, tuples in self.relations.items()
        }
        constants = {name: rename[value] for name, value in self.constants.items()}
        return Structure(self.signature, rename.values(), relations, constants)

    def disjoint_union(self, other: "Structure") -> "Structure":
        """The disjoint union A ⊕ B, with elements tagged (0, a) and (1, b).

        Both structures must be over the same relational signature with no
        constants (a constant cannot denote two elements).
        """
        if self.signature != other.signature:
            raise SignatureError("disjoint union requires identical signatures")
        if self.constants or other.constants:
            raise StructureError("disjoint union is undefined for structures with constants")
        left = self.relabel(lambda element: (0, element))
        right = other.relabel(lambda element: (1, element))
        relations = {
            name: left.relations[name] | right.relations[name]
            for name in self.signature.relation_names()
        }
        return Structure(self.signature, left.universe + right.universe, relations)

    def direct_product(self, other: "Structure") -> "Structure":
        """The direct product A × B: universe A × B, relations coordinatewise.

        R^{A×B}((a₁,b₁), ..., (a_k,b_k)) iff R^A(ā) and R^B(b̄). Game
        equivalence composes over products (see
        :func:`repro.games.strategies.product_duplicator`), the
        Feferman–Vaught-flavored tool of the classical toolbox.
        """
        if self.signature != other.signature:
            raise SignatureError("direct product requires identical signatures")
        if self.constants or other.constants:
            raise StructureError("direct product is implemented for constant-free signatures")
        universe = [(a, b) for a in self.universe for b in other.universe]
        relations: dict[str, set[tuple]] = {}
        for name in self.signature.relation_names():
            rows: set[tuple] = set()
            for left_row in self.relations[name]:
                for right_row in other.relations[name]:
                    rows.add(tuple(zip(left_row, right_row)))
            relations[name] = rows
        return Structure(self.signature, universe, relations)

    def with_relation(self, name: str, arity: int, tuples: Iterable[tuple]) -> "Structure":
        """Return a structure over the extended signature with ``name`` added.

        If ``name`` already exists (at the same arity) its interpretation
        is replaced.
        """
        signature = self.signature.extend({name: arity})
        relations = dict(self.relations)
        relations[name] = frozenset(tuple(row) for row in tuples)
        return Structure(signature, self.universe, relations, self.constants)

    def with_distinguished(self, elements: tuple[Element, ...], prefix: str = "@") -> "Structure":
        """Mark a tuple of elements with fresh singleton unary relations.

        Element ``elements[i]`` is marked by the relation ``{prefix}{i}``.
        This encodes *distinguished* tuples (as in neighborhoods N_r(ā))
        so that plain isomorphism on the marked structures is exactly
        isomorphism respecting h(a_i) = b_i.
        """
        signature = self.signature
        relations: dict[str, Iterable[tuple]] = dict(self.relations)
        for index, element in enumerate(elements):
            if element not in self._universe_set:
                raise StructureError(f"distinguished element {element!r} not in universe")
            name = f"{prefix}{index}"
            signature = signature.extend({name: 1})
            relations[name] = {(element,)}
        return Structure(signature, self.universe, relations, self.constants)

    def reduct(self, names: Iterable[str]) -> "Structure":
        """The reduct to a sub-signature (forget the other relations)."""
        keep = list(names)
        signature = self.signature.restrict(keep)
        relations = {name: self.relations[name] for name in keep}
        return Structure(signature, self.universe, relations, self.constants)

    # -- graph-view helpers ----------------------------------------------------

    def out_degree(self, element: Element, relation: str = "E") -> int:
        """Out-degree of ``element`` in a binary relation (default ``E``)."""
        self._require_binary(relation)
        return sum(1 for row in self.relations[relation] if row[0] == element)

    def in_degree(self, element: Element, relation: str = "E") -> int:
        """In-degree of ``element`` in a binary relation (default ``E``)."""
        self._require_binary(relation)
        return sum(1 for row in self.relations[relation] if row[1] == element)

    def degree_sets(self, relation: str = "E") -> tuple[frozenset[int], frozenset[int]]:
        """(in(G), out(G)): the sets of in- and out-degrees realized.

        These are the ingredients of the BNDP (Definition 3.3): ``degs(G)``
        is their union, computed by :func:`repro.locality.bndp.degs`.
        """
        self._require_binary(relation)
        out_counts = {element: 0 for element in self.universe}
        in_counts = {element: 0 for element in self.universe}
        for source, target in self.relations[relation]:
            out_counts[source] += 1
            in_counts[target] += 1
        return frozenset(in_counts.values()), frozenset(out_counts.values())

    def max_degree(self) -> int:
        """Maximal Gaifman degree over all elements (0 for a bare set).

        This is the ``k`` of bounded-degree classes in Theorems 3.10/3.11.
        Computed from the Gaifman graph, so it is well defined for every
        signature, not just graphs.
        """
        from repro.structures.gaifman import gaifman_adjacency

        adjacency = gaifman_adjacency(self)
        return max((len(neighbors) for neighbors in adjacency.values()), default=0)

    def is_graph(self) -> bool:
        """Whether the structure is over the one-binary-relation signature."""
        return set(self.signature.relations.items()) == {("E", 2)}

    def _require_binary(self, relation: str) -> None:
        if self.signature.arity(relation) != 2:
            raise StructureError(f"relation {relation!r} is not binary")

    # -- internal memoization -----------------------------------------------

    def cached(self, key: object, compute: Callable[[], object]) -> object:
        """Memoize a per-structure computation (Gaifman graph, WL colors...)."""
        if key not in self._cache:
            self._cache[key] = compute()
        return self._cache[key]
