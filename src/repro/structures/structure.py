"""Finite relational structures — the library's model of a database.

A :class:`Structure` is a finite universe together with an interpretation
of every relation symbol of its signature (and of its constants, if any).
Structures are hashable and content-equal; derived-structure operations
(:meth:`Structure.induced`, unions, products, ...) return new structures.

Since the incremental layer (ISSUE 9) a structure is additionally
*updatable in place*: :meth:`Structure.insert` and
:meth:`Structure.delete` change one relation tuple, bump the structure's
**epoch**, and *patch* the structural memo caches (Gaifman adjacency,
row incidence) instead of discarding them.  Every mutation is recorded
in a bounded delta log, so epoch-aware consumers — the locality census,
the engine's answer maintenance — can read :meth:`deltas_since` and
patch their own indexes rather than recompute.  The universe and the
constant interpretation never change; only relation contents do.

The element sort order used internally is deterministic (by type name and
repr), so every derived object — neighborhoods, unions, canonical invariants
— is reproducible run to run.
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Iterable, Mapping
from typing import Callable

from repro.errors import SignatureError, StructureError
from repro.logic.signature import Signature

__all__ = ["Structure", "Element"]

Element = Hashable

#: Process-unique identities for structures (see :attr:`Structure.uid`).
#: Content hashing cannot key *identity-based* incremental indexes: two
#: content-equal structures may diverge under updates, and one mutated
#: structure changes its content hash on every delta.
_UIDS = itertools.count(1)

#: Bound on the per-structure delta log.  Consumers that fall further
#: behind than this get ``None`` from :meth:`Structure.deltas_since` and
#: must recompute — the log bounds memory, not history.
DELTA_LOG_LIMIT = 256

#: Memo keys the mutation path patches in place; every other ``_cache``
#: entry is dropped on update (safe default: recompute on demand).
_PATCHED_MEMOS = frozenset({("gaifman",), ("row-incidence",)})


def _sort_key(element: Element) -> tuple[str, str]:
    return (type(element).__name__, repr(element))


class Structure:
    """A finite structure A = (A, R1^A, ..., Rk^A, c1^A, ..., cm^A).

    Parameters
    ----------
    signature:
        The relational signature the structure interprets.
    universe:
        The (non-empty, finite) domain. Elements may be any hashable
        values; duplicates are removed.
    relations:
        For each relation symbol, the set of tuples in its interpretation.
        Symbols may be omitted — they are interpreted as empty. Tuples of
        binary relations may be given as 2-tuples, etc.
    constants:
        For each constant symbol of the signature, the element it denotes.

    >>> from repro.logic.signature import GRAPH
    >>> triangle = Structure(GRAPH, [0, 1, 2], {"E": [(0, 1), (1, 2), (2, 0)]})
    >>> triangle.size
    3
    """

    __slots__ = (
        "signature",
        "universe",
        "relations",
        "constants",
        "_universe_set",
        "_hash",
        "_cache",
        # Incremental state: ``epoch`` counts applied updates, ``uid`` is
        # a process-unique identity (content hashes move under updates,
        # identities do not), ``_deltas`` is the bounded update log.
        "epoch",
        "uid",
        "_deltas",
        # Weak referenceability: the columnar tier's codecs live in
        # ``_cache`` and point back at the structure through a weakref,
        # so a dead structure (and its cached pipelines, columns and
        # memoized scan sets) is reclaimed by refcounting alone instead
        # of waiting for a cyclic-GC pass.
        "__weakref__",
    )

    def __init__(
        self,
        signature: Signature,
        universe: Iterable[Element],
        relations: Mapping[str, Iterable[tuple]] | None = None,
        constants: Mapping[str, Element] | None = None,
    ) -> None:
        self.signature = signature
        elements = list(dict.fromkeys(universe))
        if not elements:
            raise StructureError("the universe of a structure must be non-empty")
        try:
            elements.sort(key=_sort_key)
        except TypeError:  # pragma: no cover - repr-keys are always comparable
            pass
        self.universe: tuple[Element, ...] = tuple(elements)
        self._universe_set = frozenset(elements)

        interp: dict[str, frozenset[tuple]] = {}
        provided = dict(relations or {})
        for name in provided:
            if not signature.has_relation(name):
                raise SignatureError(
                    f"structure interprets undeclared relation {name!r}; "
                    f"signature has {sorted(signature.relations)}"
                )
        for name in signature.relation_names():
            arity = signature.arity(name)
            tuples = frozenset(tuple(row) for row in provided.get(name, ()))
            for row in tuples:
                if len(row) != arity:
                    raise StructureError(
                        f"tuple {row!r} in {name!r} has length {len(row)}, expected {arity}"
                    )
                for value in row:
                    if value not in self._universe_set:
                        raise StructureError(
                            f"tuple {row!r} in {name!r} mentions {value!r}, "
                            "which is outside the universe"
                        )
            interp[name] = tuples
        self.relations: dict[str, frozenset[tuple]] = interp

        const_interp: dict[str, Element] = dict(constants or {})
        for name in const_interp:
            if not signature.has_constant(name):
                raise SignatureError(f"structure interprets undeclared constant {name!r}")
            if const_interp[name] not in self._universe_set:
                raise StructureError(
                    f"constant {name!r} denotes {const_interp[name]!r}, "
                    "which is outside the universe"
                )
        missing = signature.constants - const_interp.keys()
        if missing:
            raise StructureError(f"constants {sorted(missing)} are not interpreted")
        self.constants: dict[str, Element] = const_interp

        self._hash: int | None = None
        self._cache: dict = {}
        self.epoch: int = 0
        self.uid: int = next(_UIDS)
        self._deltas: list[tuple[str, str, tuple]] = []

    # -- basic protocol ----------------------------------------------------

    @property
    def size(self) -> int:
        """Number of elements in the universe (written |A| or n)."""
        return len(self.universe)

    def __len__(self) -> int:
        return len(self.universe)

    def __contains__(self, element: Element) -> bool:
        return element in self._universe_set

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return (
            self.signature == other.signature
            and self._universe_set == other._universe_set
            and self.relations == other.relations
            and self.constants == other.constants
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (
                    self.signature,
                    self._universe_set,
                    frozenset(self.relations.items()),
                    frozenset(self.constants.items()),
                )
            )
        return self._hash

    def __repr__(self) -> str:
        rels = ", ".join(
            f"{name}:{len(tuples)}" for name, tuples in sorted(self.relations.items())
        )
        return f"Structure(|A|={self.size}, {rels or 'no relations'})"

    # -- pickling (worker payloads) -------------------------------------------

    def __getstate__(self) -> tuple:
        """Pickle the mathematical content only, not the memo caches.

        Worker payloads (parallel census chunks, batch plan executions)
        stay small, and each worker rebuilds Gaifman graphs / WL colors
        on demand — those are cheaper to recompute than to ship. The
        columnar tier's per-structure memos (domain codecs, compiled
        kernel pipelines — :mod:`repro.engine.columnar`) live in the
        same cache and are likewise rebuilt where they're used: shipping
        compiled closures would be impossible anyway (they don't
        pickle), and the rebuild is one linear pass over each relation.
        """
        return (self.signature, self.universe, self.relations, self.constants)

    def __setstate__(self, state: tuple) -> None:
        signature, universe, relations, constants = state
        self.signature = signature
        self.universe = universe
        self._universe_set = frozenset(universe)
        self.relations = relations
        self.constants = constants
        self._hash = None
        self._cache = {}
        # A worker-side copy is a different object with its own update
        # history; it must not alias the sender's incremental identity.
        self.epoch = 0
        self.uid = next(_UIDS)
        self._deltas = []

    # -- membership ----------------------------------------------------------

    def holds(self, relation: str, row: tuple) -> bool:
        """Whether the tuple ``row`` is in relation ``relation``."""
        try:
            return tuple(row) in self.relations[relation]
        except KeyError:
            raise SignatureError(f"unknown relation symbol {relation!r}") from None

    def tuples(self, relation: str) -> frozenset[tuple]:
        """The interpretation of ``relation`` as a set of tuples."""
        try:
            return self.relations[relation]
        except KeyError:
            raise SignatureError(f"unknown relation symbol {relation!r}") from None

    def constant(self, name: str) -> Element:
        """The element denoted by constant ``name``."""
        try:
            return self.constants[name]
        except KeyError:
            raise SignatureError(f"unknown constant symbol {name!r}") from None

    def active_domain(self) -> frozenset[Element]:
        """Elements occurring in some relation tuple or as a constant.

        The *active domain* is the semantics used by the FO→relational
        algebra translation (databases only see values that appear in
        tables).
        """
        active: set[Element] = set(self.constants.values())
        for tuples in self.relations.values():
            for row in tuples:
                active.update(row)
        return frozenset(active)

    # -- updates (incremental evaluation) -------------------------------------

    def insert(self, relation: str, row: tuple) -> bool:
        """Add ``row`` to ``relation`` in place; return whether it was new.

        Bumps :attr:`epoch`, appends to the delta log, and *patches* the
        structural memos (row incidence, Gaifman adjacency) rather than
        rebuilding them.  Memos the mutation path does not understand are
        dropped and recomputed on demand.  A no-op insert (the row is
        already present) returns ``False`` and changes nothing.
        """
        return self._update("insert", relation, row)

    def delete(self, relation: str, row: tuple) -> bool:
        """Remove ``row`` from ``relation`` in place; return whether present.

        Same contract as :meth:`insert`; a no-op delete (the row is
        absent) returns ``False`` and changes nothing.  The universe is
        untouched — deletes never remove elements.
        """
        return self._update("delete", relation, row)

    def deltas_since(self, epoch: int) -> list[tuple[str, str, tuple]] | None:
        """The ``(op, relation, row)`` deltas applied after ``epoch``.

        Returns ``[]`` when ``epoch`` is current, ``None`` when the
        caller is from the future (a different structure's epoch) or has
        fallen behind the bounded log — in that case patching is off the
        table and the caller must recompute from the current contents.
        """
        # Boundary audit (ISSUE 10): the log holds the last
        # min(epoch, DELTA_LOG_LIMIT) deltas, so a caller exactly
        # DELTA_LOG_LIMIT behind still gets the full suffix; only at
        # DELTA_LOG_LIMIT+1 has the needed oldest delta been trimmed.
        # ``behind > len`` (not ``>=``) is therefore the correct cut —
        # pinned by regression tests at limit−1 / limit / limit+1.
        behind = self.epoch - epoch
        if behind < 0 or behind > len(self._deltas):
            return None
        if behind == 0:
            return []
        return self._deltas[-behind:]

    def check_update(self, relation: str, row: tuple) -> tuple:
        """Validate a delta without applying it; return the normalized row.

        Raises the same :class:`SignatureError`/:class:`StructureError`
        an :meth:`insert`/:meth:`delete` would — callers that need
        all-or-nothing batches (the server's updates endpoint) validate
        every delta here before applying any.
        """
        row = tuple(row)
        if relation not in self.relations:
            raise SignatureError(f"unknown relation symbol {relation!r}")
        arity = self.signature.arity(relation)
        if len(row) != arity:
            raise StructureError(
                f"tuple {row!r} for {relation!r} has length {len(row)}, expected {arity}"
            )
        for value in row:
            if value not in self._universe_set:
                raise StructureError(
                    f"tuple {row!r} for {relation!r} mentions {value!r}, "
                    "which is outside the universe"
                )
        return row

    def _update(self, op: str, relation: str, row: tuple) -> bool:
        row = self.check_update(relation, row)
        tuples = self.relations[relation]
        if op == "insert":
            if row in tuples:
                return False
            self.relations[relation] = tuples | {row}
        else:
            if row not in tuples:
                return False
            self.relations[relation] = tuples - {row}
        self.epoch += 1
        self._deltas.append((op, relation, row))
        if len(self._deltas) > DELTA_LOG_LIMIT:
            del self._deltas[: len(self._deltas) - DELTA_LOG_LIMIT]
        self._hash = None
        self._patch_memos(op, relation, row)
        return True

    def _patch_memos(self, op: str, relation: str, row: tuple) -> None:
        """Patch the structural memos for one applied delta; drop the rest.

        Row incidence maps each element to the ``(relation, row)`` pairs
        it occurs in; the Gaifman adjacency is derivable from it.  Both
        are patched in O(|row| · degree).  Columnar codecs and compiled
        pipelines over the (immutable) universe domain are *kept* — they
        carry their own epoch stamps, and ``codec_for`` / the columnar
        executor patch them forward from the delta log on next use
        instead of re-encoding the whole structure.  Active-domain
        columnar entries are dropped (the active domain itself moves
        under updates, so their key would go stale anyway), as is
        everything else (WL colors, engine stats): each owner recomputes
        on demand.
        """
        patched: dict = {}
        for key, value in self._cache.items():
            if key[0] in ("columnar-codec", "columnar-pipeline") and (
                key[-1] is self.universe or key[-1] == self.universe
            ):
                patched[key] = value
        incidence = self._cache.get(("row-incidence",))
        if incidence is not None:
            incidence = dict(incidence)
            pair = (relation, row)
            for element in set(row):
                pairs = incidence.get(element, ())
                if op == "insert":
                    incidence[element] = (*pairs, pair)
                else:
                    incidence[element] = tuple(p for p in pairs if p != pair)
            patched[("row-incidence",)] = incidence
        adjacency = self._cache.get(("gaifman",))
        if adjacency is not None:
            touched = set(row)
            adjacency = dict(adjacency)
            if op == "insert":
                for element in touched:
                    adjacency[element] = adjacency[element] | (touched - {element})
            elif incidence is not None:
                # A deleted row may or may not sever edges (another row
                # can still connect the same pair); recompute the touched
                # elements' rows from the patched incidence.
                for element in touched:
                    neighbors: set[Element] = set()
                    for _, other_row in incidence.get(element, ()):
                        neighbors.update(other_row)
                    neighbors.discard(element)
                    adjacency[element] = frozenset(neighbors)
            else:
                adjacency = None
            if adjacency is not None:
                patched[("gaifman",)] = adjacency
        self._cache = patched

    # -- derived structures ---------------------------------------------------

    def induced(self, elements: Iterable[Element]) -> "Structure":
        """The substructure induced on ``elements`` (which must be non-empty).

        Relations are restricted to tuples entirely inside the chosen set.
        Constants must all lie inside the set (otherwise the substructure
        would not interpret them), or :class:`StructureError` is raised.
        """
        keep = set(elements)
        stray = keep - self._universe_set
        if stray:
            raise StructureError(f"elements {sorted(map(repr, stray))} are not in the universe")
        for name, value in self.constants.items():
            if value not in keep:
                raise StructureError(
                    f"constant {name!r} = {value!r} lies outside the induced universe"
                )
        relations = {
            name: {row for row in tuples if all(value in keep for value in row)}
            for name, tuples in self.relations.items()
        }
        return Structure(self.signature, keep, relations, self.constants)

    def relabel(self, mapping: Callable[[Element], Element] | Mapping[Element, Element]) -> "Structure":
        """Rename elements through an injective mapping."""
        if callable(mapping):
            rename = {element: mapping(element) for element in self.universe}
        else:
            rename = {element: mapping[element] for element in self.universe}
        if len(set(rename.values())) != len(rename):
            raise StructureError("relabeling must be injective")
        relations = {
            name: {tuple(rename[value] for value in row) for row in tuples}
            for name, tuples in self.relations.items()
        }
        constants = {name: rename[value] for name, value in self.constants.items()}
        return Structure(self.signature, rename.values(), relations, constants)

    def disjoint_union(self, other: "Structure") -> "Structure":
        """The disjoint union A ⊕ B, with elements tagged (0, a) and (1, b).

        Both structures must be over the same relational signature with no
        constants (a constant cannot denote two elements).
        """
        if self.signature != other.signature:
            raise SignatureError("disjoint union requires identical signatures")
        if self.constants or other.constants:
            raise StructureError("disjoint union is undefined for structures with constants")
        left = self.relabel(lambda element: (0, element))
        right = other.relabel(lambda element: (1, element))
        relations = {
            name: left.relations[name] | right.relations[name]
            for name in self.signature.relation_names()
        }
        return Structure(self.signature, left.universe + right.universe, relations)

    def direct_product(self, other: "Structure") -> "Structure":
        """The direct product A × B: universe A × B, relations coordinatewise.

        R^{A×B}((a₁,b₁), ..., (a_k,b_k)) iff R^A(ā) and R^B(b̄). Game
        equivalence composes over products (see
        :func:`repro.games.strategies.product_duplicator`), the
        Feferman–Vaught-flavored tool of the classical toolbox.
        """
        if self.signature != other.signature:
            raise SignatureError("direct product requires identical signatures")
        if self.constants or other.constants:
            raise StructureError("direct product is implemented for constant-free signatures")
        universe = [(a, b) for a in self.universe for b in other.universe]
        relations: dict[str, set[tuple]] = {}
        for name in self.signature.relation_names():
            rows: set[tuple] = set()
            for left_row in self.relations[name]:
                for right_row in other.relations[name]:
                    rows.add(tuple(zip(left_row, right_row)))
            relations[name] = rows
        return Structure(self.signature, universe, relations)

    def with_relation(self, name: str, arity: int, tuples: Iterable[tuple]) -> "Structure":
        """Return a structure over the extended signature with ``name`` added.

        If ``name`` already exists (at the same arity) its interpretation
        is replaced.
        """
        signature = self.signature.extend({name: arity})
        relations = dict(self.relations)
        relations[name] = frozenset(tuple(row) for row in tuples)
        return Structure(signature, self.universe, relations, self.constants)

    def with_distinguished(self, elements: tuple[Element, ...], prefix: str = "@") -> "Structure":
        """Mark a tuple of elements with fresh singleton unary relations.

        Element ``elements[i]`` is marked by the relation ``{prefix}{i}``.
        This encodes *distinguished* tuples (as in neighborhoods N_r(ā))
        so that plain isomorphism on the marked structures is exactly
        isomorphism respecting h(a_i) = b_i.
        """
        signature = self.signature
        relations: dict[str, Iterable[tuple]] = dict(self.relations)
        for index, element in enumerate(elements):
            if element not in self._universe_set:
                raise StructureError(f"distinguished element {element!r} not in universe")
            name = f"{prefix}{index}"
            signature = signature.extend({name: 1})
            relations[name] = {(element,)}
        return Structure(signature, self.universe, relations, self.constants)

    def reduct(self, names: Iterable[str]) -> "Structure":
        """The reduct to a sub-signature (forget the other relations)."""
        keep = list(names)
        signature = self.signature.restrict(keep)
        relations = {name: self.relations[name] for name in keep}
        return Structure(signature, self.universe, relations, self.constants)

    # -- graph-view helpers ----------------------------------------------------

    def out_degree(self, element: Element, relation: str = "E") -> int:
        """Out-degree of ``element`` in a binary relation (default ``E``)."""
        self._require_binary(relation)
        return sum(1 for row in self.relations[relation] if row[0] == element)

    def in_degree(self, element: Element, relation: str = "E") -> int:
        """In-degree of ``element`` in a binary relation (default ``E``)."""
        self._require_binary(relation)
        return sum(1 for row in self.relations[relation] if row[1] == element)

    def degree_sets(self, relation: str = "E") -> tuple[frozenset[int], frozenset[int]]:
        """(in(G), out(G)): the sets of in- and out-degrees realized.

        These are the ingredients of the BNDP (Definition 3.3): ``degs(G)``
        is their union, computed by :func:`repro.locality.bndp.degs`.
        """
        self._require_binary(relation)
        out_counts = {element: 0 for element in self.universe}
        in_counts = {element: 0 for element in self.universe}
        for source, target in self.relations[relation]:
            out_counts[source] += 1
            in_counts[target] += 1
        return frozenset(in_counts.values()), frozenset(out_counts.values())

    def max_degree(self) -> int:
        """Maximal Gaifman degree over all elements (0 for a bare set).

        This is the ``k`` of bounded-degree classes in Theorems 3.10/3.11.
        Computed from the Gaifman graph, so it is well defined for every
        signature, not just graphs.
        """
        from repro.structures.gaifman import gaifman_adjacency

        adjacency = gaifman_adjacency(self)
        return max((len(neighbors) for neighbors in adjacency.values()), default=0)

    def is_graph(self) -> bool:
        """Whether the structure is over the one-binary-relation signature."""
        return set(self.signature.relations.items()) == {("E", 2)}

    def _require_binary(self, relation: str) -> None:
        if self.signature.arity(relation) != 2:
            raise StructureError(f"relation {relation!r} is not binary")

    # -- internal memoization -----------------------------------------------

    def cached(self, key: object, compute: Callable[[], object]) -> object:
        """Memoize a per-structure computation (Gaifman graph, WL colors...)."""
        if key not in self._cache:
            self._cache[key] = compute()
        return self._cache[key]
