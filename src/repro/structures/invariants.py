"""Color refinement (1-dimensional Weisfeiler–Leman) for structures.

Color refinement computes an isomorphism-*invariant* partition of the
elements of a structure: elements with different stable colors cannot be
exchanged by any isomorphism. It is used as a cheap pre-filter and
candidate-ordering heuristic by the exact isomorphism search, and to
fingerprint structures before pairwise isomorphism tests (Hanf types).

The refinement is defined for arbitrary relational structures, not just
graphs: the signal an element receives in one round is the multiset of
(relation, position, colors-of-the-other-coordinates) patterns of every
tuple it participates in.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.structures.structure import Element, Structure

__all__ = ["refine_colors", "joint_refine_colors", "structure_fingerprint", "color_classes"]


def _initial_colors(structure: Structure) -> dict[Element, object]:
    constant_names: dict[Element, tuple[str, ...]] = defaultdict(tuple)
    for name in sorted(structure.constants):
        element = structure.constants[name]
        constant_names[element] = constant_names[element] + (name,)
    return {element: ("init", constant_names.get(element, ())) for element in structure.universe}


def _incidence(structure: Structure) -> dict[Element, list[tuple[str, int, tuple]]]:
    """For each element, the list of (relation, position, tuple) incidences."""
    incidence: dict[Element, list[tuple[str, int, tuple]]] = defaultdict(list)
    for name in structure.signature.relation_names():
        for row in structure.relations[name]:
            for position, element in enumerate(row):
                incidence[element].append((name, position, row))
    return incidence


def _refine(
    structures: list[Structure],
) -> list[dict[Element, int]]:
    """Jointly refine colors across several structures until stable.

    Joint refinement gives *comparable* colors: if element a of structure
    A and element b of structure B end with different colors, no
    isomorphism A → B can map a to b.
    """
    tagged: list[tuple[int, Element]] = []
    raw_colors: dict[tuple[int, Element], object] = {}
    incidences: list[dict[Element, list[tuple[str, int, tuple]]]] = []
    for index, structure in enumerate(structures):
        initial = _initial_colors(structure)
        incidences.append(_incidence(structure))
        for element in structure.universe:
            tagged.append((index, element))
            raw_colors[(index, element)] = initial[element]

    colors = _canonicalize(raw_colors)
    while True:
        signals: dict[tuple[int, Element], object] = {}
        for index, element in tagged:
            patterns = Counter()
            for name, position, row in incidences[index].get(element, ()):
                pattern = (
                    name,
                    position,
                    tuple(colors[(index, other)] for other in row),
                )
                patterns[pattern] += 1
            signals[(index, element)] = (
                colors[(index, element)],
                tuple(sorted(patterns.items())),
            )
        new_colors = _canonicalize(signals)
        if _partition_sizes(new_colors) == _partition_sizes(colors):
            colors = new_colors
            break
        colors = new_colors

    return [
        {element: colors[(index, element)] for element in structure.universe}
        for index, structure in enumerate(structures)
    ]


def _canonicalize(raw: dict[tuple[int, Element], object]) -> dict[tuple[int, Element], int]:
    """Map arbitrary color values to small integers, deterministically."""
    ordering = {value: rank for rank, value in enumerate(sorted(set(map(repr, raw.values()))))}
    return {key: ordering[repr(value)] for key, value in raw.items()}


def _partition_sizes(colors: dict) -> int:
    return len(set(colors.values()))


def refine_colors(structure: Structure) -> dict[Element, int]:
    """Stable color-refinement colors of one structure (memoized)."""
    return structure.cached(("wl-colors",), lambda: _refine([structure])[0])  # type: ignore[return-value]


def joint_refine_colors(left: Structure, right: Structure) -> tuple[dict[Element, int], dict[Element, int]]:
    """Comparable stable colors for a pair of structures.

    If the color histograms differ, the structures are not isomorphic
    (the converse does not hold — this is a one-sided test).
    """
    refined = _refine([left, right])
    return refined[0], refined[1]


def color_classes(structure: Structure) -> list[tuple[Element, ...]]:
    """The color-refinement partition as a list of element classes."""
    colors = refine_colors(structure)
    classes: dict[int, list[Element]] = defaultdict(list)
    for element in structure.universe:
        classes[colors[element]].append(element)
    return [tuple(classes[color]) for color in sorted(classes)]


def structure_fingerprint(structure: Structure) -> tuple:
    """An isomorphism-invariant fingerprint of a structure.

    Two isomorphic structures have equal fingerprints; unequal
    fingerprints certify non-isomorphism. The fingerprint combines the
    Gaifman degree sequence with the iterated color-refinement (WL)
    histogram, and is the first-class hash key of the type registry:
    exact isomorphism is only ever attempted between structures whose
    fingerprints collide.
    """

    def compute() -> tuple:
        from repro.structures.gaifman import gaifman_adjacency

        colors = refine_colors(structure)
        histogram = tuple(sorted(Counter(colors.values()).items()))
        relation_counts = tuple(
            (name, len(structure.relations[name]))
            for name in structure.signature.relation_names()
        )
        degrees = tuple(
            sorted(
                Counter(
                    len(neighbors) for neighbors in gaifman_adjacency(structure).values()
                ).items()
            )
        )
        return (structure.size, relation_counts, degrees, histogram)

    return structure.cached(("fingerprint",), compute)  # type: ignore[return-value]
