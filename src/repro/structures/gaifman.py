"""The Gaifman graph, distances, balls, and neighborhoods.

These are the geometric primitives of every locality notion in the paper
(§3.4): the distance d(ā, b), the radius-r ball B_r(ā), and the
r-neighborhood N_r(ā) — the substructure induced by the ball with ā
distinguished.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Iterable

from repro.errors import StructureError
from repro.structures.structure import Element, Structure

__all__ = [
    "gaifman_adjacency",
    "gaifman_graph",
    "distance",
    "ball",
    "neighborhood",
    "connected_components",
    "is_connected",
    "eccentricity",
    "diameter",
]


def gaifman_adjacency(structure: Structure) -> dict[Element, frozenset[Element]]:
    """The Gaifman graph as an adjacency map (memoized per structure).

    Two distinct elements are adjacent iff they co-occur in some tuple of
    some relation. For a graph structure this is the underlying undirected
    graph — exactly the "forget the orientation of edges" convention the
    paper uses for distances.
    """

    def compute() -> dict[Element, frozenset[Element]]:
        adjacency: dict[Element, set[Element]] = {
            element: set() for element in structure.universe
        }
        for name in structure.signature.relation_names():
            for row in structure.relations[name]:
                for first in row:
                    for second in row:
                        if first != second:
                            adjacency[first].add(second)
        return {element: frozenset(neighbors) for element, neighbors in adjacency.items()}

    return structure.cached(("gaifman",), compute)  # type: ignore[return-value]


def gaifman_graph(structure: Structure) -> Structure:
    """The Gaifman graph as a graph structure (symmetric edge relation)."""
    from repro.logic.signature import GRAPH

    adjacency = gaifman_adjacency(structure)
    edges = [
        (element, neighbor)
        for element, neighbors in adjacency.items()
        for neighbor in neighbors
    ]
    return Structure(GRAPH, structure.universe, {"E": edges})


def _bfs_distances(structure: Structure, sources: Iterable[Element]) -> dict[Element, int]:
    adjacency = gaifman_adjacency(structure)
    distances: dict[Element, int] = {}
    queue: deque[Element] = deque()
    for source in sources:
        if source not in structure:
            raise StructureError(f"element {source!r} is not in the universe")
        if source not in distances:
            distances[source] = 0
            queue.append(source)
    while queue:
        current = queue.popleft()
        for neighbor in adjacency[current]:
            if neighbor not in distances:
                distances[neighbor] = distances[current] + 1
                queue.append(neighbor)
    return distances


def _as_centers(
    structure: Structure, center: Element | tuple[Element, ...]
) -> tuple[Element, ...]:
    """Interpret ``center`` as a tuple of universe elements.

    A value that is itself a universe element is a 1-tuple (this takes
    precedence, so structures whose elements are tuples — e.g. disjoint
    unions — work); otherwise a tuple of universe elements is accepted
    as-is.
    """
    if center in structure:
        return (center,)
    if isinstance(center, tuple):
        return center
    raise StructureError(f"center {center!r} is neither an element nor a tuple of elements")


def distance(structure: Structure, sources: Element | tuple[Element, ...], target: Element) -> float:
    """d(ā, b): length of a shortest Gaifman path from any a_i to b.

    Returns ``math.inf`` if b is unreachable from every source — the
    convention that makes "N_r(ā) is a disjoint union of components"
    statements work.
    """
    sources = _as_centers(structure, sources)
    if target not in structure:
        raise StructureError(f"element {target!r} is not in the universe")
    distances = _bfs_distances(structure, sources)
    return distances.get(target, math.inf)


def ball(structure: Structure, center: Element | tuple[Element, ...], radius: int) -> frozenset[Element]:
    """B_r(ā) = {b : d(ā, b) ≤ r}, the radius-r ball around ā."""
    if radius < 0:
        raise StructureError(f"radius must be non-negative, got {radius}")
    center = _as_centers(structure, center)
    distances = _bfs_distances(structure, center)
    return frozenset(element for element, dist in distances.items() if dist <= radius)


def neighborhood(
    structure: Structure,
    center: Element | tuple[Element, ...],
    radius: int,
    mark_prefix: str = "@",
) -> Structure:
    """N_r(ā): the substructure induced by B_r(ā) with ā distinguished.

    Distinguished elements are encoded as fresh singleton unary relations
    ``@0, @1, ...`` so that plain isomorphism between two neighborhoods is
    exactly isomorphism with h(a_i) = b_i, as the paper requires.
    """
    center = _as_centers(structure, center)
    members = ball(structure, center, radius)
    induced = structure.induced(members)
    return induced.with_distinguished(center, prefix=mark_prefix)


def connected_components(structure: Structure) -> list[frozenset[Element]]:
    """Connected components of the Gaifman graph, deterministic order."""
    remaining = set(structure.universe)
    components: list[frozenset[Element]] = []
    for element in structure.universe:
        if element not in remaining:
            continue
        distances = _bfs_distances(structure, (element,))
        component = frozenset(distances)
        components.append(component)
        remaining -= component
    return components


def is_connected(structure: Structure) -> bool:
    """Whether the Gaifman graph is connected (the CONN query, §3.3)."""
    return len(connected_components(structure)) == 1


def eccentricity(structure: Structure, element: Element) -> float:
    """Largest Gaifman distance from ``element`` (inf if disconnected)."""
    distances = _bfs_distances(structure, (element,))
    if len(distances) != structure.size:
        return math.inf
    return max(distances.values())


def diameter(structure: Structure) -> float:
    """Largest Gaifman distance between any two elements (inf if disconnected)."""
    best = 0.0
    for element in structure.universe:
        ecc = eccentricity(structure, element)
        if math.isinf(ecc):
            return math.inf
        best = max(best, ecc)
    return best
