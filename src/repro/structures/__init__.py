"""Finite relational structures and their geometry (S2).

The database substrate: structures, canonical families, isomorphism,
color refinement, and the Gaifman graph with its balls and neighborhoods.
"""

from repro.structures.builders import (
    bare_set,
    complete_graph,
    directed_chain,
    directed_cycle,
    disjoint_cycles,
    empty_graph,
    full_binary_tree,
    graph_from_edges,
    grid_graph,
    linear_order,
    random_graph,
    random_structure,
    random_tournament,
    star_graph,
    successor,
    undirected_chain,
    undirected_cycle,
)
from repro.structures.gaifman import (
    ball,
    connected_components,
    diameter,
    distance,
    gaifman_adjacency,
    gaifman_graph,
    is_connected,
    neighborhood,
)
from repro.structures.invariants import (
    color_classes,
    joint_refine_colors,
    refine_colors,
    structure_fingerprint,
)
from repro.structures.isomorphism import (
    are_isomorphic,
    count_automorphisms,
    find_isomorphism,
    is_partial_isomorphism,
    isomorphism_classes,
)
from repro.structures.structure import Element, Structure

__all__ = [
    "Structure", "Element",
    # builders
    "bare_set", "linear_order", "successor", "directed_chain",
    "directed_cycle", "undirected_chain", "undirected_cycle",
    "complete_graph", "empty_graph", "full_binary_tree", "grid_graph",
    "star_graph", "disjoint_cycles", "graph_from_edges", "random_graph",
    "random_structure", "random_tournament",
    # gaifman
    "gaifman_adjacency", "gaifman_graph", "distance", "ball",
    "neighborhood", "connected_components", "is_connected", "diameter",
    # invariants
    "refine_colors", "joint_refine_colors", "color_classes",
    "structure_fingerprint",
    # isomorphism
    "is_partial_isomorphism", "find_isomorphism", "are_isomorphic",
    "count_automorphisms", "isomorphism_classes",
]
