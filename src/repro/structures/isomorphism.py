"""Exact isomorphism and partial isomorphism for finite structures.

Partial isomorphism (slide 38 / the winning condition of the EF game) and
full isomorphism search. The search is backtracking, guided by joint
color refinement: candidates are restricted to equal-colored elements,
which makes the common cases (neighborhood types, small game positions)
fast while remaining exact.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Iterable

from repro.errors import StructureError
from repro.structures.invariants import joint_refine_colors, structure_fingerprint
from repro.structures.structure import Element, Structure

__all__ = [
    "is_partial_isomorphism",
    "extends_partial_isomorphism",
    "find_isomorphism",
    "are_isomorphic",
    "count_automorphisms",
    "isomorphism_classes",
]


def is_partial_isomorphism(
    left: Structure,
    right: Structure,
    pairs: Iterable[tuple[Element, Element]],
) -> bool:
    """Whether the given pairs form a partial isomorphism left → right.

    Following the definition in the paper, the map must:

    * be a well-defined injective function (``a_i = a_j`` iff ``b_i = b_j``),
    * include every constant pair ``(c^A, c^B)`` consistently, and
    * preserve and reflect every relation on its domain:
      ``R^A(ā)`` iff ``R^B(f(ā))`` for tuples over the domain.
    """
    if left.signature != right.signature:
        return False
    mapping: dict[Element, Element] = {}
    inverse: dict[Element, Element] = {}
    for name in left.signature.constants:
        mapping[left.constant(name)] = right.constant(name)
        inverse[right.constant(name)] = left.constant(name)
        if len(mapping) != len(inverse):
            return False
    for a, b in pairs:
        if a not in left or b not in right:
            raise StructureError(f"pair ({a!r}, {b!r}) is outside the structures' universes")
        if mapping.get(a, b) != b or inverse.get(b, a) != a:
            return False
        mapping[a] = b
        inverse[b] = a
    return _preserves_relations(left, right, mapping)


def _preserves_relations(
    left: Structure,
    right: Structure,
    mapping: dict[Element, Element],
) -> bool:
    domain = set(mapping)
    image = set(mapping.values())
    for name in left.signature.relation_names():
        arity = left.signature.arity(name)
        left_rows = {
            row for row in left.relations[name] if all(value in domain for value in row)
        }
        right_rows = {
            row for row in right.relations[name] if all(value in image for value in row)
        }
        if {tuple(mapping[value] for value in row) for row in left_rows} != right_rows:
            return False
        if arity == 0:  # pragma: no cover - arities are >= 1 by Signature
            continue
    return True


def extends_partial_isomorphism(
    left: Structure,
    right: Structure,
    mapping: dict[Element, Element],
    inverse: dict[Element, Element],
    a: Element,
    b: Element,
) -> bool:
    """Incremental check: does adding the pair (a, b) keep a partial iso?

    Assumes ``mapping``/``inverse`` already form a partial isomorphism.
    Only tuples involving ``a`` (resp. ``b``) are re-examined, which is
    what makes the EF game solver's inner loop affordable.
    """
    if a in mapping or b in inverse:
        return mapping.get(a) == b and inverse.get(b) == a
    new_mapping = dict(mapping)
    new_mapping[a] = b
    domain = set(new_mapping)
    image = set(new_mapping.values())
    for name in left.signature.relation_names():
        left_rows = {
            row
            for row in left.relations[name]
            if a in row and all(value in domain for value in row)
        }
        right_rows = {
            row
            for row in right.relations[name]
            if b in row and all(value in image for value in row)
        }
        if {tuple(new_mapping[value] for value in row) for row in left_rows} != right_rows:
            return False
    return True


def find_isomorphism(left: Structure, right: Structure) -> dict[Element, Element] | None:
    """Find an isomorphism left → right, or return ``None``.

    Exact backtracking search over color-refinement classes. Worst-case
    exponential (graph isomorphism has no known polynomial algorithm),
    but the refinement makes all structures arising in this library's
    experiments fast.
    """
    if left.signature != right.signature or left.size != right.size:
        return None
    for name in left.signature.relation_names():
        if len(left.relations[name]) != len(right.relations[name]):
            return None
    if structure_fingerprint(left) != structure_fingerprint(right):
        return None

    left_colors, right_colors = joint_refine_colors(left, right)
    if Counter(left_colors.values()) != Counter(right_colors.values()):
        return None

    right_by_color: dict[int, list[Element]] = defaultdict(list)
    for element in right.universe:
        right_by_color[right_colors[element]].append(element)

    # Order left elements so the most constrained (rarest color) come first.
    order = sorted(
        left.universe,
        key=lambda element: (len(right_by_color[left_colors[element]]), repr(element)),
    )

    mapping: dict[Element, Element] = {}
    inverse: dict[Element, Element] = {}
    for name in left.signature.constants:
        a, b = left.constant(name), right.constant(name)
        if left_colors[a] != right_colors[b]:
            return None
        if mapping.get(a, b) != b or inverse.get(b, a) != a:
            return None
        if a not in mapping:
            if not extends_partial_isomorphism(left, right, mapping, inverse, a, b):
                return None
            mapping[a] = b
            inverse[b] = a

    def backtrack(index: int) -> bool:
        if index == len(order):
            return True
        a = order[index]
        if a in mapping:
            return backtrack(index + 1)
        for b in right_by_color[left_colors[a]]:
            if b in inverse:
                continue
            if extends_partial_isomorphism(left, right, mapping, inverse, a, b):
                mapping[a] = b
                inverse[b] = a
                if backtrack(index + 1):
                    return True
                del mapping[a]
                del inverse[b]
        return False

    if backtrack(0):
        return dict(mapping)
    return None


def are_isomorphic(left: Structure, right: Structure) -> bool:
    """Whether the two structures are isomorphic (A ≅ B)."""
    return find_isomorphism(left, right) is not None


def count_automorphisms(structure: Structure, limit: int = 10**6) -> int:
    """Count the automorphisms of a structure (up to ``limit``).

    Useful in tests: e.g. a directed cycle of length n has exactly n
    automorphisms, a bare n-set has n! of them.
    """
    from repro.structures.invariants import refine_colors

    colors = refine_colors(structure)
    by_color: dict[int, list[Element]] = defaultdict(list)
    for element in structure.universe:
        by_color[colors[element]].append(element)
    order = sorted(
        structure.universe,
        key=lambda element: (len(by_color[colors[element]]), repr(element)),
    )

    mapping: dict[Element, Element] = {}
    inverse: dict[Element, Element] = {}
    count = 0

    def backtrack(index: int) -> None:
        nonlocal count
        if count >= limit:
            return
        if index == len(order):
            count += 1
            return
        a = order[index]
        for b in by_color[colors[a]]:
            if b in inverse:
                continue
            if extends_partial_isomorphism(structure, structure, mapping, inverse, a, b):
                mapping[a] = b
                inverse[b] = a
                backtrack(index + 1)
                del mapping[a]
                del inverse[b]

    backtrack(0)
    return count


def isomorphism_classes(structures: Iterable[Structure]) -> list[list[Structure]]:
    """Partition structures into isomorphism classes.

    Structures are first bucketed by invariant fingerprint, then compared
    pairwise inside each bucket. Used to compute the multiset of
    neighborhood types for Hanf equivalence.
    """
    buckets: dict[tuple, list[list[Structure]]] = defaultdict(list)
    for structure in structures:
        fingerprint = structure_fingerprint(structure)
        for cls in buckets[fingerprint]:
            if are_isomorphic(cls[0], structure):
                cls.append(structure)
                break
        else:
            buckets[fingerprint].append([structure])
    classes: list[list[Structure]] = []
    for groups in buckets.values():
        classes.extend(groups)
    return classes
