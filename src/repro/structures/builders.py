"""Constructors for the structure families used throughout the paper.

These are the A_n / B_n families of every inexpressibility argument:
bare sets, linear orders L_n, successor structures, chains, cycles,
full binary trees, and uniform random structures (for the 0–1 law).
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.errors import StructureError
from repro.logic.signature import GRAPH, ORDER, SET, SUCCESSOR, Signature
from repro.structures.structure import Element, Structure

__all__ = [
    "bare_set",
    "linear_order",
    "successor",
    "directed_chain",
    "directed_cycle",
    "undirected_chain",
    "undirected_cycle",
    "complete_graph",
    "empty_graph",
    "full_binary_tree",
    "grid_graph",
    "star_graph",
    "disjoint_cycles",
    "graph_from_edges",
    "random_graph",
    "random_structure",
    "random_tournament",
]


def bare_set(n: int) -> Structure:
    """An n-element structure over the empty signature (§3.2's easy case)."""
    _require_positive(n)
    return Structure(SET, range(n))


def linear_order(n: int) -> Structure:
    """L_n: the n-element strict linear order 0 < 1 < ... < n-1."""
    _require_positive(n)
    pairs = [(i, j) for i in range(n) for j in range(n) if i < j]
    return Structure(ORDER, range(n), {"<": pairs})


def successor(n: int) -> Structure:
    """The n-element successor structure S(0,1), S(1,2), ..., S(n-2,n-1)."""
    _require_positive(n)
    return Structure(SUCCESSOR, range(n), {"S": [(i, i + 1) for i in range(n - 1)]})


def directed_chain(n: int) -> Structure:
    """A directed path on n nodes over the graph signature.

    This is the graph ``{(a_1,a_2), ..., (a_{n-1},a_n)}`` of §3.4 whose
    transitive closure realizes n-1 distinct degrees.
    """
    _require_positive(n)
    return Structure(GRAPH, range(n), {"E": [(i, i + 1) for i in range(n - 1)]})


def directed_cycle(n: int) -> Structure:
    """A directed cycle on n nodes."""
    _require_positive(n)
    return Structure(GRAPH, range(n), {"E": [(i, (i + 1) % n) for i in range(n)]})


def undirected_chain(n: int) -> Structure:
    """A path on n nodes with edges in both directions (undirected view)."""
    _require_positive(n)
    edges = []
    for i in range(n - 1):
        edges.append((i, i + 1))
        edges.append((i + 1, i))
    return Structure(GRAPH, range(n), {"E": edges})


def undirected_cycle(n: int) -> Structure:
    """A cycle on n ≥ 3 nodes with edges in both directions.

    These are the C_m of the Hanf-locality example (E8).
    """
    if n < 3:
        raise StructureError(f"an undirected cycle needs at least 3 nodes, got {n}")
    edges = []
    for i in range(n):
        j = (i + 1) % n
        edges.append((i, j))
        edges.append((j, i))
    return Structure(GRAPH, range(n), {"E": edges})


def disjoint_cycles(lengths: Iterable[int]) -> Structure:
    """A disjoint union of undirected cycles of the given lengths.

    ``disjoint_cycles([m, m])`` vs :func:`undirected_cycle` of ``2m`` is
    the canonical Hanf-locality pair of the paper's figure.
    """
    lengths = list(lengths)
    if not lengths:
        raise StructureError("need at least one cycle")
    nodes: list[Element] = []
    edges: list[tuple[Element, Element]] = []
    for index, length in enumerate(lengths):
        if length < 3:
            raise StructureError(f"an undirected cycle needs at least 3 nodes, got {length}")
        ring = [(index, k) for k in range(length)]
        nodes.extend(ring)
        for k in range(length):
            a, b = ring[k], ring[(k + 1) % length]
            edges.append((a, b))
            edges.append((b, a))
    return Structure(GRAPH, nodes, {"E": edges})


def complete_graph(n: int, loops: bool = False) -> Structure:
    """The complete directed graph on n nodes (optionally with loops)."""
    _require_positive(n)
    edges = [(i, j) for i in range(n) for j in range(n) if loops or i != j]
    return Structure(GRAPH, range(n), {"E": edges})


def empty_graph(n: int) -> Structure:
    """n isolated nodes over the graph signature."""
    _require_positive(n)
    return Structure(GRAPH, range(n), {"E": []})


def star_graph(n: int) -> Structure:
    """A star: node 0 with undirected edges to nodes 1..n-1."""
    _require_positive(n)
    edges = []
    for i in range(1, n):
        edges.append((0, i))
        edges.append((i, 0))
    return Structure(GRAPH, range(n), {"E": edges})


def full_binary_tree(depth: int, undirected: bool = False) -> Structure:
    """The full binary tree of the given depth, edges parent→child.

    Nodes are the integers 1 .. 2^(depth+1)-1 in heap order (children of
    ``v`` are ``2v`` and ``2v+1``). Depth 0 is a single root. This is the
    input of the same-generation BNDP example (E6).
    """
    if depth < 0:
        raise StructureError(f"depth must be non-negative, got {depth}")
    count = 2 ** (depth + 1) - 1
    nodes = range(1, count + 1)
    edges = []
    for node in nodes:
        for child in (2 * node, 2 * node + 1):
            if child <= count:
                edges.append((node, child))
                if undirected:
                    edges.append((child, node))
    return Structure(GRAPH, nodes, {"E": edges})


def grid_graph(rows: int, cols: int) -> Structure:
    """An undirected rows × cols grid (degree ≤ 4, for bounded-degree demos)."""
    _require_positive(rows)
    _require_positive(cols)
    nodes = [(r, c) for r in range(rows) for c in range(cols)]
    edges = []
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                edges.append(((r, c), (r + 1, c)))
                edges.append(((r + 1, c), (r, c)))
            if c + 1 < cols:
                edges.append(((r, c), (r, c + 1)))
                edges.append(((r, c + 1), (r, c)))
    return Structure(GRAPH, nodes, {"E": edges})


def graph_from_edges(edges: Iterable[tuple[Element, Element]], nodes: Iterable[Element] = ()) -> Structure:
    """A graph from an edge list (plus optional extra isolated nodes)."""
    edges = [tuple(edge) for edge in edges]
    universe = list(nodes)
    for source, target in edges:
        universe.append(source)
        universe.append(target)
    if not universe:
        raise StructureError("graph_from_edges needs at least one node")
    return Structure(GRAPH, universe, {"E": edges})


def random_graph(n: int, p: float = 0.5, seed: int | None = None, undirected: bool = False) -> Structure:
    """A uniform random (di)graph G(n, p), loop-free.

    With ``p = 0.5`` this is the uniform distribution on labelled graphs —
    the measure μ_n of the 0–1 law (E12).
    """
    _require_positive(n)
    rng = random.Random(seed)
    edges = []
    if undirected:
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < p:
                    edges.append((i, j))
                    edges.append((j, i))
    else:
        for i in range(n):
            for j in range(n):
                if i != j and rng.random() < p:
                    edges.append((i, j))
    return Structure(GRAPH, range(n), {"E": edges})


def random_structure(signature: Signature, n: int, p: float = 0.5, seed: int | None = None) -> Structure:
    """A uniform random structure over any relational signature.

    Every possible tuple of every relation is included independently with
    probability ``p``; with ``p = 0.5`` this samples STRUC(σ, n) uniformly,
    exactly the probability space of the 0–1 law's μ_n.
    """
    _require_positive(n)
    if signature.constants:
        raise StructureError("random_structure requires a purely relational signature")
    rng = random.Random(seed)
    relations: dict[str, list[tuple]] = {}
    for name in signature.relation_names():
        arity = signature.arity(name)
        tuples = []
        for row in _all_tuples(range(n), arity):
            if rng.random() < p:
                tuples.append(row)
        relations[name] = tuples
    return Structure(signature, range(n), relations)


def random_tournament(n: int, seed: int | None = None) -> Structure:
    """A random tournament: exactly one direction of each edge, uniformly."""
    _require_positive(n)
    rng = random.Random(seed)
    edges = []
    for i in range(n):
        for j in range(i + 1, n):
            edges.append((i, j) if rng.random() < 0.5 else (j, i))
    return Structure(GRAPH, range(n), {"E": edges})


def _all_tuples(domain: Iterable[Element], arity: int):
    domain = list(domain)
    if arity == 0:
        yield ()
        return
    indices = [0] * arity
    size = len(domain)
    while True:
        yield tuple(domain[i] for i in indices)
        position = arity - 1
        while position >= 0:
            indices[position] += 1
            if indices[position] < size:
                break
            indices[position] = 0
            position -= 1
        if position < 0:
            return


def _require_positive(n: int) -> None:
    if n < 1:
        raise StructureError(f"size must be at least 1, got {n}")
