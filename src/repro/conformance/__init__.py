"""Differential & metamorphic conformance fuzzing for every evaluation path.

After the engine / circuits / bounded-degree / parallel PRs the library
has *five* independent ways to answer the same FO query.  This package
is the correctness backbone that cross-checks them:

* :mod:`repro.conformance.generate` — seeded, size-budgeted random
  structures and formulas (shared with ``tests/strategies.py``);
* :mod:`repro.conformance.backends` — every evaluation path behind one
  ``answers(structure, formula)`` interface with applicability
  predicates;
* :mod:`repro.conformance.oracles` — metamorphic relations derived from
  the paper's theorems (isomorphism invariance, negation duality,
  disjoint-union/Hanf composition, EF rank-r transfer);
* :mod:`repro.conformance.runner` — the differential runner that
  cross-checks all applicable backends pairwise plus the oracles;
* :mod:`repro.conformance.shrink` — a delta-debugging minimizer for
  failing cases;
* :mod:`repro.conformance.corpus` / :mod:`repro.conformance.serialize`
  — the replayable regression corpus under ``tests/corpus/``.

Drive it with ``python -m repro.conformance --seed 0 --budget 200``.
"""

from __future__ import annotations

from repro.conformance.backends import (
    Backend,
    BackendRegistry,
    default_registry,
    remote_backend,
)
from repro.conformance.corpus import load_corpus, save_case
from repro.conformance.generate import (
    Case,
    CaseGenerator,
    FormulaGenerator,
    StructureGenerator,
)
from repro.conformance.oracles import Oracle, default_oracles
from repro.conformance.runner import ConformanceReport, Failure, Runner
from repro.conformance.serialize import (
    case_from_json,
    case_to_json,
    format_formula,
)
from repro.conformance.shrink import shrink_case

__all__ = [
    "Backend",
    "BackendRegistry",
    "Case",
    "CaseGenerator",
    "ConformanceReport",
    "Failure",
    "FormulaGenerator",
    "Oracle",
    "Runner",
    "StructureGenerator",
    "case_from_json",
    "case_to_json",
    "default_oracles",
    "default_registry",
    "format_formula",
    "load_corpus",
    "remote_backend",
    "save_case",
    "shrink_case",
]
