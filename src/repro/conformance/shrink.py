"""Delta-debugging minimizer for failing conformance cases.

Given a failing case and a predicate ("does this candidate still exhibit
the failure?" — built by :meth:`Runner.failure_predicate`), the shrinker
greedily applies structure- and formula-level reductions until a fixed
point, in the spirit of ddmin / Hypothesis shrinking:

* drop a universe element (induced substructure);
* drop one relation tuple;
* replace the formula by one of its immediate subformulas (repeated
  passes walk arbitrarily deep) or by ⊤/⊥;
* finally, relabel the universe to the canonical ``0..n-1`` (this is
  what turns disjoint-union tag tuples back into small ints, so the
  serialized regression is readable).

Every candidate is re-validated through the predicate, so reductions
that change applicability (freeing a variable, raising the degree) are
simply rejected.  The number of predicate evaluations is capped; the
minimum found so far is returned when the budget runs out.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.conformance.generate import Case
from repro.errors import StructureError
from repro.logic.analysis import formula_size
from repro.logic.syntax import (
    FALSE,
    TRUE,
    And,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
)
from repro.structures.structure import Structure

__all__ = ["shrink_case"]


def _subformula_candidates(formula: Formula) -> Iterator[Formula]:
    if isinstance(formula, Not):
        yield formula.body
    elif isinstance(formula, (Exists, Forall)):
        yield formula.body
    elif isinstance(formula, (And, Or)):
        for child in formula.children:
            yield child
        if len(formula.children) > 2:
            kind = type(formula)
            for index in range(len(formula.children)):
                rest = formula.children[:index] + formula.children[index + 1 :]
                yield kind(rest)
    elif isinstance(formula, Implies):
        yield formula.premise
        yield formula.conclusion
    elif isinstance(formula, Iff):
        yield formula.left
        yield formula.right
    if not isinstance(formula, (type(TRUE), type(FALSE))):
        yield TRUE
        yield FALSE


def _element_removals(structure: Structure) -> Iterator[Structure]:
    if structure.size <= 1:
        return
    protected = set(structure.constants.values())
    for element in structure.universe:
        if element in protected:
            continue
        keep = [other for other in structure.universe if other != element]
        try:
            yield structure.induced(keep)
        except StructureError:  # pragma: no cover - guarded by `protected`
            continue


def _tuple_removals(structure: Structure) -> Iterator[Structure]:
    for name, tuples in sorted(structure.relations.items()):
        for row in sorted(tuples, key=repr):
            relations = {
                other: (values - {row} if other == name else values)
                for other, values in structure.relations.items()
            }
            yield Structure(
                structure.signature, structure.universe, relations, structure.constants
            )


def _canonical_relabel(structure: Structure) -> Structure:
    mapping = {element: index for index, element in enumerate(structure.universe)}
    return structure.relabel(mapping)


def shrink_case(
    case: Case,
    still_fails: Callable[[Case], bool],
    max_checks: int = 2000,
) -> Case:
    """Minimize ``case`` while ``still_fails`` holds; returns the minimum.

    The returned case keeps the original seed (oracle-derived inputs are
    functions of it) and gets a ``-shrunk`` name suffix when any
    reduction landed.
    """
    checks = 0

    def attempt(candidate: Case) -> bool:
        nonlocal checks
        if checks >= max_checks:
            return False
        checks += 1
        return still_fails(candidate)

    def with_parts(structure: Structure, formula: Formula) -> Case:
        return Case(
            name=f"{case.name}-shrunk",
            structure=structure,
            formula=formula,
            seed=case.seed,
            description=case.description,
        )

    current = case
    improved = True
    while improved and checks < max_checks:
        improved = False
        for smaller in _element_removals(current.structure):
            candidate = with_parts(smaller, current.formula)
            if attempt(candidate):
                current = candidate
                improved = True
                break
        if improved:
            continue
        replacements = sorted(
            _subformula_candidates(current.formula), key=formula_size
        )
        for replacement in replacements:
            if replacement == current.formula:
                continue
            candidate = with_parts(current.structure, replacement)
            if attempt(candidate):
                current = candidate
                improved = True
                break
        if improved:
            continue
        for smaller in _tuple_removals(current.structure):
            candidate = with_parts(smaller, current.formula)
            if attempt(candidate):
                current = candidate
                improved = True
                break

    relabeled = with_parts(_canonical_relabel(current.structure), current.formula)
    if current is not case and attempt(relabeled):
        current = relabeled
    if current is case:
        return case
    return current
