"""Every evaluation path in the library behind one answers() interface.

The library can answer ``ans(φ, A)`` five independent ways:

====================  =====================================================
``naive``             the recursive model checker (PSPACE upper bound, §3.1)
``algebra``           the FO → relational algebra compiler (FO = RA)
``engine``            the planned/cached engine, fast path included
``engine-batch``      the engine's batched APIs (parallel execution path)
``engine-columnar``   the engine with the columnar tier forced
                      (``executor="columnar"``): compiled integer-key
                      kernel pipelines instead of the tuple executor
``circuit``           the AC⁰ circuit family (FO ⊆ AC⁰ construction)
``bounded-degree``    the census evaluator (Thms 3.10/3.11), table shared
                      across structures so the Hanf memoization itself is
                      under differential test
====================  =====================================================

``resilient``         the :class:`~repro.resilience.fallback.FallbackChain`
                      (engine → census → naive), under whatever fault
                      injection and budgets the run configures

Each is wrapped as a :class:`Backend` with an *applicability predicate*
(circuits need constant-free sentences, the census evaluator needs the
degree bound, ...).  The differential runner cross-checks all applicable
backends pairwise on every generated case.

Backends that can honor a budget also carry a ``budget_fn``; the runner
hands each call a fresh :class:`~repro.resilience.budget.CancelToken`
when the run has a deadline (``--deadline-ms``), and treats a resulting
:class:`~repro.errors.BudgetExceededError` as an *allowed* outcome — a
typed refusal, never a wrong answer.

Backends hold caches on purpose (the engine's plan/answer caches, the
census truth table): a cache that leaks a wrong answer across cases is a
bug this suite exists to catch.  Call :meth:`BackendRegistry.reset` for
a cold start.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.conformance.generate import Case
from repro.errors import BudgetExceededError, FMTError
from repro.eval.circuits import compile_query, evaluate_circuit
from repro.eval.evaluator import answers as naive_answers
from repro.eval.translate import algebra_answers
from repro.engine.engine import Engine
from repro.locality.bounded_degree import BoundedDegreeEvaluator
from repro.logic.analysis import constants_of, free_variables, quantifier_rank
from repro.logic.syntax import Formula
from repro.resilience.budget import CancelToken
from repro.resilience.fallback import default_chain
from repro.structures.structure import Element, Structure

__all__ = [
    "Backend",
    "BackendRegistry",
    "default_registry",
    "remote_backend",
    "DEFAULT_BACKENDS",
]

Answers = frozenset[tuple[Element, ...]]

#: Quantifier-rank ceiling for the census evaluator: the sound Hanf
#: radius is (3^qr − 1)/2, and past this rank the census of even a tiny
#: structure degenerates to "the whole structure per ball" — legal but
#: pointless, and slow once the fuzz budget climbs.
_CENSUS_MAX_RANK = 4

TRUE_ANSWER: Answers = frozenset({()})
FALSE_ANSWER: Answers = frozenset()


@dataclass
class Backend:
    """One evaluation path: a name, an answer function, an applicability
    predicate, and a reset hook for cache-holding backends."""

    name: str
    answer_fn: Callable[[Structure, Formula], Answers]
    applicable_fn: Callable[[Structure, Formula], tuple[bool, str]] | None = None
    reset_fn: Callable[[], None] | None = None
    budget_fn: Callable[[Structure, Formula, CancelToken], Answers] | None = None

    def applicable(self, structure: Structure, formula: Formula) -> tuple[bool, str]:
        if self.applicable_fn is None:
            return True, "always applicable"
        return self.applicable_fn(structure, formula)

    def answers(
        self,
        structure: Structure,
        formula: Formula,
        budget: CancelToken | None = None,
    ) -> Answers:
        """ans(φ, A) with columns in sorted free-variable-name order.

        Sentences return ``{()}`` (true) or ``∅`` (false), matching
        :func:`repro.eval.evaluator.answers`.  When a ``budget`` token is
        supplied and this backend knows how to honor one (``budget_fn``),
        the call may raise :class:`~repro.errors.BudgetExceededError`
        instead of running long; backends without a ``budget_fn`` ignore
        the token (they simply run unbudgeted).
        """
        if budget is not None and self.budget_fn is not None:
            return self.budget_fn(structure, formula, budget)
        return self.answer_fn(structure, formula)

    def reset(self) -> None:
        if self.reset_fn is not None:
            self.reset_fn()

    def __repr__(self) -> str:
        return f"Backend({self.name})"


@dataclass
class BackendRegistry:
    """A named collection of backends with selection helpers."""

    backends: dict[str, Backend] = field(default_factory=dict)

    def register(self, backend: Backend) -> Backend:
        if backend.name in self.backends:
            raise FMTError(f"backend {backend.name!r} registered twice")
        self.backends[backend.name] = backend
        return backend

    def get(self, name: str) -> Backend:
        try:
            return self.backends[name]
        except KeyError:
            raise FMTError(
                f"unknown backend {name!r}; registered: {sorted(self.backends)}"
            ) from None

    def names(self) -> tuple[str, ...]:
        return tuple(self.backends)

    def select(self, names: list[str] | None) -> list[Backend]:
        if names is None:
            return list(self.backends.values())
        return [self.get(name) for name in names]

    def applicable(self, case: Case, names: list[str] | None = None) -> list[Backend]:
        return [
            backend
            for backend in self.select(names)
            if backend.applicable(case.structure, case.formula)[0]
        ]

    def reset(self) -> None:
        for backend in self.backends.values():
            backend.reset()


# -- the default backends ----------------------------------------------------


def _sentence_answers(value: bool) -> Answers:
    return TRUE_ANSWER if value else FALSE_ANSWER


def _constant_free(structure: Structure, formula: Formula) -> tuple[bool, str]:
    if structure.constants or constants_of(formula):
        return False, "constants present"
    return True, ""


def _engine_backend(name: str, batched: bool, executor: str | None = None) -> Backend:
    engine = Engine(domain="universe", executor=executor)

    def compute(
        structure: Structure, formula: Formula, token: CancelToken | None = None
    ) -> Answers:
        if batched:
            if free_variables(formula):
                return engine.answers_batch([(structure, formula)], budget=token)[0]
            return _sentence_answers(
                engine.evaluate_batch([(structure, formula)], budget=token)[0]
            )
        if free_variables(formula):
            return engine.answers(structure, formula, budget=token)
        # evaluate() (not answers()) so the Theorem 3.11 fast-path
        # dispatch is part of the differential surface.
        return _sentence_answers(engine.evaluate(structure, formula, budget=token))

    def reset() -> None:
        engine.clear_caches()
        engine.reset_stats()

    backend = Backend(name, compute, reset_fn=reset, budget_fn=compute)
    backend.engine = engine  # type: ignore[attr-defined] — introspection for tests
    return backend


def _circuit_backend() -> Backend:
    compiled: dict[tuple, object] = {}

    def applicable(structure: Structure, formula: Formula) -> tuple[bool, str]:
        if free_variables(formula):
            return False, "not a sentence"
        if structure.signature.constants or constants_of(formula):
            return False, "constants present"
        return True, ""

    def compute(structure: Structure, formula: Formula) -> Answers:
        n = structure.size
        key = (formula, structure.signature, n)
        circuit = compiled.get(key)
        if circuit is None:
            circuit = compile_query(formula, structure.signature, n)
            compiled[key] = circuit
        # The construction fixes the universe to [n]; relabel through the
        # structure's canonical element order.
        position = {element: index for index, element in enumerate(structure.universe)}
        relabeled = structure.relabel(position)
        return _sentence_answers(evaluate_circuit(circuit, relabeled))

    return Backend("circuit", compute, applicable, reset_fn=compiled.clear)


def _bounded_degree_backend(degree_bound: int) -> Backend:
    evaluators: dict[Formula, BoundedDegreeEvaluator] = {}

    def applicable(structure: Structure, formula: Formula) -> tuple[bool, str]:
        if free_variables(formula):
            return False, "not a sentence"
        ok, reason = _constant_free(structure, formula)
        if not ok:
            return False, reason
        rank = quantifier_rank(formula)
        if rank > _CENSUS_MAX_RANK:
            return False, f"quantifier rank {rank} > census cap {_CENSUS_MAX_RANK}"
        degree = structure.max_degree()
        if degree > degree_bound:
            return False, f"Gaifman degree {degree} > bound {degree_bound}"
        return True, ""

    def compute(
        structure: Structure, formula: Formula, token: CancelToken | None = None
    ) -> Answers:
        evaluator = evaluators.get(formula)
        if evaluator is None:
            evaluator = BoundedDegreeEvaluator(formula, degree_bound=degree_bound)
            evaluators[formula] = evaluator
        return _sentence_answers(evaluator.evaluate(structure, cancel_token=token))

    return Backend(
        "bounded-degree", compute, applicable, reset_fn=evaluators.clear, budget_fn=compute
    )


def _resilient_backend(degree_bound: int) -> Backend:
    holder: dict[str, object] = {}

    def chain():
        existing = holder.get("chain")
        if existing is None:
            existing = default_chain(degree_bound=degree_bound)
            holder["chain"] = existing
        return existing

    def compute(
        structure: Structure, formula: Formula, token: CancelToken | None = None
    ) -> Answers:
        return chain().answers(structure, formula, budget=token)

    return Backend("resilient", compute, reset_fn=holder.clear, budget_fn=compute)


def remote_backend(base_url: str, tenant: str = "conformance") -> Backend:
    """A backend that answers over a live ``repro.server`` socket.

    This puts the *entire serving stack* under differential test: the
    wire encoding both ways, prepared-query session state, the server's
    shared caches, its admission control, and its fallback chain — all
    cross-checked against the in-process backends on every case.

    The backend keeps a client-side session: structures upload once
    (content-addressed server-side, so re-uploads are idempotent anyway)
    and each distinct formula is prepared once, then executed many times
    — exactly the prepare-once/execute-many flow a real client uses.
    Large answer sets stream back page by page.

    A 429/503 with ``error.refusal`` re-raises as
    :class:`~repro.errors.BudgetExceededError`, so the runner counts a
    typed server refusal exactly like a local one.  Any other non-200 is
    a conformance *failure* (kind ``error``) — the server is not allowed
    to fail requests the in-process engines can answer.

    Every call additionally sends a fresh client-minted ``trace_id`` and
    **strictly asserts the echo** — on success pages and on typed error
    bodies alike.  A missing or different id is a conformance failure:
    wire format v1 guarantees trace correlation, so an un-echoed id
    would break every client trying to join its calls against the
    server's span trees and access log.
    """
    import json
    import urllib.error
    import urllib.request

    from repro.server import wire
    from repro.telemetry.context import new_trace_id

    base = base_url.rstrip("/")
    structure_ids: dict[Structure, str] = {}
    prepared_names: dict[tuple[Formula, frozenset], str] = {}

    def call(path: str, payload: dict) -> tuple[int, dict]:
        sent_trace_id = new_trace_id()
        payload = dict(payload, trace_id=sent_trace_id)
        request = urllib.request.Request(
            base + path,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=120) as response:
                status, decoded = response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            body = error.read()
            try:
                decoded = json.loads(body)
            except json.JSONDecodeError:
                decoded = {"error": {"type": "HTTPError", "message": body[:200].decode("utf-8", "replace")}}
            status = error.code
        except (urllib.error.URLError, OSError) as error:
            raise FMTError(f"remote backend cannot reach {base}: {error}") from error
        echoed = decoded.get("trace_id") if isinstance(decoded, dict) else None
        if echoed != sent_trace_id:
            raise FMTError(
                f"remote {path} did not echo trace_id: sent "
                f"{sent_trace_id!r}, got {echoed!r} (status {status})"
            )
        return status, decoded

    def raise_for(status: int, body: dict) -> None:
        error = body.get("error", {}) if isinstance(body, dict) else {}
        message = f"remote {status}: {error.get('type', '?')}: {error.get('message', '')}"
        if error.get("refusal"):
            raise BudgetExceededError(
                message,
                spent=int(error.get("spent") or 0),
                budget=int(error.get("budget") or 0),
            )
        raise FMTError(message)

    def ensure_structure(structure: Structure) -> str:
        structure_id = structure_ids.get(structure)
        if structure_id is None:
            status, body = call(
                "/v1/structures",
                {"tenant": tenant, "structure": wire.structure_to_dict(structure)},
            )
            if status != 200:
                raise_for(status, body)
            structure_id = body["structure_id"]
            structure_ids[structure] = structure_id
        return structure_id

    def ensure_prepared(structure: Structure, formula: Formula, structure_id: str) -> str:
        key = (formula, structure.signature.constants)
        name = prepared_names.get(key)
        if name is None:
            status, body = call(
                "/v1/queries",
                {
                    "tenant": tenant,
                    "formula": wire.format_formula(formula),
                    "structure_id": structure_id,
                    "constants": sorted(structure.signature.constants),
                    # Pin the answer schema to *this* AST's free variables:
                    # concrete syntax can fold a free variable away (the
                    # parser simplifies ``false & P(y)`` to ``false``), and
                    # the in-process backends answer the unfolded AST.
                    "free_variables": sorted(
                        var.name for var in free_variables(formula)
                    ),
                },
            )
            if status != 200:
                raise_for(status, body)
            name = body["query"]
            prepared_names[key] = name
        return name

    def compute(
        structure: Structure, formula: Formula, token: CancelToken | None = None
    ) -> Answers:
        structure_id = ensure_structure(structure)
        name = ensure_prepared(structure, formula, structure_id)
        rows: list = []
        page = 0
        while True:
            payload: dict = {
                "tenant": tenant,
                "structure_id": structure_id,
                "query": name,
                "page": page,
            }
            if token is not None:
                # Ship the *remaining* allowance, like CancelToken.to_payload,
                # so the server's admission control enforces this client's
                # budget — deadline and row cap both.
                remaining = token.remaining_seconds()
                if remaining is not None:
                    payload["deadline_ms"] = max(remaining * 1000.0, 1.0)
                if token.max_rows is not None:
                    rows_left = token.max_rows - token.rows - len(rows)
                    if rows_left < 1:
                        raise BudgetExceededError(
                            "remote paging exhausted the row budget",
                            spent=token.rows + len(rows),
                            budget=token.max_rows,
                        )
                    payload["max_rows"] = rows_left
            status, body = call("/v1/answers", payload)
            if status != 200:
                raise_for(status, body)
            rows.extend(body["rows"])
            if not body.get("has_more"):
                break
            page += 1
        return wire.answers_from_wire(rows)

    def reset() -> None:
        structure_ids.clear()
        prepared_names.clear()

    return Backend("remote", compute, reset_fn=reset, budget_fn=compute)


DEFAULT_BACKENDS = (
    "naive",
    "algebra",
    "engine",
    "engine-batch",
    "engine-columnar",
    "circuit",
    "bounded-degree",
    "resilient",
)


def default_registry(degree_bound: int = 3) -> BackendRegistry:
    """All evaluation paths the library ships, freshly instantiated."""
    registry = BackendRegistry()
    registry.register(
        Backend(
            "naive",
            naive_answers,
            budget_fn=lambda structure, formula, token: naive_answers(
                structure, formula, cancel_token=token
            ),
        )
    )
    registry.register(
        Backend("algebra", lambda structure, formula: algebra_answers(structure, formula))
    )
    registry.register(_engine_backend("engine", batched=False))
    registry.register(_engine_backend("engine-batch", batched=True))
    # The columnar tier forced on every plan — cost-based dispatch would
    # route small/large plans to it anyway, but the conformance gate
    # wants the kernels exercised on *every* case, not a cost band.
    registry.register(_engine_backend("engine-columnar", batched=False, executor="columnar"))
    registry.register(_circuit_backend())
    registry.register(_bounded_degree_backend(degree_bound))
    registry.register(_resilient_backend(degree_bound))
    return registry
