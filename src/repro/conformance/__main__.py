"""Entry point: ``python -m repro.conformance``."""

from __future__ import annotations

import sys

from repro.conformance.cli import main

if __name__ == "__main__":
    sys.exit(main())
