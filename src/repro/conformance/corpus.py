"""The replayable regression corpus: ``tests/corpus/*.json``.

Every file is one serialized case (see
:mod:`repro.conformance.serialize`).  The corpus is append-only in
spirit: hand-picked tricky cases are seeded by this PR, and every shrunk
fuzzer failure that exposes a real bug lands here as a named regression,
re-run on every applicable backend inside tier-1
(``tests/conformance/test_corpus_replay.py``).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.conformance.generate import Case
from repro.conformance.serialize import case_from_json, case_to_json
from repro.errors import FMTError

__all__ = ["default_corpus_dir", "load_corpus", "save_case"]


def default_corpus_dir() -> Path:
    """``tests/corpus`` relative to the repository root, if findable.

    Resolved from this file's location (``src/repro/conformance``), so
    it works from a source checkout; installed copies should pass an
    explicit directory to the CLI instead.
    """
    return Path(__file__).resolve().parents[3] / "tests" / "corpus"


def load_corpus(directory: Path | str | None = None) -> list[Case]:
    """All cases in the corpus directory, sorted by file name."""
    directory = Path(directory) if directory is not None else default_corpus_dir()
    if not directory.is_dir():
        return []
    cases = []
    for path in sorted(directory.glob("*.json")):
        try:
            cases.append(case_from_json(path.read_text()))
        except (FMTError, KeyError, ValueError) as error:
            raise FMTError(f"corpus file {path.name} is unreadable: {error}") from error
    return cases


def save_case(case: Case, directory: Path | str | None = None) -> Path:
    """Serialize ``case`` into the corpus; returns the file written."""
    directory = Path(directory) if directory is not None else default_corpus_dir()
    directory.mkdir(parents=True, exist_ok=True)
    stem = re.sub(r"[^A-Za-z0-9_-]+", "-", case.name) or "case"
    path = directory / f"{stem}.json"
    suffix = 1
    while path.exists():
        suffix += 1
        path = directory / f"{stem}-{suffix}.json"
    path.write_text(case_to_json(case))
    return path
