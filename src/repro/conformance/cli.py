"""``python -m repro.conformance`` — the conformance fuzzing CLI.

Modes
-----
fuzz (default)
    Generate ``--budget`` cases from ``--seed``, cross-check every
    applicable backend pairwise plus the metamorphic oracles, shrink any
    failures, and (with ``--promote``) write the shrunk cases into the
    corpus directory for replay.

replay (``--replay``)
    Re-run every serialized case in the corpus directory through the
    same checks — the standalone version of what tier-1 runs via
    ``tests/conformance/test_corpus_replay.py``.

Exit status is 0 iff no failure was observed.

Examples
--------
::

    python -m repro.conformance --seed 0 --budget 200
    python -m repro.conformance --backends naive,engine --budget 50 --json
    python -m repro.conformance --replay
    python -m repro.conformance --seed 7 --budget 1000 --promote --corpus-dir /tmp/corpus
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.conformance.backends import DEFAULT_BACKENDS, default_registry, remote_backend
from repro.conformance.corpus import default_corpus_dir, load_corpus, save_case
from repro.conformance.generate import CaseGenerator
from repro.conformance.runner import Runner
from repro.conformance.serialize import case_to_json, format_formula
from repro.conformance.shrink import shrink_case
from repro.errors import FMTError
from repro.resilience.budget import Budget

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.conformance",
        description="Differential & metamorphic conformance fuzzing across "
        "every FO evaluation path.",
    )
    parser.add_argument("--seed", type=int, default=0, help="stream seed (default 0)")
    parser.add_argument(
        "--budget", type=int, default=200, help="number of generated cases (default 200)"
    )
    parser.add_argument(
        "--backends",
        type=str,
        default=None,
        help=f"comma-separated backend subset (default: all of {', '.join(DEFAULT_BACKENDS)})",
    )
    parser.add_argument(
        "--replay",
        action="store_true",
        help="replay the serialized corpus instead of fuzzing",
    )
    parser.add_argument(
        "--corpus-dir",
        type=Path,
        default=None,
        help="corpus directory (default: tests/corpus of the source checkout)",
    )
    parser.add_argument(
        "--max-size", type=int, default=6, help="max universe size of generated structures"
    )
    parser.add_argument(
        "--formula-budget", type=int, default=6, help="max atomic leaves per formula"
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failures unshrunk (faster triage of big batches)",
    )
    parser.add_argument(
        "--promote",
        action="store_true",
        help="write shrunk failing cases into the corpus directory",
    )
    parser.add_argument(
        "--no-oracles",
        action="store_true",
        help="pairwise differential checks only",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-backend-call deadline in milliseconds; backends that "
        "exceed it refuse with a typed BudgetExceededError (counted, "
        "not a failure) — exit status still reflects wrong answers only",
    )
    parser.add_argument(
        "--remote",
        type=str,
        default=None,
        metavar="URL",
        help="register a `remote` backend that answers over a live "
        "repro.server instance at URL (e.g. http://127.0.0.1:8035), "
        "putting the wire format, session state, and admission control "
        "under differential test against the in-process backends",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON on stdout"
    )
    parser.add_argument(
        "--list-backends",
        action="store_true",
        help="list registered backends and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    registry = default_registry()
    if args.list_backends:
        for name in registry.names():
            print(name)
        return 0
    if args.remote:
        import urllib.error
        import urllib.request

        health_url = args.remote.rstrip("/") + "/healthz"
        try:
            with urllib.request.urlopen(health_url, timeout=10) as response:
                response.read()
        except (urllib.error.URLError, OSError) as error:
            print(f"error: remote server unreachable at {health_url}: {error}", file=sys.stderr)
            return 2
        registry.register(remote_backend(args.remote))
    backend_names = args.backends.split(",") if args.backends else None
    case_budget = None
    if args.deadline_ms is not None:
        if args.deadline_ms <= 0:
            print(f"error: --deadline-ms must be positive, got {args.deadline_ms}", file=sys.stderr)
            return 2
        case_budget = Budget(deadline_ms=args.deadline_ms)
    try:
        runner = Runner(
            registry=registry,
            backends=backend_names,
            oracles=[] if args.no_oracles else None,
            case_budget=case_budget,
        )
    except FMTError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.replay:
        corpus_dir = args.corpus_dir if args.corpus_dir else default_corpus_dir()
        cases = load_corpus(corpus_dir)
        if not cases:
            print(f"error: no corpus cases under {corpus_dir}", file=sys.stderr)
            return 2
        report = runner.replay(cases)
    else:
        generator = CaseGenerator(
            seed=args.seed,
            max_size=args.max_size,
            formula_budget=args.formula_budget,
        )
        report = runner.run(args.budget, seed=args.seed, generator=generator)

    for failure in report.failures:
        if not args.no_shrink:
            failure.shrunk = shrink_case(
                failure.case, runner.failure_predicate(failure)
            )
        if args.promote:
            promoted = failure.shrunk if failure.shrunk is not None else failure.case
            path = save_case(promoted, args.corpus_dir)
            print(f"promoted {promoted.name} -> {path}", file=sys.stderr)

    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
        for failure in report.failures:
            case = failure.shrunk if failure.shrunk is not None else failure.case
            print(f"\n--- {failure.kind} [{', '.join(failure.backends)}] ---")
            print(f"detail: {failure.detail}")
            print(f"formula: {format_formula(case.formula)}")
            print(case_to_json(case), end="")
    return 0 if report.ok else 1
