"""Seeded random generators for conformance cases.

Everything here is driven by :class:`random.Random` with explicitly
derived integer seeds, so a case stream is a pure function of its seed:
same seed, same platform-independent bytes (the determinism test
serializes two streams and compares them byte for byte).  The
``tests/strategies.py`` hypothesis strategies delegate structure/formula
construction to these generators, so the property suite and the fuzzer
draw from one distribution.

The distribution is tuned for differential testing, not realism: small
universes (backends diverge on corner cases, not on scale), signatures
that cover every arity the library supports, and deliberate inclusion of
the classically nasty shapes — empty relations, single-element
universes, disconnected unions, formulas whose quantifier rank exceeds
the domain size, vacuous quantifiers, and constants.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

import random

from repro.logic.analysis import free_variables
from repro.logic.signature import GRAPH, ORDER, SET, Signature
from repro.logic.syntax import (
    And,
    Atom,
    Const,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Term,
    Top,
    Bottom,
    Var,
)
from repro.structures.structure import Structure

__all__ = [
    "Case",
    "CaseGenerator",
    "FormulaGenerator",
    "StructureGenerator",
    "SIGNATURES",
]

#: Signatures the fuzzer rotates through: every arity in the library's
#: comfort zone, plus one signature with a constant symbol.
COLORED = Signature({"E": 2, "P": 1, "Q": 1})
TERNARY = Signature({"E": 2, "R": 3, "P": 1})
POINTED = Signature({"E": 2}, frozenset({"c"}))

SIGNATURES: tuple[Signature, ...] = (GRAPH, ORDER, COLORED, TERNARY, SET, POINTED)

#: Variable pool for generated formulas.
VARS = (Var("x"), Var("y"), Var("z"))

#: Multiplier decorrelating per-case seeds derived from one stream seed.
_SEED_STRIDE = 1_000_003


@dataclass(frozen=True)
class Case:
    """One conformance case: a structure and a formula to answer on it."""

    name: str
    structure: Structure
    formula: Formula
    seed: int | None = None
    description: str = ""

    @property
    def is_sentence(self) -> bool:
        return not free_variables(self.formula)


class StructureGenerator:
    """Random finite structures over a fixed signature.

    ``draw(rng, max_size)`` picks one of several families; all of them
    honor the signature (colored graphs only make sense when the
    signature has the symbols, so family selection is signature-aware).
    """

    def __init__(self, signature: Signature) -> None:
        self.signature = signature

    def draw(self, rng: random.Random, max_size: int = 6) -> Structure:
        size = rng.randint(1, max_size)
        family = rng.choice(("uniform", "sparse", "dense", "structured", "union"))
        if family == "union" and size >= 2 and not self.signature.constants:
            left = self._uniform(rng, rng.randint(1, size - 1), p=0.4)
            right = self._uniform(rng, rng.randint(1, size - 1), p=0.4)
            return left.disjoint_union(right)
        if family == "structured":
            return self._structured(rng, size)
        p = {"uniform": 0.5, "sparse": 0.15, "dense": 0.85}.get(family, 0.5)
        return self._uniform(rng, size, p)

    def draw_bounded_degree(
        self, rng: random.Random, max_size: int = 6, degree_bound: int = 3
    ) -> Structure:
        """A structure whose Gaifman degree stays at or under the bound.

        Tuples are sampled one at a time and kept only while no element's
        incidence count exceeds ``degree_bound`` — a simple rejection
        builder that is exact (``max_degree`` is checked at the end of
        the worst case by the caller's applicability predicate anyway).
        """
        size = rng.randint(1, max_size)
        universe = list(range(size))
        incident: dict[int, set[int]] = {element: set() for element in universe}
        relations: dict[str, list[tuple]] = {}
        for name in self.signature.relation_names():
            arity = self.signature.arity(name)
            relations[name] = []
            for _ in range(rng.randint(0, 2 * size)):
                row = tuple(rng.choice(universe) for _ in range(arity))
                touched = set(row)
                if any(
                    len(incident[element] | (touched - {element})) > degree_bound
                    for element in touched
                ):
                    continue
                relations[name].append(row)
                for element in touched:
                    incident[element] |= touched - {element}
        return Structure(self.signature, universe, relations, self._constants(rng, universe))

    def _uniform(self, rng: random.Random, size: int, p: float) -> Structure:
        universe = list(range(size))
        relations = {}
        for name in self.signature.relation_names():
            arity = self.signature.arity(name)
            relations[name] = [
                row for row in _all_rows(universe, arity) if rng.random() < p
            ]
        return Structure(self.signature, universe, relations, self._constants(rng, universe))

    def _structured(self, rng: random.Random, size: int) -> Structure:
        """Named families: chains, cycles, linear orders, empty/complete."""
        universe = list(range(size))
        shape = rng.choice(("chain", "cycle", "order", "empty", "complete"))
        relations: dict[str, list[tuple]] = {}
        for name in self.signature.relation_names():
            arity = self.signature.arity(name)
            if arity != 2 or shape == "empty":
                relations[name] = (
                    []
                    if shape in ("empty", "chain", "cycle", "order")
                    else [row for row in _all_rows(universe, arity)]
                )
                if arity == 1 and shape not in ("empty", "complete"):
                    relations[name] = [(e,) for e in universe if rng.random() < 0.5]
                continue
            if shape == "chain":
                relations[name] = [(i, i + 1) for i in range(size - 1)]
            elif shape == "cycle":
                relations[name] = [(i, (i + 1) % size) for i in range(size)]
            elif shape == "order":
                relations[name] = [(i, j) for i in universe for j in universe if i < j]
            else:  # complete
                relations[name] = [(i, j) for i in universe for j in universe]
        return Structure(self.signature, universe, relations, self._constants(rng, universe))

    def _constants(self, rng: random.Random, universe: list) -> dict[str, object]:
        return {name: rng.choice(universe) for name in sorted(self.signature.constants)}


class FormulaGenerator:
    """Random FO formulas over a signature, bounded by a leaf budget.

    ``draw(rng, budget)`` returns a formula with at most ``budget``
    atomic leaves; ``draw_sentence`` closes every free variable with a
    random mix of quantifiers.  Constants of the signature appear as
    terms with small probability, so the pointed-signature paths get
    exercised too.
    """

    def __init__(self, signature: Signature, num_vars: int = 3) -> None:
        self.signature = signature
        self.vars = VARS[:num_vars]

    def draw(self, rng: random.Random, budget: int = 6) -> Formula:
        if budget <= 1:
            return self._atom(rng)
        kind = rng.choice(
            ("atom", "not", "and", "or", "implies", "iff", "exists", "forall")
        )
        if kind == "atom":
            return self._atom(rng)
        if kind == "not":
            return Not(self.draw(rng, budget - 1))
        if kind in ("exists", "forall"):
            var = rng.choice(self.vars)
            body = self.draw(rng, budget - 1)
            return Exists(var, body) if kind == "exists" else Forall(var, body)
        split = rng.randint(1, budget - 1)
        left = self.draw(rng, split)
        right = self.draw(rng, budget - split)
        if kind == "and":
            return And((left, right))
        if kind == "or":
            return Or((left, right))
        if kind == "implies":
            return Implies(left, right)
        return Iff(left, right)

    def draw_sentence(self, rng: random.Random, budget: int = 6) -> Formula:
        formula = self.draw(rng, budget)
        for var in sorted(free_variables(formula), key=lambda v: v.name):
            formula = (
                Exists(var, formula) if rng.random() < 0.5 else Forall(var, formula)
            )
        return formula

    def _term(self, rng: random.Random) -> Term:
        constants = sorted(self.signature.constants)
        if constants and rng.random() < 0.2:
            return Const(rng.choice(constants))
        return rng.choice(self.vars)

    def _atom(self, rng: random.Random) -> Formula:
        choices: list[str] = ["eq"]
        choices.extend(self.signature.relation_names())
        if rng.random() < 0.05:
            return Top() if rng.random() < 0.5 else Bottom()
        name = rng.choice(choices)
        if name == "eq":
            return Eq(self._term(rng), self._term(rng))
        arity = self.signature.arity(name)
        return Atom(name, tuple(self._term(rng) for _ in range(arity)))


@dataclass
class CaseGenerator:
    """A deterministic stream of conformance cases.

    Case ``i`` of stream ``seed`` is generated by an rng seeded with
    ``seed * stride + i`` — cases are independent of each other and of
    the budget, so replaying case 37 does not require regenerating cases
    0–36, and :meth:`case_from_seed` can re-derive any case from the
    derived seed stored on it.
    """

    seed: int = 0
    max_size: int = 6
    formula_budget: int = 6
    sentence_bias: float = 0.6
    signatures: tuple[Signature, ...] = field(default=SIGNATURES)

    def case(self, index: int) -> Case:
        rng = random.Random(self.seed * _SEED_STRIDE + index)
        signature = rng.choice(list(self.signatures))
        structures = StructureGenerator(signature)
        formulas = FormulaGenerator(signature)
        if rng.random() < 0.25:
            structure = structures.draw_bounded_degree(rng, self.max_size)
        else:
            structure = structures.draw(rng, self.max_size)
        if rng.random() < self.sentence_bias:
            formula = formulas.draw_sentence(rng, self.formula_budget)
        else:
            formula = formulas.draw(rng, self.formula_budget)
        return Case(
            name=f"fuzz-{self.seed}-{index}",
            structure=structure,
            formula=formula,
            seed=self.seed * _SEED_STRIDE + index,
        )

    def case_from_seed(self, case_seed: int) -> Case:
        """Re-derive a case from its :attr:`Case.seed`, independent of
        this generator's stream seed (stream seed 0 places derived seed
        ``s`` at index ``s``)."""
        clone = CaseGenerator(
            seed=0,
            max_size=self.max_size,
            formula_budget=self.formula_budget,
            sentence_bias=self.sentence_bias,
            signatures=self.signatures,
        )
        return clone.case(case_seed)

    def stream(self, budget: int) -> Iterator[Case]:
        for index in range(budget):
            yield self.case(index)


def _all_rows(universe: list, arity: int) -> list[tuple]:
    import itertools

    return [tuple(row) for row in itertools.product(universe, repeat=arity)]
