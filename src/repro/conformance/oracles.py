"""Metamorphic oracles: the paper's theorems as executable cross-checks.

Differential testing compares backends against each other; metamorphic
testing compares a backend against *itself* on transformed inputs whose
correct relationship is known a priori.  Here every relation is a
theorem of the survey:

=====================  ====================================================
``isomorphism``        Isomorphism invariance of queries (§2): for an
                       isomorphism h : A → B, ans(φ, B) = h(ans(φ, A)).
``negation``           Negation duality (FO = RA complement): ans(¬φ, A)
                       is the complement of ans(φ, A) in universe^k.
``disjoint-union``     Hanf composition (§3.3): A ⊕ B ≅ B ⊕ A, so every
                       sentence agrees on the two union orders; and if
                       A ≡_r B (EF) then A ⊕ C and B ⊕ C agree on every
                       sentence of quantifier rank ≤ r.
``ef-transfer``        The EF theorem (Thm 3.5): A ≡_r B implies A and B
                       agree on all sentences of quantifier rank ≤ r.
``updates``            Update confluence: applying tuple deltas to a live
                       structure (delta-maintained indexes and all) must
                       answer exactly like a cold structure built from
                       the post-delta content — the incremental path is
                       an optimization, never a semantics.
=====================  ====================================================

Each oracle takes a case plus the backends applicable to it and returns
a list of violation messages (empty = pass).  Derived inputs (partner
structures, permutations) are drawn from an rng seeded by the case seed,
so a violation replays byte-identically and survives shrinking.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.conformance.generate import Case, StructureGenerator
from repro.errors import BudgetExceededError
from repro.games.ef import ef_equivalent
from repro.logic.analysis import constants_of, free_variables, quantifier_rank
from repro.logic.syntax import Not
from repro.structures.structure import Structure

__all__ = ["Oracle", "default_oracles"]

#: Ceilings keeping the EF-based oracles affordable inside a fuzz budget
#: (the exact EF solver is exponential; these bounds keep it well under
#: a millisecond per case).
_EF_MAX_SIZE = 5
_EF_MAX_RANK = 3
_EF_BUDGET = 200_000


@dataclass
class Oracle:
    """One metamorphic relation with the theorem that justifies it."""

    name: str
    theorem: str
    check_fn: Callable[[Case, Sequence], list[str]]

    def check(self, case: Case, backends: Sequence) -> list[str]:
        """Violation messages for ``case`` across ``backends`` (empty = pass)."""
        return self.check_fn(case, backends)

    def __repr__(self) -> str:
        return f"Oracle({self.name})"


def _case_rng(case: Case, salt: int) -> random.Random:
    return random.Random(((case.seed or 0) + 1) * 7919 + salt)


def _applicable(backend, structure: Structure, formula) -> bool:
    return backend.applicable(structure, formula)[0]


# -- isomorphism invariance --------------------------------------------------


def _check_isomorphism(case: Case, backends: Sequence) -> list[str]:
    structure, formula = case.structure, case.formula
    rng = _case_rng(case, 1)
    images = list(range(structure.size))
    rng.shuffle(images)
    mapping = dict(zip(structure.universe, images))
    relabeled = structure.relabel(mapping)
    violations = []
    for backend in backends:
        if not _applicable(backend, relabeled, formula):
            continue
        base = backend.answers(structure, formula)
        image = backend.answers(relabeled, formula)
        expected = frozenset(tuple(mapping[value] for value in row) for row in base)
        if image != expected:
            violations.append(
                f"{backend.name}: ans(φ, h(A)) ≠ h(ans(φ, A)) under relabeling "
                f"{mapping}: got {sorted(image)}, expected {sorted(expected)}"
            )
    return violations


# -- negation duality --------------------------------------------------------


def _check_negation(case: Case, backends: Sequence) -> list[str]:
    structure, formula = case.structure, case.formula
    negated = Not(formula)
    arity = len(free_variables(formula))
    full = frozenset(itertools.product(structure.universe, repeat=arity))
    violations = []
    for backend in backends:
        if not _applicable(backend, structure, negated):
            continue
        positive = backend.answers(structure, formula)
        negative = backend.answers(structure, negated)
        if positive & negative:
            violations.append(
                f"{backend.name}: ans(φ) ∩ ans(¬φ) ≠ ∅: {sorted(positive & negative)}"
            )
        elif positive | negative != full:
            missing = sorted(full - (positive | negative))
            violations.append(
                f"{backend.name}: ans(φ) ∪ ans(¬φ) misses tuples {missing}"
            )
    return violations


# -- disjoint-union composition ----------------------------------------------


def _union_eligible(case: Case) -> bool:
    return (
        case.is_sentence
        and not case.structure.constants
        and not constants_of(case.formula)
    )


def _check_disjoint_union(case: Case, backends: Sequence) -> list[str]:
    if not _union_eligible(case):
        return []
    structure, formula = case.structure, case.formula
    rng = _case_rng(case, 2)
    partner = StructureGenerator(structure.signature).draw(rng, max_size=4)
    if partner.constants:  # pragma: no cover - signature is constant-free here
        return []
    left = structure.disjoint_union(partner)
    right = partner.disjoint_union(structure)
    violations = []
    for backend in backends:
        if not (
            _applicable(backend, left, formula) and _applicable(backend, right, formula)
        ):
            continue
        if backend.answers(left, formula) != backend.answers(right, formula):
            violations.append(
                f"{backend.name}: φ distinguishes A ⊕ B from B ⊕ A "
                f"(|A|={structure.size}, |B|={partner.size})"
            )
    violations.extend(_check_union_transfer(case, backends, partner, rng))
    return violations


def _check_union_transfer(
    case: Case, backends: Sequence, partner: Structure, rng: random.Random
) -> list[str]:
    """If A ≡_r B then A ⊕ C ≡_r B ⊕ C: union preserves EF equivalence."""
    structure, formula = case.structure, case.formula
    rank = quantifier_rank(formula)
    twin = StructureGenerator(structure.signature).draw(rng, max_size=_EF_MAX_SIZE)
    if (
        rank > _EF_MAX_RANK
        or structure.size > _EF_MAX_SIZE
        or twin.size > _EF_MAX_SIZE
        or twin.constants
    ):
        return []
    try:
        if not ef_equivalent(structure, twin, rank, budget=_EF_BUDGET):
            return []
    except BudgetExceededError:
        return []
    left = structure.disjoint_union(partner)
    right = twin.disjoint_union(partner)
    violations = []
    for backend in backends:
        if not (
            _applicable(backend, left, formula) and _applicable(backend, right, formula)
        ):
            continue
        if backend.answers(left, formula) != backend.answers(right, formula):
            violations.append(
                f"{backend.name}: A ≡_{rank} B but φ (rank {rank}) distinguishes "
                f"A ⊕ C from B ⊕ C"
            )
    return violations


# -- EF rank-r transfer ------------------------------------------------------


def _check_ef_transfer(case: Case, backends: Sequence) -> list[str]:
    structure, formula = case.structure, case.formula
    if not case.is_sentence or structure.constants or constants_of(formula):
        return []
    rank = quantifier_rank(formula)
    if rank > _EF_MAX_RANK or structure.size > _EF_MAX_SIZE:
        return []
    rng = _case_rng(case, 3)
    twin = StructureGenerator(structure.signature).draw(rng, max_size=_EF_MAX_SIZE)
    if twin.constants:
        return []
    try:
        if not ef_equivalent(structure, twin, rank, budget=_EF_BUDGET):
            return []
    except BudgetExceededError:
        return []
    violations = []
    for backend in backends:
        if not (
            _applicable(backend, structure, formula)
            and _applicable(backend, twin, formula)
        ):
            continue
        if backend.answers(structure, formula) != backend.answers(twin, formula):
            violations.append(
                f"{backend.name}: A ≡_{rank} B (EF) but φ of rank {rank} "
                f"distinguishes them"
            )
    return violations


# -- update confluence -------------------------------------------------------

_UPDATE_MAX_SIZE = 12
_UPDATE_MAX_DELTAS = 4


def _check_updates(case: Case, backends: Sequence) -> list[str]:
    """Mutate a copy of the case structure and compare against a cold build.

    The live copy goes through :meth:`Structure.insert` /
    :meth:`Structure.delete` (exercising the delta log and memo
    patching); the cold twin is constructed from the final content in
    one shot.  Any backend that answers differently on the two has a
    bug in the incremental maintenance path.
    """
    structure, formula = case.structure, case.formula
    if structure.size == 0 or structure.size > _UPDATE_MAX_SIZE:
        return []
    if not structure.signature.relation_names():
        return []
    rng = _case_rng(case, 4)
    live = Structure(
        structure.signature,
        structure.universe,
        {name: set(rows) for name, rows in structure.relations.items()},
        dict(structure.constants),
    )
    relations = sorted(structure.signature.relation_names())
    applied = []
    for _ in range(rng.randint(1, _UPDATE_MAX_DELTAS)):
        relation = rng.choice(relations)
        arity = structure.signature.arity(relation)
        existing = sorted(live.relations[relation], key=repr)
        if existing and rng.random() < 0.5:
            row = rng.choice(existing)
            live.delete(relation, row)
            applied.append(("delete", relation, row))
        else:
            row = tuple(rng.choice(structure.universe) for _ in range(arity))
            live.insert(relation, row)
            applied.append(("insert", relation, row))
    cold = Structure(
        live.signature,
        live.universe,
        {name: set(rows) for name, rows in live.relations.items()},
        dict(live.constants),
    )
    violations = []
    for backend in backends:
        if not (
            _applicable(backend, live, formula)
            and _applicable(backend, cold, formula)
        ):
            continue
        if backend.answers(live, formula) != backend.answers(cold, formula):
            violations.append(
                f"{backend.name}: answers diverge after deltas {applied} — "
                f"live (incrementally maintained) ≠ cold rebuild of the same "
                f"content (epoch {live.epoch})"
            )
    return violations


def default_oracles() -> list[Oracle]:
    return [
        Oracle(
            "isomorphism",
            "isomorphism invariance of queries (§2)",
            _check_isomorphism,
        ),
        Oracle(
            "negation",
            "negation = complement in universe^k (FO = RA)",
            _check_negation,
        ),
        Oracle(
            "disjoint-union",
            "Hanf composition: ⊕ commutes and preserves ≡_r (§3.3)",
            _check_disjoint_union,
        ),
        Oracle(
            "ef-transfer",
            "EF theorem: A ≡_r B ⇒ agreement on rank-≤r sentences (Thm 3.5)",
            _check_ef_transfer,
        ),
        Oracle(
            "updates",
            "update confluence: deltas + incremental maintenance ≡ cold rebuild",
            _check_updates,
        ),
    ]
