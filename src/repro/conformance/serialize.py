"""Serialization of conformance cases to replayable JSON.

A corpus entry must survive two trips: fuzzer → disk (when a shrunk
failure is promoted to a regression) and disk → tier-1 test (the replay
suite re-answers every stored case on every applicable backend).

The structure/formula encoding itself lives in
:mod:`repro.server.wire` — the service wire format and the corpus are
deliberately the same bytes, so a corpus file is a valid structure
upload and a fuzzer case replays against a live server unchanged.  This
module keeps only the case envelope (name/description/seed around the
wire-encoded structure and formula) and re-exports the wire helpers
under their historical names.
"""

from __future__ import annotations

import json

from repro.logic.parser import parse
from repro.server.wire import (
    format_formula,
    structure_from_dict,
    structure_to_dict,
)

__all__ = [
    "format_formula",
    "case_to_json",
    "case_from_json",
    "structure_to_dict",
    "structure_from_dict",
]


def case_to_json(case: "Case", indent: int | None = 2) -> str:
    """Serialize a case (see :class:`repro.conformance.generate.Case`)."""
    payload = {
        "name": case.name,
        "description": case.description,
        "seed": case.seed,
        "formula": format_formula(case.formula),
        "structure": structure_to_dict(case.structure),
    }
    return json.dumps(payload, indent=indent, sort_keys=True) + "\n"


def case_from_json(text: str) -> "Case":
    from repro.conformance.generate import Case

    payload = json.loads(text)
    structure = structure_from_dict(payload["structure"])
    formula = parse(payload["formula"], constants=structure.signature)
    return Case(
        name=payload.get("name", "corpus-case"),
        structure=structure,
        formula=formula,
        seed=payload.get("seed"),
        description=payload.get("description", ""),
    )
