"""Serialization of conformance cases to replayable JSON.

A corpus entry must survive two trips: fuzzer → disk (when a shrunk
failure is promoted to a regression) and disk → tier-1 test (the replay
suite re-answers every stored case on every applicable backend).  The
formula is stored as *concrete syntax* re-read by
:func:`repro.logic.parser.parse` — human-diffable in review, and the
round trip doubles as a parser/printer conformance check.

Universe elements may be ints, strings, or (nested) tuples — the latter
appear in disjoint unions, whose elements are tagged ``(0, a)`` /
``(1, b)``.  Tuples are encoded as ``{"t": [...]}`` objects so decoding
is injective.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import StructureError
from repro.logic.parser import parse
from repro.logic.signature import Signature
from repro.logic.syntax import (
    And,
    Atom,
    Bottom,
    Const,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Term,
    Top,
    Var,
)
from repro.structures.structure import Element, Structure

__all__ = [
    "format_formula",
    "case_to_json",
    "case_from_json",
    "structure_to_dict",
    "structure_from_dict",
]


def format_formula(formula: Formula) -> str:
    """Render a formula in the parser's concrete syntax.

    ``parse(format_formula(φ), constants=...)`` is logically equivalent
    to φ — identical up to the parser's flattening of nested ∧/∨ chains
    (one more round trip is a fixpoint; the serialization tests assert
    both).  Quantifiers always print with the scope-disambiguating dot,
    constants print as bare identifiers (re-read as constants when the
    signature is passed to :func:`parse`), and ``<``-atoms use the infix
    sugar.
    """
    if isinstance(formula, Atom):
        if formula.relation == "<" and len(formula.terms) == 2:
            return f"{_term(formula.terms[0])} < {_term(formula.terms[1])}"
        args = ", ".join(_term(term) for term in formula.terms)
        return f"{formula.relation}({args})"
    if isinstance(formula, Eq):
        return f"{_term(formula.left)} = {_term(formula.right)}"
    if isinstance(formula, Top):
        return "true"
    if isinstance(formula, Bottom):
        return "false"
    if isinstance(formula, Not):
        return f"~({format_formula(formula.body)})"
    if isinstance(formula, And):
        if not formula.children:
            return "true"
        return "(" + " & ".join(_operand(child) for child in formula.children) + ")"
    if isinstance(formula, Or):
        if not formula.children:
            return "false"
        return "(" + " | ".join(_operand(child) for child in formula.children) + ")"
    if isinstance(formula, Implies):
        return f"({_operand(formula.premise)} -> {_operand(formula.conclusion)})"
    if isinstance(formula, Iff):
        return f"({_operand(formula.left)} <-> {_operand(formula.right)})"
    if isinstance(formula, Exists):
        return f"exists {formula.var.name}. ({format_formula(formula.body)})"
    if isinstance(formula, Forall):
        return f"forall {formula.var.name}. ({format_formula(formula.body)})"
    raise StructureError(f"cannot serialize formula node {formula!r}")


def _operand(formula: Formula) -> str:
    # A quantifier's body extends as far right as possible, so a
    # quantified operand of an infix connective must close its scope
    # with explicit parentheses.
    text = format_formula(formula)
    if isinstance(formula, (Exists, Forall)):
        return f"({text})"
    return text


def _term(term: Term) -> str:
    if isinstance(term, (Var, Const)):
        return term.name
    raise StructureError(f"cannot serialize term {term!r}")


# -- element encoding --------------------------------------------------------


def _encode_element(element: Element) -> Any:
    if isinstance(element, bool) or element is None:
        raise StructureError(f"cannot serialize universe element {element!r}")
    if isinstance(element, (int, str)):
        return element
    if isinstance(element, tuple):
        return {"t": [_encode_element(part) for part in element]}
    raise StructureError(f"cannot serialize universe element {element!r}")


def _decode_element(value: Any) -> Element:
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, dict) and set(value) == {"t"}:
        return tuple(_decode_element(part) for part in value["t"])
    raise StructureError(f"cannot deserialize universe element {value!r}")


# -- structures --------------------------------------------------------------


def structure_to_dict(structure: Structure) -> dict:
    """A JSON-ready dict capturing the structure exactly."""
    return {
        "signature": {
            "relations": {
                name: structure.signature.arity(name)
                for name in structure.signature.relation_names()
            },
            "constants": sorted(structure.signature.constants),
        },
        "universe": [_encode_element(element) for element in structure.universe],
        "relations": {
            name: sorted(
                ([_encode_element(value) for value in row] for row in tuples),
                key=repr,
            )
            for name, tuples in sorted(structure.relations.items())
        },
        "constants": {
            name: _encode_element(value)
            for name, value in sorted(structure.constants.items())
        },
    }


def structure_from_dict(data: dict) -> Structure:
    signature = Signature(
        dict(data["signature"]["relations"]),
        frozenset(data["signature"].get("constants", ())),
    )
    universe = [_decode_element(value) for value in data["universe"]]
    relations = {
        name: [tuple(_decode_element(value) for value in row) for row in rows]
        for name, rows in data.get("relations", {}).items()
    }
    constants = {
        name: _decode_element(value)
        for name, value in data.get("constants", {}).items()
    }
    return Structure(signature, universe, relations, constants)


# -- cases -------------------------------------------------------------------


def case_to_json(case: "Case", indent: int | None = 2) -> str:
    """Serialize a case (see :class:`repro.conformance.generate.Case`)."""
    payload = {
        "name": case.name,
        "description": case.description,
        "seed": case.seed,
        "formula": format_formula(case.formula),
        "structure": structure_to_dict(case.structure),
    }
    return json.dumps(payload, indent=indent, sort_keys=True) + "\n"


def case_from_json(text: str) -> "Case":
    from repro.conformance.generate import Case

    payload = json.loads(text)
    structure = structure_from_dict(payload["structure"])
    formula = parse(payload["formula"], constants=structure.signature)
    return Case(
        name=payload.get("name", "corpus-case"),
        structure=structure,
        formula=formula,
        seed=payload.get("seed"),
        description=payload.get("description", ""),
    )
