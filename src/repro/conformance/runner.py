"""The differential runner: pairwise cross-checks plus metamorphic oracles.

For every case the runner (1) answers the query on every applicable
backend and compares the answer sets pairwise against the first
applicable backend (``naive`` by default — the reference semantics), and
(2) applies every metamorphic oracle.  Disagreements, oracle violations
and unexpected backend errors become :class:`Failure` records carrying
the full serialized case, ready for shrinking and corpus promotion.

The generated case stream is hashed (SHA-256 over the serialized JSON of
every case) into :attr:`ConformanceReport.stream_digest`; the
determinism test asserts the digest is identical across serial, thread-
and process-parallel runs of the same seed.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import Any

from repro.conformance.backends import BackendRegistry, default_registry
from repro.conformance.generate import Case, CaseGenerator
from repro.conformance.oracles import Oracle, default_oracles
from repro.conformance.serialize import case_to_json
from repro.errors import BudgetExceededError, FMTError
from repro.resilience.budget import Budget
from repro.resilience.faults import get_injector

__all__ = ["Failure", "ConformanceReport", "Runner"]


@dataclass
class Failure:
    """One conformance violation, replayable from the embedded case."""

    case: Case
    kind: str  # "pairwise", "error", or "oracle:<name>"
    backends: tuple[str, ...]
    detail: str
    shrunk: Case | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "case": self.case.name,
            "kind": self.kind,
            "backends": list(self.backends),
            "detail": self.detail,
            "shrunk": None if self.shrunk is None else self.shrunk.name,
        }


@dataclass
class ConformanceReport:
    """Outcome of one conformance run."""

    seed: int | None
    cases: int = 0
    checks: int = 0
    failures: list[Failure] = field(default_factory=list)
    backend_cases: dict[str, int] = field(default_factory=dict)
    oracle_checks: dict[str, int] = field(default_factory=dict)
    budgets_exceeded: dict[str, int] = field(default_factory=dict)
    faults_injected: int = 0
    stream_digest: str = ""

    @property
    def ok(self) -> bool:
        """No *wrong* answers — budget refusals are allowed outcomes."""
        return not self.failures

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "cases": self.cases,
            "checks": self.checks,
            "ok": self.ok,
            "failures": [failure.to_dict() for failure in self.failures],
            "backend_cases": dict(sorted(self.backend_cases.items())),
            "oracle_checks": dict(sorted(self.oracle_checks.items())),
            "budgets_exceeded": dict(sorted(self.budgets_exceeded.items())),
            "faults_injected": self.faults_injected,
            "stream_digest": self.stream_digest,
        }

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURE(S)"
        backends = ", ".join(
            f"{name}×{count}" for name, count in sorted(self.backend_cases.items())
        )
        extra = ""
        exceeded = sum(self.budgets_exceeded.values())
        if exceeded:
            extra += f"; {exceeded} budget refusal(s)"
        if self.faults_injected:
            extra += f"; {self.faults_injected} fault(s) injected"
        return (
            f"conformance: {status} — {self.cases} cases, {self.checks} checks "
            f"(backends: {backends or 'none'}{extra}; digest {self.stream_digest[:12]})"
        )


class Runner:
    """Cross-check a stream (or an explicit list) of cases.

    Parameters
    ----------
    registry:
        The backend registry; defaults to every path the library ships.
    backends:
        Optional backend-name subset (CLI ``--backends``).
    oracles:
        Metamorphic oracles to apply; default all. Pass ``[]`` for
        pairwise-only runs.
    case_budget:
        Optional per-call :class:`~repro.resilience.budget.Budget`
        (CLI ``--deadline-ms``). Each backend invocation gets a fresh
        token started from this spec, so one slow backend cannot starve
        the others. A backend that raises
        :class:`~repro.errors.BudgetExceededError` under its budget is
        recorded in :attr:`ConformanceReport.budgets_exceeded` and
        excluded from that case's pairwise comparison — a typed refusal
        is an allowed outcome; only *wrong answers* fail the run.
    """

    def __init__(
        self,
        registry: BackendRegistry | None = None,
        backends: list[str] | None = None,
        oracles: list[Oracle] | None = None,
        case_budget: Budget | None = None,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.backend_names = backends
        if backends is not None:
            for name in backends:
                self.registry.get(name)  # fail fast on typos
        self.oracles = oracles if oracles is not None else default_oracles()
        self.case_budget = case_budget

    # -- running -------------------------------------------------------------

    def run(
        self,
        budget: int,
        seed: int = 0,
        generator: CaseGenerator | None = None,
    ) -> ConformanceReport:
        """Fuzz ``budget`` generated cases from ``seed``."""
        generator = generator if generator is not None else CaseGenerator(seed=seed)
        report = ConformanceReport(seed=seed)
        digest = hashlib.sha256()
        fired_before = self._faults_fired()
        for case in generator.stream(budget):
            digest.update(case_to_json(case).encode())
            self._check_case(case, report)
        report.stream_digest = digest.hexdigest()
        report.faults_injected = self._faults_fired() - fired_before
        return report

    def replay(self, cases: Iterable[Case]) -> ConformanceReport:
        """Re-check explicit cases (the corpus replay path)."""
        report = ConformanceReport(seed=None)
        digest = hashlib.sha256()
        fired_before = self._faults_fired()
        for case in cases:
            digest.update(case_to_json(case).encode())
            self._check_case(case, report)
        report.stream_digest = digest.hexdigest()
        report.faults_injected = self._faults_fired() - fired_before
        return report

    @staticmethod
    def _faults_fired() -> int:
        injector = get_injector()
        return injector.fired if injector is not None else 0

    def _check_case(self, case: Case, report: ConformanceReport) -> None:
        report.cases += 1
        backends = self.registry.applicable(case, self.backend_names)
        answers: dict[str, Any] = {}
        live = []
        for backend in backends:
            report.backend_cases[backend.name] = (
                report.backend_cases.get(backend.name, 0) + 1
            )
            token = self.case_budget.start() if self.case_budget is not None else None
            try:
                answers[backend.name] = backend.answers(
                    case.structure, case.formula, budget=token
                )
            except BudgetExceededError:
                # A typed refusal under budget pressure: the backend said
                # "can't afford it", which is exactly the contract. Count
                # it and leave the backend out of this case's comparison.
                report.budgets_exceeded[backend.name] = (
                    report.budgets_exceeded.get(backend.name, 0) + 1
                )
            except FMTError as error:
                report.failures.append(
                    Failure(
                        case=case,
                        kind="error",
                        backends=(backend.name,),
                        detail=f"{type(error).__name__}: {error}",
                    )
                )
            else:
                live.append(backend)
        if len(live) >= 2:
            reference = live[0]
            for other in live[1:]:
                report.checks += 1
                if answers[reference.name] != answers[other.name]:
                    report.failures.append(
                        Failure(
                            case=case,
                            kind="pairwise",
                            backends=(reference.name, other.name),
                            detail=(
                                f"{reference.name}={sorted(answers[reference.name])} "
                                f"vs {other.name}={sorted(answers[other.name])}"
                            ),
                        )
                    )
        for oracle in self.oracles:
            report.checks += 1
            report.oracle_checks[oracle.name] = (
                report.oracle_checks.get(oracle.name, 0) + 1
            )
            try:
                violations = oracle.check(case, live)
            except FMTError as error:
                violations = [f"oracle raised {type(error).__name__}: {error}"]
            for violation in violations:
                report.failures.append(
                    Failure(
                        case=case,
                        kind=f"oracle:{oracle.name}",
                        backends=tuple(backend.name for backend in live),
                        detail=violation,
                    )
                )

    # -- shrinking support ---------------------------------------------------

    def failure_predicate(self, failure: Failure) -> Callable[[Case], bool]:
        """A predicate deciding whether a candidate case still exhibits
        ``failure`` — the input to the delta-debugging shrinker.

        Derived oracle inputs are functions of the case *seed* (which the
        shrinker preserves), so oracle failures replay stably while the
        structure and formula shrink around them.
        """
        if failure.kind == "pairwise":
            left = self.registry.get(failure.backends[0])
            right = self.registry.get(failure.backends[1])

            def pairwise(candidate: Case) -> bool:
                if not (
                    left.applicable(candidate.structure, candidate.formula)[0]
                    and right.applicable(candidate.structure, candidate.formula)[0]
                ):
                    return False
                try:
                    return left.answers(
                        candidate.structure, candidate.formula
                    ) != right.answers(candidate.structure, candidate.formula)
                except FMTError:
                    return False

            return pairwise
        if failure.kind == "error":
            backend = self.registry.get(failure.backends[0])

            def errors(candidate: Case) -> bool:
                if not backend.applicable(candidate.structure, candidate.formula)[0]:
                    return False
                try:
                    backend.answers(candidate.structure, candidate.formula)
                except FMTError:
                    return True
                return False

            return errors
        if failure.kind.startswith("oracle:"):
            name = failure.kind.split(":", 1)[1]
            oracle = next(o for o in self.oracles if o.name == name)

            def violated(candidate: Case) -> bool:
                live = self.registry.applicable(candidate, self.backend_names)
                try:
                    return bool(oracle.check(candidate, live))
                except FMTError:
                    return True

            return violated
        raise FMTError(f"unknown failure kind {failure.kind!r}")
