"""Request-scoped trace identity: the context half of telemetry v2 (S19).

PR 2's tracer answers *where did this call spend its time*; this module
answers *which request was that* — the piece a multi-tenant server needs
before span trees, degradation events, and HTTP outcomes can be joined
into one story.  A :class:`TraceContext` is minted once per request
(HTTP layer or service entry point), carries a ``trace_id``, the id of
the request's root span, and the **sampling decision**, and is installed
on the handling thread with :func:`trace_scope`.

Three properties the server stack relies on:

* **Scoped, not global.** :func:`trace_scope` swaps in a *fresh* span
  stack for the duration of the request and restores the previous one on
  exit — even if the request body raised mid-span.  A reused
  ``ThreadingHTTPServer`` handler thread therefore can never re-parent
  the next tenant's spans under a leaked span from the previous request
  (the PR 2 thread-local stack had exactly this failure mode).
* **Deterministic sampling.** The decision is a pure function of
  ``(trace_id, rate)`` — :func:`sampling_decision` hashes the trace id —
  so a client replaying a trace id reproduces the sampling outcome, and
  always-on tracing can run at a fixed fraction of requests with zero
  coordination.
* **Process-boundary propagation.** :func:`propagation_payload` /
  :func:`scope_from_payload` ship the context to ``parallel_map``
  workers the way :meth:`repro.resilience.budget.CancelToken.to_payload`
  ships the remaining allowance; worker span trees come back serialized
  and merge into the parent trace (see :mod:`repro.parallel.pool`).
"""

from __future__ import annotations

import os
import re
import threading
import zlib
from dataclasses import dataclass

from repro.telemetry import tracer as _tracer

__all__ = [
    "TraceContext",
    "current_trace",
    "current_trace_id",
    "mint",
    "new_span_id",
    "new_trace_id",
    "propagation_payload",
    "sampling_decision",
    "scope_from_payload",
    "trace_scope",
]

#: Accepted wire trace ids: lowercase hex, 1–64 chars (W3C-traceparent
#: compatible without requiring its exact width).  Anything else is
#: ignored and a fresh id is minted — lenient by design, so a sloppy
#: client still gets a traced response instead of a 400.
_TRACE_ID_RE = re.compile(r"^[0-9a-f]{1,64}$")

_local = threading.local()


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (64 random bits)."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 8-hex-char span id (32 random bits)."""
    return os.urandom(4).hex()


def sampling_decision(trace_id: str, rate: float) -> bool:
    """Deterministic per-trace sampling: hash the id into [0, 1).

    ``rate`` ≥ 1 samples everything, ≤ 0 nothing; in between, the same
    trace id always lands in the same bucket (replay-stable).  The
    bucket comes from CRC-32 — sub-microsecond on the per-request hot
    path, and uniform enough over random hex ids for a sampling knob
    (this is not a security boundary).
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    bucket = zlib.crc32(trace_id.encode()) & 0xFFFFFFFF
    return bucket / float(0x1_0000_0000) < rate


@dataclass(frozen=True)
class TraceContext:
    """One request's trace identity: ids plus the sampling decision.

    ``sampled`` decides whether spans are *recorded* inside this
    request's :func:`trace_scope`; the trace id is echoed on the wire
    either way, so clients can always correlate responses — an unsampled
    request is identified, just not profiled.
    """

    trace_id: str
    span_id: str
    sampled: bool

    def to_wire(self) -> str:
        return self.trace_id


def normalize_trace_id(raw: object) -> str | None:
    """A valid wire trace id (lowercased), or ``None`` to mint fresh."""
    if not isinstance(raw, str):
        return None
    candidate = raw.strip().lower()
    if _TRACE_ID_RE.match(candidate):
        return candidate
    return None


def mint(trace_id: object = None, rate: float = 1.0) -> TraceContext:
    """Mint the context for one request.

    ``trace_id`` may come from the client (request body field or
    ``X-Trace-Id`` header); invalid or missing ids get a fresh one.  The
    sampling decision is derived deterministically from the final id.
    """
    accepted = normalize_trace_id(trace_id)
    final = accepted if accepted is not None else new_trace_id()
    return TraceContext(
        trace_id=final,
        span_id=new_span_id(),
        sampled=sampling_decision(final, rate),
    )


def current_trace() -> TraceContext | None:
    """The context installed on this thread, if any."""
    stack = getattr(_local, "contexts", None)
    return stack[-1] if stack else None


def current_trace_id() -> str | None:
    context = current_trace()
    return context.trace_id if context is not None else None


class trace_scope:
    """Install a :class:`TraceContext` on this thread for one request.

    Entering swaps in a fresh tracer span stack (recording iff
    ``context.sampled``); exiting restores the previous stack and
    context **unconditionally**, abandoning any spans an exception left
    open — the leak fix the reused-handler-thread scenario needs.  The
    scope collects the root spans finished inside it (:attr:`roots`),
    which is what the server attaches to ``explain`` responses and what
    workers ship back to the parent trace.
    """

    __slots__ = ("context", "_tracer_token", "roots", "orphaned_spans")

    def __init__(self, context: TraceContext) -> None:
        self.context = context
        self._tracer_token: object | None = None
        self.roots: list[_tracer.Span] = []
        self.orphaned_spans = 0

    def __enter__(self) -> "trace_scope":
        contexts = getattr(_local, "contexts", None)
        if contexts is None:
            contexts = []
            _local.contexts = contexts
        contexts.append(self.context)
        self._tracer_token = _tracer.push_scope(
            trace_id=self.context.trace_id,
            recording=self.context.sampled,
            roots=self.roots,
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.orphaned_spans = _tracer.pop_scope(self._tracer_token)
        contexts = getattr(_local, "contexts", None)
        if contexts:
            contexts.pop()
        return False


# -- crossing parallel_map boundaries ----------------------------------------


def propagation_payload() -> tuple[str, str] | None:
    """What to ship with a parallel chunk: ``(trace_id, span_id)``.

    ``None`` when nothing is recording on this thread — workers then
    skip span collection entirely, keeping the disabled path free.  When
    tracing is on globally but no request context is installed (library
    use outside the server), a fresh trace id is minted so the worker
    trees still share one identity.
    """
    if not _tracer.is_recording():
        return None
    context = current_trace()
    if context is not None:
        return (context.trace_id, context.span_id)
    return (new_trace_id(), new_span_id())


def scope_from_payload(payload: tuple[str, str]) -> trace_scope:
    """Rebuild a worker-side recording scope from
    :func:`propagation_payload` output — same trace id, recording on
    (the parent only ships a payload when it is itself recording)."""
    trace_id, parent_span_id = payload
    return trace_scope(
        TraceContext(trace_id=trace_id, span_id=parent_span_id, sampled=True)
    )
