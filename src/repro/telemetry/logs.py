"""Structured JSON access + slow-query logging for the server stack.

One line per served request, machine-parseable (``json.loads`` per
line), carrying everything needed to join a request's story across the
observability surfaces: ``trace_id`` (the same id echoed on the wire
and stamped on every span and degradation event), tenant, operation,
query hash, row counts, budget spend, degradations, breaker states, and
the HTTP status the wire layer mapped the outcome to.

The log keeps a bounded in-memory ring of recent entries (so tests and
the ``explain`` path can inspect without tailing a file) and optionally
writes each line to a stream. Entries slower than ``slow_ms`` are
flagged ``"slow": true`` — the slow-query log is a *view* over the
access log (:meth:`AccessLog.slow_entries`), not a second pipeline, so
the two can never disagree about what happened.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections import deque
from typing import Any, IO

__all__ = [
    "AccessLog",
    "open_access_log",
]

#: How many recent entries the in-memory ring retains.
DEFAULT_CAPACITY = 2048


class AccessLog:
    """A thread-safe structured log: JSON lines + a bounded ring buffer.

    ``stream`` (optional) receives one compact JSON line per record;
    ``slow_ms`` (optional) flags entries whose ``duration_ms`` meets the
    threshold. Records are plain dicts — the caller decides the schema,
    the log only stamps ``ts`` (epoch seconds) and the ``slow`` flag.
    """

    def __init__(
        self,
        stream: IO[str] | None = None,
        slow_ms: float | None = None,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.stream = stream
        self.slow_ms = slow_ms
        self._lock = threading.Lock()
        self._entries: deque[dict[str, Any]] = deque(maxlen=capacity)

    def record(self, **fields: Any) -> dict[str, Any]:
        """Append one entry; returns the stamped record."""
        return self.log(fields)  # ** already built a fresh dict

    def log(self, entry: dict[str, Any]) -> dict[str, Any]:
        """Like :meth:`record`, for callers that already hold the dict.

        The entry is stamped and stored as-is (not copied) — hand over
        ownership, don't mutate it afterwards.  This is the server's
        per-request hot path, hence the kwargs-free variant.
        """
        if "ts" not in entry:
            entry["ts"] = time.time()
        duration = entry.get("duration_ms")
        entry["slow"] = bool(
            self.slow_ms is not None
            and isinstance(duration, (int, float))
            and duration >= self.slow_ms
        )
        stream = self.stream
        if stream is None:
            # deque.append is atomic under the GIL, and readers snapshot
            # with a single C-level list(deque) — no lock, no JSON on
            # the hot path when nothing is tailing the log.
            self._entries.append(entry)
        else:
            line = json.dumps(entry, sort_keys=True, default=str)
            with self._lock:
                self._entries.append(entry)
                stream.write(line + "\n")
                stream.flush()
        return entry

    def recent(self, limit: int | None = None) -> list[dict[str, Any]]:
        """The newest entries, oldest first (all of them by default)."""
        with self._lock:
            entries = list(self._entries)
        if limit is not None:
            entries = entries[-limit:]
        return entries

    def slow_entries(self) -> list[dict[str, Any]]:
        """The slow-query view: entries at or over the threshold."""
        return [entry for entry in self.recent() if entry.get("slow")]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def open_access_log(
    path: str | None, slow_ms: float | None = None
) -> AccessLog | None:
    """Build the log the server CLI asked for.

    ``None`` → no log; ``"-"`` → stderr (line-buffered terminals show
    entries live); anything else → append to that file.
    """
    if path is None:
        return None
    if path == "-":
        return AccessLog(stream=sys.stderr, slow_ms=slow_ms)
    return AccessLog(stream=open(path, "a", encoding="utf-8"), slow_ms=slow_ms)
