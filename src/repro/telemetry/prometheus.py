"""Prometheus text exposition (format 0.0.4) for the metrics registry.

The registry already keys labeled series the way Prometheus does
(``name{k="v",...}``), so exposition is a rendering pass, not a data
model translation: counters become ``<name>_total`` counter families,
gauges stay gauges, histograms are exported as **summaries** (quantile
series from the reservoir percentiles plus exact ``_sum``/``_count``)
because the registry keeps a sample, not fixed buckets.

Metric and label names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``); label values are escaped per the spec
(backslash, double-quote, newline).

:func:`parse_exposition` is the strict inverse used by the test suite
and the CI observability job: it validates every line against the
format grammar and raises ``ValueError`` on anything malformed, so a
formatting regression fails loudly instead of being silently dropped by
a lenient scraper.
"""

from __future__ import annotations

import math
import re

from repro.telemetry.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "CONTENT_TYPE",
    "parse_exposition",
    "render_exposition",
    "sanitize_name",
]

#: The Content-Type a compliant scraper expects for text format 0.0.4.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_FIX = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_NAME_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_SUMMARY_QUANTILES = ((0.5, 50.0), (0.95, 95.0), (0.99, 99.0))


def sanitize_name(name: str) -> str:
    """Map an internal metric name onto the Prometheus grammar.

    Dots (the registry's namespace separator) and any other illegal
    character become underscores; a leading digit gets a ``_`` prefix.
    """
    fixed = _NAME_FIX.sub("_", name)
    if not fixed or not _NAME_OK.match(fixed):
        fixed = "_" + fixed
    return fixed


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{sanitize_name(key)}="{_escape_label_value(str(merged[key]))}"'
        for key in sorted(merged)
    )
    return "{" + inner + "}"


def _render_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_exposition(registry: MetricsRegistry | None = None) -> str:
    """The whole registry as Prometheus text format 0.0.4.

    Families are grouped (one ``# TYPE`` line per base name, series
    sorted), counters get the conventional ``_total`` suffix, histograms
    export as summaries. Always ends with a newline, as the format
    requires.
    """
    registry = registry if registry is not None else REGISTRY
    families: dict[str, tuple[str, list[str]]] = {}

    for metric in registry.metrics():
        base = sanitize_name(metric.base_name)
        if isinstance(metric, Counter):
            family = base + "_total"
            kind = "counter"
            lines = [f"{family}{_render_labels(metric.labels)} "
                     f"{_render_value(metric.value)}"]
        elif isinstance(metric, Gauge):
            family = base
            kind = "gauge"
            lines = [f"{family}{_render_labels(metric.labels)} "
                     f"{_render_value(metric.value)}"]
        elif isinstance(metric, Histogram):
            family = base
            kind = "summary"
            lines = []
            for quantile, pct in _SUMMARY_QUANTILES:
                value = metric.percentile(pct) if metric.count else 0.0
                labels = _render_labels(metric.labels, {"quantile": str(quantile)})
                lines.append(f"{family}{labels} {_render_value(value)}")
            lines.append(f"{family}_sum{_render_labels(metric.labels)} "
                         f"{_render_value(metric.total)}")
            lines.append(f"{family}_count{_render_labels(metric.labels)} "
                         f"{_render_value(metric.count)}")
        else:  # pragma: no cover - registry only holds the three kinds
            continue
        slot = families.setdefault(family, (kind, []))
        slot[1].extend(lines)

    out: list[str] = []
    for family in sorted(families):
        kind, lines = families[family]
        out.append(f"# TYPE {family} {kind}")
        out.extend(lines)
    return "\n".join(out) + "\n" if out else "\n"


# -- strict parsing ------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\["\\n])*)"$'
)
_TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r" (?P<kind>counter|gauge|histogram|summary|untyped)$"
)
_HELP_RE = re.compile(r"^# HELP (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) (?P<doc>.*)$")


def _parse_value(raw: str) -> float:
    if raw == "NaN":
        return math.nan
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"invalid sample value: {raw!r}") from None


def _split_label_body(body: str) -> list[str]:
    """Split ``k="v",k2="v2"`` on commas outside quoted values."""
    pairs: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for ch in body:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\":
            current.append(ch)
            escaped = True
        elif ch == '"':
            current.append(ch)
            in_quotes = not in_quotes
        elif ch == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current or not pairs:
        pairs.append("".join(current))
    if in_quotes:
        raise ValueError(f"unterminated label value in: {{{body}}}")
    return pairs


def _unescape_label_value(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def parse_exposition(text: str) -> dict[str, dict]:
    """Strictly parse Prometheus text format into
    ``{family: {"type": kind|None, "samples": {series: value}}}``.

    Samples are attributed to the family named by the most specific
    ``# TYPE`` prefix match (so ``latency_sum`` joins the ``latency``
    summary); unknown comment lines other than HELP/TYPE, malformed
    samples, duplicate series, and label-grammar violations all raise
    ``ValueError`` — this parser is the CI gate, not a forgiving scraper.
    """
    families: dict[str, dict] = {}
    type_names: list[str] = []

    def family_for(sample_name: str) -> str:
        best = ""
        for declared in type_names:
            if sample_name == declared or (
                sample_name.startswith(declared + "_")
                and sample_name[len(declared):] in ("_sum", "_count", "_bucket")
            ):
                if len(declared) > len(best):
                    best = declared
        return best or sample_name

    for lineno, line in enumerate(text.split("\n"), start=1):
        if not line:
            continue
        if line.startswith("#"):
            type_match = _TYPE_RE.match(line)
            if type_match:
                name = type_match.group("name")
                entry = families.setdefault(name, {"type": None, "samples": {}})
                if entry["type"] is not None:
                    raise ValueError(f"line {lineno}: duplicate TYPE for {name!r}")
                entry["type"] = type_match.group("kind")
                type_names.append(name)
                continue
            if _HELP_RE.match(line):
                continue
            raise ValueError(f"line {lineno}: malformed comment: {line!r}")
        sample = _SAMPLE_RE.match(line)
        if not sample:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        labels: dict[str, str] = {}
        body = sample.group("labels")
        if body is not None:
            if not body:
                raise ValueError(f"line {lineno}: empty label braces: {line!r}")
            for pair in _split_label_body(body):
                pair_match = _LABEL_PAIR_RE.match(pair)
                if not pair_match:
                    raise ValueError(f"line {lineno}: malformed label pair {pair!r}")
                label_name = pair_match.group("name")
                if not _LABEL_NAME_OK.match(label_name):
                    raise ValueError(f"line {lineno}: bad label name {label_name!r}")
                if label_name in labels:
                    raise ValueError(f"line {lineno}: duplicate label {label_name!r}")
                labels[label_name] = _unescape_label_value(pair_match.group("value"))
        value = _parse_value(sample.group("value"))
        series = sample.group("name") + (
            "{" + ",".join(f'{k}="{labels[k]}"' for k in sorted(labels)) + "}"
            if labels
            else ""
        )
        entry = families.setdefault(
            family_for(sample.group("name")), {"type": None, "samples": {}}
        )
        if series in entry["samples"]:
            raise ValueError(f"line {lineno}: duplicate series {series!r}")
        entry["samples"][series] = value
    return families
