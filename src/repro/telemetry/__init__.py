"""Observability for the toolbox: span tracing + a metrics registry.

The telemetry layer (S14) makes the engine's normalize→stats→plan→
execute pipeline, the Theorem 3.11 census fast path, and the EF game
search *visible*, the way Kazana–Segoufin and Kuske–Schweikardt report
per-phase costs instead of one opaque total:

* :mod:`repro.telemetry.tracer` — nested, timed spans with attributes,
  thread-local stacks, a context-manager/decorator API;
* :mod:`repro.telemetry.metrics` — named counters, gauges, and
  histograms (labeled, bounded-cardinality) with JSON snapshot and
  text report exports;
* :mod:`repro.telemetry.context` — per-request :class:`TraceContext`
  (trace id, sampling decision) with scoped span stacks and
  cross-process propagation (telemetry v2, S19);
* :mod:`repro.telemetry.prometheus` — text exposition 0.0.4 plus the
  strict parser CI scrapes with;
* :mod:`repro.telemetry.logs` — the structured JSON access /
  slow-query log.

**Off by default.** While disabled, :func:`span` returns a shared no-op
singleton (no allocation) and instrumented call sites skip their metric
updates entirely, so the production path pays one boolean check per
instrumentation point. Enable with :func:`enable`, the
``REPRO_TELEMETRY=1`` environment variable, or the scoped
:func:`capture` helper:

>>> from repro import telemetry
>>> with telemetry.capture() as registry:
...     telemetry.counter("demo.events").inc(3)
...     with telemetry.span("demo.work") as sp:
...         _ = sp.set("items", 3)
>>> registry.snapshot()["counters"]["demo.events"]
3
>>> telemetry.is_enabled()
False
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.telemetry.context import (
    TraceContext,
    current_trace,
    current_trace_id,
    mint,
    sampling_decision,
    trace_scope,
)
from repro.telemetry.logs import AccessLog, open_access_log
from repro.telemetry.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    metrics_report,
    metrics_snapshot,
    reset_metrics,
)
from repro.telemetry.prometheus import parse_exposition, render_exposition
from repro.telemetry.tracer import (
    Span,
    adopt_spans,
    current_span,
    disable,
    drain_spans,
    enable,
    finished_spans,
    is_enabled,
    is_recording,
    reset_tracer,
    span,
    traced,
)

__all__ = [
    "AccessLog",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "TraceContext",
    "adopt_spans",
    "capture",
    "counter",
    "current_span",
    "current_trace",
    "current_trace_id",
    "disable",
    "drain_spans",
    "enable",
    "finished_spans",
    "gauge",
    "histogram",
    "is_enabled",
    "is_recording",
    "metrics_report",
    "metrics_snapshot",
    "mint",
    "open_access_log",
    "parse_exposition",
    "render_exposition",
    "reset",
    "reset_metrics",
    "reset_tracer",
    "sampling_decision",
    "span",
    "trace_scope",
    "traced",
]


def reset() -> None:
    """Clear all recorded telemetry: metrics and finished spans."""
    reset_metrics()
    reset_tracer()


@contextmanager
def capture():
    """Enable telemetry for a block, starting from a clean registry.

    Yields the default :data:`REGISTRY`; on exit the previous
    enabled/disabled state is restored (recorded data is kept for
    inspection).
    """
    was_enabled = is_enabled()
    reset()
    enable()
    try:
        yield REGISTRY
    finally:
        if not was_enabled:
            disable()
