"""Observability for the toolbox: span tracing + a metrics registry.

The telemetry layer (S14) makes the engine's normalize→stats→plan→
execute pipeline, the Theorem 3.11 census fast path, and the EF game
search *visible*, the way Kazana–Segoufin and Kuske–Schweikardt report
per-phase costs instead of one opaque total:

* :mod:`repro.telemetry.tracer` — nested, timed spans with attributes,
  thread-local stacks, a context-manager/decorator API;
* :mod:`repro.telemetry.metrics` — named counters, gauges, and
  histograms with JSON snapshot and text report exports.

**Off by default.** While disabled, :func:`span` returns a shared no-op
singleton (no allocation) and instrumented call sites skip their metric
updates entirely, so the production path pays one boolean check per
instrumentation point. Enable with :func:`enable`, the
``REPRO_TELEMETRY=1`` environment variable, or the scoped
:func:`capture` helper:

>>> from repro import telemetry
>>> with telemetry.capture() as registry:
...     telemetry.counter("demo.events").inc(3)
...     with telemetry.span("demo.work") as sp:
...         _ = sp.set("items", 3)
>>> registry.snapshot()["counters"]["demo.events"]
3
>>> telemetry.is_enabled()
False
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.telemetry.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    metrics_report,
    metrics_snapshot,
    reset_metrics,
)
from repro.telemetry.tracer import (
    Span,
    current_span,
    disable,
    drain_spans,
    enable,
    finished_spans,
    is_enabled,
    reset_tracer,
    span,
    traced,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "capture",
    "counter",
    "current_span",
    "disable",
    "drain_spans",
    "enable",
    "finished_spans",
    "gauge",
    "histogram",
    "is_enabled",
    "metrics_report",
    "metrics_snapshot",
    "reset",
    "reset_metrics",
    "reset_tracer",
    "span",
    "traced",
]


def reset() -> None:
    """Clear all recorded telemetry: metrics and finished spans."""
    reset_metrics()
    reset_tracer()


@contextmanager
def capture():
    """Enable telemetry for a block, starting from a clean registry.

    Yields the default :data:`REGISTRY`; on exit the previous
    enabled/disabled state is restored (recorded data is kept for
    inspection).
    """
    was_enabled = is_enabled()
    reset()
    enable()
    try:
        yield REGISTRY
    finally:
        if not was_enabled:
            disable()
