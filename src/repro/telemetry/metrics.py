"""Named counters, gauges, and histograms with snapshot/report export.

The registry is the aggregation side of the telemetry layer: span
tracing (:mod:`repro.telemetry.tracer`) answers *where did this one call
spend its time*, the metrics registry answers *how much work happened
overall* — rows per operator, cache hits, census computations, EF
positions explored. Metrics are cheap enough to update unconditionally,
but instrumented call sites still guard with
:func:`repro.telemetry.tracer.is_enabled` so the disabled path does no
dictionary lookups at all.

Counter/gauge updates are single bytecode-level ``+=``/assignments and
histogram observation appends to a list, so concurrent use from multiple
threads is safe under CPython's GIL for the accuracy telemetry needs;
metric *creation* is guarded by a lock.

**Labels (telemetry v2).** Every get-or-create accepts keyword labels
(``counter("server.requests", tenant="acme", outcome="ok")``), keyed in
the registry as ``name{k="v",...}`` with keys sorted — the same identity
Prometheus uses, so the text exposition (:mod:`repro.telemetry
.prometheus`) is a direct rendering. Cardinality is bounded: each base
name admits at most :data:`MAX_LABEL_SETS` distinct label sets, after
which new combinations collapse into a single ``{overflow="true"}``
series per base name — a hostile tenant id can't grow the registry
without bound.
"""

from __future__ import annotations

import math
import random
import threading
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MAX_LABEL_SETS",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "labeled_key",
    "metrics_report",
    "metrics_snapshot",
    "reset_metrics",
]

#: Distinct label sets admitted per base metric name before new
#: combinations collapse into the ``{overflow="true"}`` series.
MAX_LABEL_SETS = 64

#: The label set every over-cardinality observation lands in.
OVERFLOW_LABELS = {"overflow": "true"}


def labeled_key(name: str, labels: dict[str, str] | None) -> str:
    """The registry key for ``name`` + ``labels``: ``name{k="v",...}``,
    keys sorted so the same label set always maps to the same series."""
    if not labels:
        return name
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "base_name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str] | None = None) -> None:
        self.base_name = name
        self.labels: dict[str, str] = dict(labels) if labels else {}
        self.name = labeled_key(name, self.labels)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A named value that can move both ways (e.g. current cache size)."""

    __slots__ = ("name", "base_name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str] | None = None) -> None:
        self.base_name = name
        self.labels: dict[str, str] = dict(labels) if labels else {}
        self.name = labeled_key(name, self.labels)
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A named distribution: exact count/sum/min/max plus a sample.

    The sample is a uniform **reservoir** (Vitter's Algorithm R) of at
    most :data:`SAMPLE_LIMIT` observations: once full, each new
    observation replaces a random slot with probability
    ``SAMPLE_LIMIT / count``, so percentiles keep tracking the whole
    stream instead of freezing on the first 65536 observations (the
    warm-up traffic of a long-running server). The replacement RNG is
    seeded from the metric name, so a replayed workload reproduces the
    same percentiles bit-for-bit. Aggregate moments (count/sum/min/max)
    stay exact regardless. Percentiles use the nearest-rank definition,
    so e.g. ``percentile(50)`` of 1..100 is 50.
    """

    SAMPLE_LIMIT = 65536

    __slots__ = ("name", "base_name", "labels", "count", "total", "min", "max",
                 "_sample", "_rng")

    def __init__(self, name: str, labels: dict[str, str] | None = None) -> None:
        self.base_name = name
        self.labels: dict[str, str] = dict(labels) if labels else {}
        self.name = labeled_key(name, self.labels)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._sample: list[float] = []
        # str seeding hashes with SHA-512, not PYTHONHASHSEED, so the
        # reservoir is deterministic across interpreter runs.
        self._rng = random.Random(self.name)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._sample) < self.SAMPLE_LIMIT:
            self._sample.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.SAMPLE_LIMIT:
                self._sample[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the retained sample."""
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if not self._sample:
            return 0.0
        ordered = sorted(self._sample)
        rank = math.ceil(p / 100.0 * len(ordered))
        return ordered[rank - 1]

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.3g})"


class MetricsRegistry:
    """A namespace of metrics, created on first use.

    ``counter``/``gauge``/``histogram`` are get-or-create; asking for an
    existing name with a different kind raises ``TypeError`` (one name,
    one meaning). Keyword labels select a distinct series under the same
    base name, bounded at :data:`MAX_LABEL_SETS` sets per name (overflow
    collapses into ``{overflow="true"}``).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._label_sets: dict[str, int] = {}

    def _get_or_create(self, name: str, kind: type, labels: dict[str, str]):
        key = labeled_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    if labels and self._label_sets.get(name, 0) >= MAX_LABEL_SETS:
                        return self._overflow_series(name, kind)
                    metric = kind(name, labels)
                    self._metrics[key] = metric
                    if labels:
                        self._label_sets[name] = self._label_sets.get(name, 0) + 1
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {key!r} already registered as {type(metric).__name__}, "
                f"not {kind.__name__}"
            )
        return metric

    def _overflow_series(self, name: str, kind: type):
        """The ``{overflow="true"}`` sink series (lock already held)."""
        key = labeled_key(name, OVERFLOW_LABELS)
        metric = self._metrics.get(key)
        if metric is None:
            metric = kind(name, dict(OVERFLOW_LABELS))
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(name, Counter, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(name, Gauge, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._get_or_create(name, Histogram, labels)

    def metrics(self) -> tuple[Counter | Gauge | Histogram, ...]:
        """Every registered metric, sorted by (labeled) name."""
        return tuple(self._metrics[key] for key in sorted(self._metrics))

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Everything as a JSON-serializable dict, names sorted."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, float]] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.summary()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def report(self) -> str:
        """A human-readable text report of every registered metric."""
        snap = self.snapshot()
        lines = ["=== telemetry metrics ==="]
        if snap["counters"]:
            lines.append("counters:")
            width = max(len(name) for name in snap["counters"])
            for name, value in snap["counters"].items():
                lines.append(f"  {name.ljust(width)}  {value}")
        if snap["gauges"]:
            lines.append("gauges:")
            width = max(len(name) for name in snap["gauges"])
            for name, value in snap["gauges"].items():
                lines.append(f"  {name.ljust(width)}  {value}")
        if snap["histograms"]:
            lines.append("histograms:")
            for name, summary in snap["histograms"].items():
                if summary["count"]:
                    lines.append(
                        f"  {name}  count={summary['count']} mean={summary['mean']:.3f} "
                        f"p50={summary['p50']:.3f} p95={summary['p95']:.3f} "
                        f"max={summary['max']:.3f}"
                    )
                else:
                    lines.append(f"  {name}  count=0")
        if len(lines) == 1:
            lines.append("(no metrics recorded)")
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()
            self._label_sets.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics


#: The process-wide default registry used by all built-in instrumentation.
REGISTRY = MetricsRegistry()


def counter(name: str, **labels: str) -> Counter:
    return REGISTRY.counter(name, **labels)


def gauge(name: str, **labels: str) -> Gauge:
    return REGISTRY.gauge(name, **labels)


def histogram(name: str, **labels: str) -> Histogram:
    return REGISTRY.histogram(name, **labels)


def metrics_snapshot() -> dict[str, dict[str, Any]]:
    return REGISTRY.snapshot()


def metrics_report() -> str:
    return REGISTRY.report()


def reset_metrics() -> None:
    REGISTRY.reset()
