"""Named counters, gauges, and histograms with snapshot/report export.

The registry is the aggregation side of the telemetry layer: span
tracing (:mod:`repro.telemetry.tracer`) answers *where did this one call
spend its time*, the metrics registry answers *how much work happened
overall* — rows per operator, cache hits, census computations, EF
positions explored. Metrics are cheap enough to update unconditionally,
but instrumented call sites still guard with
:func:`repro.telemetry.tracer.is_enabled` so the disabled path does no
dictionary lookups at all.

Counter/gauge updates are single bytecode-level ``+=``/assignments and
histogram observation appends to a list, so concurrent use from multiple
threads is safe under CPython's GIL for the accuracy telemetry needs;
metric *creation* is guarded by a lock.
"""

from __future__ import annotations

import math
import threading
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "metrics_report",
    "metrics_snapshot",
    "reset_metrics",
]


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A named value that can move both ways (e.g. current cache size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A named distribution: exact count/sum/min/max plus a sample.

    The first :data:`SAMPLE_LIMIT` observations are retained verbatim
    for percentile queries; beyond that the aggregate moments stay exact
    while percentiles come from the retained prefix. Percentiles use the
    nearest-rank definition, so e.g. ``percentile(50)`` of 1..100 is 50.
    """

    SAMPLE_LIMIT = 65536

    __slots__ = ("name", "count", "total", "min", "max", "_sample")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._sample: list[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._sample) < self.SAMPLE_LIMIT:
            self._sample.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the retained sample."""
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if not self._sample:
            return 0.0
        ordered = sorted(self._sample)
        rank = math.ceil(p / 100.0 * len(ordered))
        return ordered[rank - 1]

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.3g})"


class MetricsRegistry:
    """A namespace of metrics, created on first use.

    ``counter``/``gauge``/``histogram`` are get-or-create; asking for an
    existing name with a different kind raises ``TypeError`` (one name,
    one meaning).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind: type):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = kind(name)
                    self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Everything as a JSON-serializable dict, names sorted."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, float]] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.summary()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def report(self) -> str:
        """A human-readable text report of every registered metric."""
        snap = self.snapshot()
        lines = ["=== telemetry metrics ==="]
        if snap["counters"]:
            lines.append("counters:")
            width = max(len(name) for name in snap["counters"])
            for name, value in snap["counters"].items():
                lines.append(f"  {name.ljust(width)}  {value}")
        if snap["gauges"]:
            lines.append("gauges:")
            width = max(len(name) for name in snap["gauges"])
            for name, value in snap["gauges"].items():
                lines.append(f"  {name.ljust(width)}  {value}")
        if snap["histograms"]:
            lines.append("histograms:")
            for name, summary in snap["histograms"].items():
                if summary["count"]:
                    lines.append(
                        f"  {name}  count={summary['count']} mean={summary['mean']:.3f} "
                        f"p50={summary['p50']:.3f} p95={summary['p95']:.3f} "
                        f"max={summary['max']:.3f}"
                    )
                else:
                    lines.append(f"  {name}  count=0")
        if len(lines) == 1:
            lines.append("(no metrics recorded)")
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics


#: The process-wide default registry used by all built-in instrumentation.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return REGISTRY.histogram(name)


def metrics_snapshot() -> dict[str, dict[str, Any]]:
    return REGISTRY.snapshot()


def metrics_report() -> str:
    return REGISTRY.report()


def reset_metrics() -> None:
    REGISTRY.reset()
