"""A lightweight span tracer: nested, timed, attributed spans.

Tracing is **off by default** and costs almost nothing while off:
:func:`span` returns a shared no-op singleton (no allocation, no
timestamp), so instrumentation can stay inline in hot paths. Turn it on
with :func:`enable` (or by exporting ``REPRO_TELEMETRY=1`` before
import) and every ``with span(...)`` block becomes a real
:class:`Span` — pushed on a *thread-local* stack, timed with
``perf_counter``, nested under its parent, and collected into a bounded
buffer of finished root spans once the outermost block exits.

The tracer records structure and durations; scalar context goes into
span attributes via :meth:`Span.set` (a no-op while disabled, so call
sites never need their own enabled checks just to attach attributes —
though they should guard *expensive* attribute computation with
:func:`is_enabled`).
"""

from __future__ import annotations

import functools
import os
import threading
import time
from collections import deque
from collections.abc import Callable
from typing import Any

__all__ = [
    "Span",
    "current_span",
    "disable",
    "drain_spans",
    "enable",
    "finished_spans",
    "is_enabled",
    "reset_tracer",
    "span",
    "traced",
]

#: How many finished *root* spans the tracer retains (oldest dropped).
TRACE_BUFFER_SIZE = 1024

_enabled = False
_local = threading.local()
_finished: deque[Span] = deque(maxlen=TRACE_BUFFER_SIZE)
_finished_lock = threading.Lock()


def enable() -> None:
    """Turn tracing on process-wide (thread stacks stay per-thread)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn tracing off; in-flight spans still finish cleanly."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    """Whether telemetry is currently on (shared with the metrics layer)."""
    return _enabled


def _stack() -> list[Span]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


class Span:
    """One timed region: a name, key/value attributes, and child spans.

    Spans are their own context managers; entering pushes onto the
    calling thread's span stack, exiting pops and attaches the span to
    its parent (or to the finished-roots buffer if it has none).
    """

    __slots__ = ("name", "attributes", "children", "start_s", "end_s")

    def __init__(self, name: str, attributes: dict[str, Any] | None = None) -> None:
        self.name = name
        self.attributes: dict[str, Any] = dict(attributes) if attributes else {}
        self.children: list[Span] = []
        self.start_s = 0.0
        self.end_s = 0.0

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Span":
        _stack().append(self)
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_s = time.perf_counter()
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if stack:
            stack[-1].children.append(self)
        else:
            with _finished_lock:
                _finished.append(self)
        return False

    # -- data access --------------------------------------------------------

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute; returns ``self`` for chaining."""
        self.attributes[key] = value
        return self

    @property
    def duration_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)

    @property
    def duration_ms(self) -> float:
        return self.duration_s * 1000.0

    def walk(self):
        """Yield this span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def render(self, indent: int = 0) -> str:
        """The span subtree as an indented text block."""
        pad = "  " * indent
        attrs = "".join(f" {k}={v}" for k, v in self.attributes.items())
        lines = [f"{pad}{self.name}  {self.duration_ms:.3f}ms{attrs}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration_ms:.3f}ms, "
            f"children={len(self.children)}, attrs={self.attributes!r})"
        )


class _NoopSpan:
    """The shared disabled-mode span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: Any) -> "_NoopSpan":
        return self

    def __repr__(self) -> str:
        return "NoopSpan()"


NOOP_SPAN = _NoopSpan()


def span(name: str, **attributes: Any) -> Span | _NoopSpan:
    """A context-managed span, or the shared no-op when tracing is off.

    Hot call sites should avoid keyword attributes (the kwargs dict is
    built even while disabled) and use :meth:`Span.set` inside the block
    instead.
    """
    if not _enabled:
        return NOOP_SPAN
    return Span(name, attributes)


def traced(name: str | None = None) -> Callable:
    """Decorator form: trace every call of the function as one span."""

    def decorate(fn: Callable) -> Callable:
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return fn(*args, **kwargs)
            with Span(label):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def current_span() -> Span | None:
    """The innermost open span on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


def finished_spans() -> tuple[Span, ...]:
    """Finished root spans, oldest first (bounded buffer)."""
    with _finished_lock:
        return tuple(_finished)


def drain_spans() -> tuple[Span, ...]:
    """Return finished root spans and clear the buffer."""
    with _finished_lock:
        spans = tuple(_finished)
        _finished.clear()
    return spans


def reset_tracer() -> None:
    """Drop finished spans and this thread's open-span stack."""
    with _finished_lock:
        _finished.clear()
    _local.stack = []


if os.environ.get("REPRO_TELEMETRY", "").strip().lower() in ("1", "true", "yes", "on"):
    _enabled = True
