"""A lightweight span tracer: nested, timed, attributed spans.

Tracing is **off by default** and costs almost nothing while off:
:func:`span` returns a shared no-op singleton (no allocation, no
timestamp), so instrumentation can stay inline in hot paths. Turn it on
with :func:`enable` (or by exporting ``REPRO_TELEMETRY=1`` before
import) and every ``with span(...)`` block becomes a real
:class:`Span` — pushed on a *thread-local* stack, timed with
``perf_counter``, nested under its parent, and collected into a bounded
buffer of finished root spans once the outermost block exits.

The tracer records structure and durations; scalar context goes into
span attributes via :meth:`Span.set` (a no-op while disabled, so call
sites never need their own enabled checks just to attach attributes —
though they should guard *expensive* attribute computation with
:func:`is_enabled`).

**Request scoping (telemetry v2).**  The global switch is no longer the
only way to record: :func:`push_scope`/:func:`pop_scope` (driven by
:class:`repro.telemetry.context.trace_scope`) install a *per-request*
stack with its own recording decision, so a sampled server request
records spans even with ``REPRO_TELEMETRY`` unset, an unsampled one
stays free, and a request that dies mid-span can never leak open spans
onto the reused handler thread — the scope's stack is discarded on exit
and the previous one restored.  Every recorded span carries the scope's
``trace_id`` plus its own ``span_id``, and serializes with
:meth:`Span.to_dict` / :func:`span_from_dict` so worker span trees can
cross process boundaries and :func:`adopt_spans` can graft them back
under the parent trace.
"""

from __future__ import annotations

import functools
import itertools
import os
import threading
import time
from collections import deque
from collections.abc import Callable
from typing import Any

__all__ = [
    "Span",
    "adopt_spans",
    "current_span",
    "disable",
    "drain_spans",
    "enable",
    "finished_spans",
    "is_enabled",
    "is_recording",
    "open_root",
    "pop_scope",
    "push_scope",
    "reset_tracer",
    "span",
    "span_from_dict",
    "traced",
]

#: How many finished *root* spans the tracer retains (oldest dropped).
TRACE_BUFFER_SIZE = 1024

_enabled = False
_local = threading.local()
_finished: deque[Span] = deque(maxlen=TRACE_BUFFER_SIZE)
_finished_lock = threading.Lock()


def enable() -> None:
    """Turn tracing on process-wide (thread stacks stay per-thread)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn tracing off; in-flight spans still finish cleanly."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    """Whether telemetry is currently on (shared with the metrics layer)."""
    return _enabled


def is_recording() -> bool:
    """Whether a span created *now on this thread* would be recorded.

    Inside a request scope the scope's sampling decision wins (in both
    directions); outside, the process-wide switch decides.
    """
    recording = getattr(_local, "recording", None)
    return _enabled if recording is None else recording


#: Monotonic span-id source: cheap, unique within the process, rendered
#: as 8 hex chars to match wire span ids.
_span_ids = itertools.count(1)


def _stack() -> list[Span]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


# -- request scoping ----------------------------------------------------------


def push_scope(
    trace_id: str | None, recording: bool, roots: list["Span"] | None = None
) -> tuple:
    """Swap in a fresh, request-scoped tracer state on this thread.

    Returns an opaque token holding the previous state; hand it back to
    :func:`pop_scope`.  ``roots`` (if given) additionally collects the
    root spans finished while the scope is active — the request's span
    trees, available without scanning the global buffer.
    """
    token = (
        getattr(_local, "stack", None),
        getattr(_local, "trace_id", None),
        getattr(_local, "recording", None),
        getattr(_local, "roots", None),
    )
    _local.stack = []
    _local.trace_id = trace_id
    _local.recording = recording
    _local.roots = roots
    return token


def pop_scope(token: tuple) -> int:
    """Restore the pre-scope tracer state; returns how many spans the
    scope abandoned still-open (non-zero means an exception unwound past
    a ``with span(...)`` block — the request died mid-span, and without
    scoping those spans would have re-parented the thread's next trace)."""
    orphans = len(getattr(_local, "stack", None) or ())
    _local.stack, _local.trace_id, _local.recording, _local.roots = token
    return orphans


class Span:
    """One timed region: a name, key/value attributes, and child spans.

    Spans are their own context managers; entering pushes onto the
    calling thread's span stack, exiting pops and attaches the span to
    its parent (or to the finished-roots buffer if it has none).
    """

    __slots__ = (
        "name",
        "attributes",
        "children",
        "start_s",
        "end_s",
        "trace_id",
        "span_id",
    )

    def __init__(self, name: str, attributes: dict[str, Any] | None = None) -> None:
        self.name = name
        self.attributes: dict[str, Any] = dict(attributes) if attributes else {}
        self.children: list[Span] = []
        self.start_s = 0.0
        self.end_s = 0.0
        self.trace_id: str | None = None
        self.span_id = f"{next(_span_ids):08x}"

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Span":
        self.trace_id = getattr(_local, "trace_id", None)
        _stack().append(self)
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_s = time.perf_counter()
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if stack:
            stack[-1].children.append(self)
        else:
            roots = getattr(_local, "roots", None)
            if roots is not None:
                roots.append(self)
            with _finished_lock:
                _finished.append(self)
        return False

    # -- data access --------------------------------------------------------

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute; returns ``self`` for chaining."""
        self.attributes[key] = value
        return self

    @property
    def duration_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)

    @property
    def duration_ms(self) -> float:
        return self.duration_s * 1000.0

    def walk(self):
        """Yield this span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready snapshot of the subtree.

        Durations only — ``perf_counter`` timestamps are meaningless
        across processes, so worker trees ship relative costs and merge
        cleanly into the parent trace.  A still-open span reports the
        duration accumulated so far.
        """
        end = self.end_s if self.end_s else time.perf_counter()
        duration_ms = max(end - self.start_s, 0.0) * 1000.0 if self.start_s else 0.0
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "duration_ms": duration_ms,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def render(self, indent: int = 0) -> str:
        """The span subtree as an indented text block."""
        pad = "  " * indent
        attrs = "".join(f" {k}={v}" for k, v in self.attributes.items())
        lines = [f"{pad}{self.name}  {self.duration_ms:.3f}ms{attrs}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration_ms:.3f}ms, "
            f"children={len(self.children)}, attrs={self.attributes!r})"
        )


class _NoopSpan:
    """The shared disabled-mode span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: Any) -> "_NoopSpan":
        return self

    def __repr__(self) -> str:
        return "NoopSpan()"


NOOP_SPAN = _NoopSpan()


def span(name: str, **attributes: Any) -> Span | _NoopSpan:
    """A context-managed span, or the shared no-op when tracing is off.

    Hot call sites should avoid keyword attributes (the kwargs dict is
    built even while disabled) and use :meth:`Span.set` inside the block
    instead.
    """
    recording = getattr(_local, "recording", None)
    if not (_enabled if recording is None else recording):
        return NOOP_SPAN
    return Span(name, attributes)


def traced(name: str | None = None) -> Callable:
    """Decorator form: trace every call of the function as one span."""

    def decorate(fn: Callable) -> Callable:
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not is_recording():
                return fn(*args, **kwargs)
            with Span(label):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def current_span() -> Span | None:
    """The innermost open span on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


def open_root() -> Span | None:
    """The outermost *open* span on this thread (the live request root)."""
    stack = _stack()
    return stack[0] if stack else None


def span_from_dict(data: dict[str, Any]) -> Span:
    """Rebuild a span subtree from :meth:`Span.to_dict` output."""
    rebuilt = Span(str(data.get("name", "?")), data.get("attributes") or {})
    rebuilt.span_id = str(data.get("span_id", rebuilt.span_id))
    rebuilt.trace_id = data.get("trace_id")
    rebuilt.start_s = 0.0
    rebuilt.end_s = float(data.get("duration_ms", 0.0)) / 1000.0
    rebuilt.children = [span_from_dict(child) for child in data.get("children", ())]
    return rebuilt


def adopt_spans(span_dicts: list[dict[str, Any]]) -> int:
    """Graft serialized worker span trees into this thread's trace.

    Each tree is re-parented under the innermost open span (the usual
    case: the batch/fan-out span is still open while chunk results are
    collected) and stamped with the adopting thread's trace id, so a
    request's span tree stays single-trace even when parts of it ran in
    a worker process.  With no span open the trees land as finished
    roots.  Returns the number of trees adopted; no-ops (returns 0)
    while not recording.
    """
    if not is_recording() or not span_dicts:
        return 0
    trace_id = getattr(_local, "trace_id", None)
    parent = current_span()
    adopted = 0
    for data in span_dicts:
        rebuilt = span_from_dict(data)
        if trace_id is not None:
            for node in rebuilt.walk():
                node.trace_id = trace_id
        if parent is not None:
            parent.children.append(rebuilt)
        else:
            roots = getattr(_local, "roots", None)
            if roots is not None:
                roots.append(rebuilt)
            with _finished_lock:
                _finished.append(rebuilt)
        adopted += 1
    return adopted


def finished_spans() -> tuple[Span, ...]:
    """Finished root spans, oldest first (bounded buffer)."""
    with _finished_lock:
        return tuple(_finished)


def drain_spans() -> tuple[Span, ...]:
    """Return finished root spans and clear the buffer."""
    with _finished_lock:
        spans = tuple(_finished)
        _finished.clear()
    return spans


def reset_tracer() -> None:
    """Drop finished spans and this thread's open-span stack."""
    with _finished_lock:
        _finished.clear()
    _local.stack = []


if os.environ.get("REPRO_TELEMETRY", "").strip().lower() in ("1", "true", "yes", "on"):
    _enabled = True
