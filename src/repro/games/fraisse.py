"""Fraïssé back-and-forth systems: the algebraic face of EF games.

The EF game has an equivalent, game-free formulation (Fraïssé's original
one): A ≡_n B iff there is a sequence I_n ⊆ I_{n-1} ⊆ ... ⊆ I_0 of
non-empty sets of partial isomorphisms with the *back-and-forth*
property — every f ∈ I_{j+1} extends, for every a ∈ A (forth) and every
b ∈ B (back), to some g ∈ I_j.

This module computes the *maximal* such sequence bottom-up:

    I_0  = all partial isomorphisms of size ≤ n
    I_{j+1} = { f ∈ I_j : f has the back-and-forth property into I_j }

and decides ≡_n by asking whether ∅ ∈ I_n. It is a second, independent
decision procedure for elementary equivalence up to rank n — the test
suite checks it agrees with the game solver on every pair, which guards
both implementations at once.

The maximal sequence is also *informative*: ``levels[j]`` tells exactly
which positions the duplicator can still hold for j more rounds, i.e.
the value function of the game.
"""

from __future__ import annotations

from repro.errors import GameError
from repro.structures.isomorphism import is_partial_isomorphism
from repro.structures.structure import Element, Structure

__all__ = ["back_and_forth_system", "fraisse_equivalent"]

PartialMap = frozenset[tuple[Element, Element]]


def _partial_isomorphisms(left: Structure, right: Structure, max_size: int) -> set[PartialMap]:
    """All partial isomorphisms left → right with at most ``max_size`` pairs.

    Built incrementally: maps of size s+1 extend maps of size s, so
    invalid branches are pruned early.
    """
    current: set[PartialMap] = {frozenset()}
    result: set[PartialMap] = {frozenset()}
    for _ in range(max_size):
        extended: set[PartialMap] = set()
        for partial in current:
            mapped = {a for a, _ in partial}
            image = {b for _, b in partial}
            for a in left.universe:
                if a in mapped:
                    continue
                for b in right.universe:
                    if b in image:
                        continue
                    candidate = partial | {(a, b)}
                    if candidate in extended:
                        continue
                    if is_partial_isomorphism(left, right, list(candidate)):
                        extended.add(candidate)
        result |= extended
        current = extended
        if not current:
            break
    return result


def back_and_forth_system(
    left: Structure,
    right: Structure,
    rounds: int,
) -> list[set[PartialMap]]:
    """The maximal back-and-forth sequence I_0 ⊇ I_1 ⊇ ... ⊇ I_rounds.

    ``levels[j]`` is the set of partial isomorphisms from which the
    duplicator can survive j more rounds. Computing all levels costs
    O(|I_0|² · n) in the worst case; |I_0| is itself exponential in
    ``rounds``, so keep rounds ≤ 3 and structures small (the same regime
    as the exact game solver).
    """
    if left.signature != right.signature:
        raise GameError("back-and-forth systems require structures over the same signature")
    if rounds < 0:
        raise GameError(f"rounds must be non-negative, got {rounds}")

    level = _partial_isomorphisms(left, right, rounds)
    levels = [set(level)]
    for _ in range(rounds):
        survivors: set[PartialMap] = set()
        for partial in level:
            if len(partial) >= rounds:
                # A full-length map has no rounds left to survive; it can
                # stay only if extensions are never demanded of it — but
                # since each level strips one round, maps of size s are
                # only consulted at levels ≤ rounds − s. Keeping them out
                # here keeps the invariant |f| + level ≤ rounds.
                continue
            if _has_back_and_forth(partial, left, right, level):
                survivors.add(partial)
        levels.append(survivors)
        level = survivors
    return levels


def _has_back_and_forth(
    partial: PartialMap,
    left: Structure,
    right: Structure,
    pool: set[PartialMap],
) -> bool:
    mapped = {a for a, _ in partial}
    image = {b for _, b in partial}
    # Forth: every a ∈ A extends.
    for a in left.universe:
        if a in mapped:
            continue
        if not any(partial | {(a, b)} in pool for b in right.universe if b not in image):
            return False
    # Back: every b ∈ B extends.
    for b in right.universe:
        if b in image:
            continue
        if not any(partial | {(a, b)} in pool for a in left.universe if a not in mapped):
            return False
    return True


def fraisse_equivalent(left: Structure, right: Structure, rounds: int) -> bool:
    """Decide A ≡_rounds B via the maximal back-and-forth sequence.

    Equivalent to :func:`repro.games.ef.ef_equivalent` (the test suite
    asserts the agreement), computed without game search.
    """
    levels = back_and_forth_system(left, right, rounds)
    return frozenset() in levels[rounds]
