"""The Ehrenfeucht–Fraïssé game: an exact solver with strategy extraction.

The n-round EF game G_n(A, B) (§3.2 of the paper): in each round the
spoiler picks an element in one structure and the duplicator answers in
the other; the duplicator wins iff after n rounds the played pairs form a
partial isomorphism. ``A ∼_{G_n} B`` (duplicator has a winning strategy)
iff A ≡_n B (they agree on all sentences of quantifier rank ≤ n).

Deciding the winner is PSPACE-hard in general, so the solver is an exact
memoized minimax:

* positions are the *set* of played pairs plus rounds remaining (the
  order of play is irrelevant — only the partial map matters);
* a spoiler move that replays an already-played element never helps (it
  wastes a round: duplicator's reply is forced and the position is
  unchanged), so only fresh elements are searched;
* partial-isomorphism maintenance is checked incrementally — only tuples
  through the new pair are examined.

A per-call work budget turns runaway searches into
:class:`~repro.errors.BudgetExceededError` instead of hangs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Literal

from repro.errors import BudgetExceededError, GameError
from repro.resilience.budget import CancelToken
from repro.resilience.faults import fault_point
from repro.structures.isomorphism import extends_partial_isomorphism
from repro.structures.structure import Element, Structure
from repro.telemetry.metrics import counter as _counter
from repro.telemetry.metrics import histogram as _histogram
from repro.telemetry.tracer import is_enabled as _telemetry_enabled
from repro.telemetry.tracer import span as _span

__all__ = [
    "GamePosition",
    "GameResult",
    "Move",
    "solve_ef_game",
    "ef_equivalent",
    "play_ef_game",
    "optimal_spoiler",
    "optimal_duplicator",
]

Side = Literal["left", "right"]


@dataclass(frozen=True)
class GamePosition:
    """A game position: the pairs played so far and the rounds remaining.

    ``pairs[i] = (a_i, b_i)`` with a_i from the left structure. The play
    order is retained for display, but the solver treats positions as
    sets of pairs.
    """

    pairs: tuple[tuple[Element, Element], ...]
    rounds_left: int

    def mapping(self) -> dict[Element, Element]:
        return dict(self.pairs)


@dataclass(frozen=True)
class Move:
    """One spoiler move: a side and an element of that side's structure."""

    side: Side
    element: Element


@dataclass
class GameResult:
    """Outcome of solving an EF game.

    ``duplicator_wins`` answers A ∼_{G_n} B; ``explored`` counts solver
    positions (a machine-independent cost measure used by bench E3).
    """

    duplicator_wins: bool
    rounds: int
    explored: int
    _value: Callable[[frozenset[tuple[Element, Element]], int], bool] = field(repr=False, default=None)  # type: ignore[assignment]


def _check_position(left: Structure, right: Structure, position: GamePosition) -> None:
    for a, b in position.pairs:
        if a not in left:
            raise GameError(f"left element {a!r} is not in the left structure")
        if b not in right:
            raise GameError(f"right element {b!r} is not in the right structure")
    if position.rounds_left < 0:
        raise GameError(f"rounds_left must be non-negative, got {position.rounds_left}")


def solve_ef_game(
    left: Structure,
    right: Structure,
    rounds: int,
    start: GamePosition | None = None,
    budget: int = 5_000_000,
    memoize: bool = True,
    cancel_token: CancelToken | None = None,
) -> GameResult:
    """Decide who wins G_rounds(left, right), exactly.

    Parameters
    ----------
    start:
        Optional mid-game position to solve from (used for strategy
        replay and by the locality tools); by default the empty position.
    budget:
        Maximum number of position expansions before raising
        :class:`BudgetExceededError`.
    memoize:
        Disable only for ablation experiments: without the position
        table the search revisits permutations of the same position,
        multiplying the work by up to rounds!.
    cancel_token:
        Optional live budget: each position expansion charges one solver
        node against it (``max_solver_nodes``) and its deadline is
        checked on the amortized tick schedule, so a wall-clock deadline
        interrupts the minimax mid-search. Complements the per-call
        ``budget`` integer, which survives unchanged.
    """
    if left.signature != right.signature:
        raise GameError("EF games require structures over the same signature")
    if start is None:
        start = GamePosition((), rounds)
    _check_position(left, right, start)
    fault_point("games.ef.solve")

    memo: dict[tuple[frozenset[tuple[Element, Element]], int], bool] = {}
    explored = 0

    left_universe = left.universe
    right_universe = right.universe

    def duplicator_wins(
        pairs: frozenset[tuple[Element, Element]],
        mapping: dict[Element, Element],
        inverse: dict[Element, Element],
        rounds_left: int,
    ) -> bool:
        nonlocal explored
        if rounds_left == 0:
            return True
        key = (pairs, rounds_left)
        if memoize:
            cached = memo.get(key)
            if cached is not None:
                return cached
        explored += 1
        if explored > budget:
            raise BudgetExceededError("EF solver budget exceeded", spent=explored, budget=budget)
        if cancel_token is not None:
            cancel_token.consume_nodes(1, "games.ef")

        result = True
        # Spoiler tries fresh elements on the left...
        for a in left_universe:
            if a in mapping:
                continue
            if not _has_response(a, "left", pairs, mapping, inverse, rounds_left):
                result = False
                break
        if result:
            # ... and on the right.
            for b in right_universe:
                if b in inverse:
                    continue
                if not _has_response(b, "right", pairs, mapping, inverse, rounds_left):
                    result = False
                    break
        if memoize:
            memo[key] = result
        return result

    def _has_response(
        element: Element,
        side: Side,
        pairs: frozenset[tuple[Element, Element]],
        mapping: dict[Element, Element],
        inverse: dict[Element, Element],
        rounds_left: int,
    ) -> bool:
        responses = right_universe if side == "left" else left_universe
        for response in responses:
            if side == "left":
                a, b = element, response
            else:
                a, b = response, element
            if b in inverse or a in mapping:
                continue
            if not extends_partial_isomorphism(left, right, mapping, inverse, a, b):
                continue
            mapping[a] = b
            inverse[b] = a
            won = duplicator_wins(pairs | {(a, b)}, mapping, inverse, rounds_left - 1)
            del mapping[a]
            del inverse[b]
            if won:
                return True
        return False

    start_mapping: dict[Element, Element] = {}
    start_inverse: dict[Element, Element] = {}
    for a, b in start.pairs:
        if not extends_partial_isomorphism(left, right, start_mapping, start_inverse, a, b):
            # The starting position is already lost for the duplicator.
            if _telemetry_enabled():
                _counter("games.ef.solves").inc()
            return GameResult(False, rounds, 0, _value=lambda *_: False)
        start_mapping[a] = b
        start_inverse[b] = a

    with _span("games.ef.solve") as solve_span:
        wins = duplicator_wins(
            frozenset(start.pairs), start_mapping, start_inverse, start.rounds_left
        )
        solve_span.set("rounds", rounds).set("explored", explored).set(
            "duplicator_wins", wins
        )
    if _telemetry_enabled():
        _counter("games.ef.solves").inc()
        _counter("games.ef.positions_explored").inc(explored)
        _histogram("games.ef.explored_per_solve").observe(explored)

    def value(pairs: frozenset[tuple[Element, Element]], rounds_left: int) -> bool:
        mapping = dict(pairs)
        inverse = {b: a for a, b in pairs}
        return duplicator_wins(pairs, mapping, inverse, rounds_left)

    return GameResult(wins, rounds, explored, _value=value)


def ef_equivalent(
    left: Structure,
    right: Structure,
    rounds: int,
    budget: int = 5_000_000,
    cancel_token: CancelToken | None = None,
) -> bool:
    """Whether A ∼_{G_n} B — equivalently (EF theorem) A ≡_n B."""
    return solve_ef_game(
        left, right, rounds, budget=budget, cancel_token=cancel_token
    ).duplicator_wins


# ---------------------------------------------------------------------------
# Playing games: pit concrete strategies against each other
# ---------------------------------------------------------------------------

SpoilerStrategy = Callable[[Structure, Structure, GamePosition], Move]
DuplicatorStrategy = Callable[[Structure, Structure, GamePosition, Move], Element]


def play_ef_game(
    left: Structure,
    right: Structure,
    rounds: int,
    spoiler: SpoilerStrategy,
    duplicator: DuplicatorStrategy,
) -> tuple[str, GamePosition]:
    """Play out G_rounds with the given strategies; return (winner, final).

    The winner is ``"duplicator"`` if every prefix of the play is a
    partial isomorphism after all rounds, else ``"spoiler"`` (the game
    stops at the first violated position). Strategy outputs are
    validated; illegal moves raise :class:`GameError`.

    This is how the strategy *library* (S4) is validated: a closed-form
    duplicator strategy playing against :func:`optimal_spoiler` must win
    exactly when the exact solver says the duplicator wins.
    """
    if left.signature != right.signature:
        raise GameError("EF games require structures over the same signature")
    if _telemetry_enabled():
        _counter("games.ef.plays").inc()
    pairs: list[tuple[Element, Element]] = []
    mapping: dict[Element, Element] = {}
    inverse: dict[Element, Element] = {}
    for round_index in range(rounds):
        if _telemetry_enabled():
            _counter("games.ef.rounds_played").inc()
        position = GamePosition(tuple(pairs), rounds - round_index)
        move = spoiler(left, right, position)
        if move.side not in ("left", "right"):
            raise GameError(f"spoiler returned invalid side {move.side!r}")
        source = left if move.side == "left" else right
        if move.element not in source:
            raise GameError(f"spoiler played {move.element!r}, not in the {move.side} structure")
        response = duplicator(left, right, position, move)
        if move.side == "left":
            a, b = move.element, response
            if b not in right:
                raise GameError(f"duplicator played {b!r}, not in the right structure")
        else:
            a, b = response, move.element
            if a not in left:
                raise GameError(f"duplicator played {a!r}, not in the left structure")
        consistent = (mapping.get(a, b) == b) and (inverse.get(b, a) == a)
        fresh = a not in mapping and b not in inverse
        if fresh:
            if not extends_partial_isomorphism(left, right, mapping, inverse, a, b):
                pairs.append((a, b))
                return "spoiler", GamePosition(tuple(pairs), rounds - round_index - 1)
            mapping[a] = b
            inverse[b] = a
        elif not consistent:
            pairs.append((a, b))
            return "spoiler", GamePosition(tuple(pairs), rounds - round_index - 1)
        pairs.append((a, b))
    return "duplicator", GamePosition(tuple(pairs), 0)


def optimal_spoiler(budget: int = 5_000_000) -> SpoilerStrategy:
    """A perfect spoiler: plays a winning move whenever one exists.

    Solves the remaining game exactly at every turn, so only use on
    small structures. If the position is already winning for the
    duplicator, plays the first fresh element (it must play something).
    """

    def strategy(left: Structure, right: Structure, position: GamePosition) -> Move:
        mapping = position.mapping()
        inverse = {b: a for a, b in position.pairs}
        rounds_left = position.rounds_left
        for side, universe, played in (
            ("left", left.universe, mapping),
            ("right", right.universe, inverse),
        ):
            for element in universe:
                if element in played:
                    continue
                # The move wins if the duplicator has NO good response.
                if not _spoiler_move_refuted(
                    left, right, position, side, element, budget
                ):
                    return Move(side, element)  # type: ignore[arg-type]
        # No winning move: play any fresh element (or element 0 if none).
        for side, universe, played in (
            ("left", left.universe, mapping),
            ("right", right.universe, inverse),
        ):
            for element in universe:
                if element not in played:
                    return Move(side, element)  # type: ignore[arg-type]
        return Move("left", left.universe[0])

    return strategy


def _spoiler_move_refuted(
    left: Structure,
    right: Structure,
    position: GamePosition,
    side: Side,
    element: Element,
    budget: int,
) -> bool:
    """Whether the duplicator has a winning answer to this spoiler move."""
    mapping = position.mapping()
    inverse = {b: a for a, b in position.pairs}
    responses = right.universe if side == "left" else left.universe
    for response in responses:
        if side == "left":
            a, b = element, response
        else:
            a, b = response, element
        if a in mapping or b in inverse:
            continue
        if not extends_partial_isomorphism(left, right, mapping, inverse, a, b):
            continue
        next_position = GamePosition(
            position.pairs + ((a, b),), position.rounds_left - 1
        )
        result = solve_ef_game(
            left, right, next_position.rounds_left, start=next_position, budget=budget
        )
        if result.duplicator_wins:
            return True
    return False


def optimal_duplicator(budget: int = 5_000_000) -> DuplicatorStrategy:
    """A perfect duplicator: answers with a winning response when one exists.

    When the position is already lost it falls back to any legal-looking
    response (preferring ones that keep the partial isomorphism alive for
    as long as possible).
    """

    def strategy(
        left: Structure, right: Structure, position: GamePosition, move: Move
    ) -> Element:
        mapping = position.mapping()
        inverse = {b: a for a, b in position.pairs}
        responses = right.universe if move.side == "left" else left.universe
        fallback: Element | None = None
        # Forced reply if the spoiler replayed an old element.
        if move.side == "left" and move.element in mapping:
            return mapping[move.element]
        if move.side == "right" and move.element in inverse:
            return inverse[move.element]
        for response in responses:
            if move.side == "left":
                a, b = move.element, response
                played = b in inverse
            else:
                a, b = response, move.element
                played = a in mapping
            if played:
                continue
            if not extends_partial_isomorphism(left, right, mapping, inverse, a, b):
                continue
            if fallback is None:
                fallback = response
            next_position = GamePosition(
                position.pairs + ((a, b),), position.rounds_left - 1
            )
            result = solve_ef_game(
                left, right, next_position.rounds_left, start=next_position, budget=budget
            )
            if result.duplicator_wins:
                return response
        if fallback is not None:
            return fallback
        return responses[0]

    return strategy
