"""k-pebble games: equivalence in the bounded-variable fragments FO^k.

In the k-pebble game the players have k pairs of pebbles; in each round
the spoiler may *move* a pebble already on the board instead of having an
unbounded supply. Duplicator winning the m-round k-pebble game
characterizes agreement on FO^k sentences of quantifier rank ≤ m, and
winning *forever* characterizes agreement on all of FO^k (infinitary
C-free version). The forever-game is decidable by a greatest-fixpoint
computation over positions, implemented here.

The paper mentions bounded-variable logics as part of the toolbox; the
pebble solver also provides an independent lower bound for the EF solver
in tests (duplicator wins G_n ⇒ duplicator wins the n-round k-pebble
game for every k ≥ n).
"""

from __future__ import annotations

import itertools

from repro.errors import BudgetExceededError, GameError
from repro.structures.isomorphism import is_partial_isomorphism
from repro.structures.structure import Element, Structure

__all__ = [
    "pebble_game_equivalent",
    "pebble_forever_equivalent",
    "minimal_separating_rounds",
    "minimal_separating_pebbles",
]

Position = frozenset[tuple[Element, Element]]


def _is_valid(left: Structure, right: Structure, position: Position) -> bool:
    mapping: dict[Element, Element] = {}
    inverse: dict[Element, Element] = {}
    for a, b in position:
        if mapping.get(a, b) != b or inverse.get(b, a) != a:
            return False
        mapping[a] = b
        inverse[b] = a
    return is_partial_isomorphism(left, right, list(position))


def pebble_game_equivalent(
    left: Structure,
    right: Structure,
    pebbles: int,
    rounds: int,
    budget: int = 2_000_000,
) -> bool:
    """Whether the duplicator wins the ``rounds``-round ``pebbles``-pebble game.

    Positions are sets of at most k pebbled pairs; pebble identity is
    irrelevant because the spoiler may move any pebble. A spoiler turn:
    optionally remove one pair (mandatory when k pairs are on the board),
    then place a fresh pebble on any element of either structure; the
    duplicator answers in the other structure. The duplicator survives a
    round iff the new position is a partial isomorphism.
    """
    if left.signature != right.signature:
        raise GameError("pebble games require structures over the same signature")
    if pebbles < 1:
        raise GameError(f"need at least one pebble, got {pebbles}")

    memo: dict[tuple[Position, int], bool] = {}
    explored = 0

    def duplicator_wins(position: Position, rounds_left: int) -> bool:
        nonlocal explored
        if rounds_left == 0:
            return True
        key = (position, rounds_left)
        cached = memo.get(key)
        if cached is not None:
            return cached
        explored += 1
        if explored > budget:
            raise BudgetExceededError("pebble solver budget exceeded", spent=explored, budget=budget)

        # Spoiler picks the sub-position to keep (drop one pair, or none
        # if a pebble pair is still unused), a side, and an element.
        keeps: set[Position] = set()
        if len(position) < pebbles:
            keeps.add(position)
        for pair in position:
            keeps.add(position - {pair})

        result = True
        for keep in keeps:
            for side, universe in (("left", left.universe), ("right", right.universe)):
                for element in universe:
                    if not _duplicator_answers(keep, side, element, rounds_left):
                        result = False
                        memo[key] = result
                        return result
        memo[key] = result
        return result

    def _duplicator_answers(keep: Position, side: str, element: Element, rounds_left: int) -> bool:
        responses = right.universe if side == "left" else left.universe
        for response in responses:
            pair = (element, response) if side == "left" else (response, element)
            candidate = keep | {pair}
            if not _is_valid(left, right, candidate):
                continue
            if duplicator_wins(candidate, rounds_left - 1):
                return True
        return False

    return duplicator_wins(frozenset(), rounds)


def pebble_forever_equivalent(left: Structure, right: Structure, pebbles: int) -> bool:
    """Whether the duplicator survives the k-pebble game *forever*.

    Greatest fixpoint: start with all valid positions (partial
    isomorphisms of size ≤ k) and repeatedly delete positions from which
    some spoiler move has no surviving answer, until stable. The
    duplicator wins forever iff the empty position survives.

    This decides A ≡_{FO^k} B (agreement on all k-variable sentences of
    arbitrary quantifier rank) in polynomial time for fixed k.
    """
    if left.signature != right.signature:
        raise GameError("pebble games require structures over the same signature")
    if pebbles < 1:
        raise GameError(f"need at least one pebble, got {pebbles}")

    positions: set[Position] = set()
    for size in range(pebbles + 1):
        for left_tuple in itertools.combinations(left.universe, size):
            for right_tuple in itertools.permutations(right.universe, size):
                candidate: Position = frozenset(zip(left_tuple, right_tuple))
                if _is_valid(left, right, candidate):
                    positions.add(candidate)

    def survives(position: Position, alive: set[Position]) -> bool:
        keeps: set[Position] = set()
        if len(position) < pebbles:
            keeps.add(position)
        for pair in position:
            keeps.add(position - {pair})
        for keep in keeps:
            for side, universe, responses in (
                ("left", left.universe, right.universe),
                ("right", right.universe, left.universe),
            ):
                for element in universe:
                    answered = False
                    for response in responses:
                        pair = (
                            (element, response) if side == "left" else (response, element)
                        )
                        if (keep | {pair}) in alive:
                            answered = True
                            break
                    if not answered:
                        return False
        return True

    changed = True
    while changed:
        changed = False
        for position in list(positions):
            if not survives(position, positions):
                positions.discard(position)
                changed = True

    return frozenset() in positions


def minimal_separating_rounds(
    left: Structure,
    right: Structure,
    max_rounds: int,
    budget: int = 5_000_000,
) -> int | None:
    """The least n with A ≢_n B, searching n = 1..max_rounds.

    Equivalently (EF theorem): the minimal quantifier rank of any FO
    sentence separating the two structures. Returns None when even
    ``max_rounds`` rounds do not separate them.
    """
    from repro.games.ef import ef_equivalent

    for rounds in range(1, max_rounds + 1):
        if not ef_equivalent(left, right, rounds, budget=budget):
            return rounds
    return None


def minimal_separating_pebbles(
    left: Structure,
    right: Structure,
    max_pebbles: int,
) -> int | None:
    """The least k such that some FO^k sentence separates the structures.

    Uses the forever k-pebble game, so arbitrary quantifier rank is
    allowed — this measures pure *variable-width*. Returns None if even
    FO^max_pebbles cannot tell them apart.
    """
    for pebbles in range(1, max_pebbles + 1):
        if not pebble_forever_equivalent(left, right, pebbles):
            return pebbles
    return None
