"""A library of closed-form duplicator winning strategies.

The paper (§3.2, citing Fagin–Stockmeyer–Vardi) suggests "building a
library of winning strategies for the duplicator". This module is that
library:

* :func:`set_duplicator` — the copying strategy on bare sets: wins the
  n-round game on any two sets with ≥ n elements (§3.2's easy example);
* :func:`linear_order_duplicator` — the interval (gap-halving) strategy
  on linear orders: wins G_n(L_m, L_k) whenever m = k or both
  m, k ≥ 2ⁿ − 1, which proves Theorem 3.1 for *all* sizes, not just the
  ones the exact solver can reach;
* :func:`union_duplicator` — the composition lemma: winning strategies
  on (A₁,B₁) and (A₂,B₂) combine to one on (A₁⊕A₂, B₁⊕B₂).

Each strategy is a plain function compatible with
:func:`repro.games.ef.play_ef_game`; the tests validate them by playing
against the exact :func:`repro.games.ef.optimal_spoiler`.
"""

from __future__ import annotations

from repro.errors import GameError
from repro.games.ef import DuplicatorStrategy, GamePosition, Move
from repro.structures.structure import Element, Structure

__all__ = [
    "set_duplicator",
    "linear_order_duplicator",
    "union_duplicator",
    "product_duplicator",
    "gap_halving_spoiler",
    "order_ranks",
    "linear_order_threshold",
    "theorem_3_1_families",
]


def linear_order_threshold(n: int) -> int:
    """The tight size threshold for Theorem 3.1: L_m ≡_n L_k iff m = k or
    both m, k ≥ 2ⁿ − 1.

    The paper states the (slightly weaker) sufficient bound m, k ≥ 2ⁿ;
    experiment E3 confirms with the exact solver that 2ⁿ − 1 is tight.
    """
    if n < 0:
        raise GameError(f"rounds must be non-negative, got {n}")
    return 2**n - 1


def theorem_3_1_families(n: int) -> tuple[int, int]:
    """The (|A_n|, |B_n|) sizes the paper picks to kill EVEN on orders.

    A_n = L_{2ⁿ} (even) and B_n = L_{2ⁿ+1} (odd): both are ≥ 2ⁿ, so by
    Theorem 3.1 they are ≡_n, yet they disagree on EVEN.
    """
    return 2**n, 2**n + 1


# ---------------------------------------------------------------------------
# Bare sets
# ---------------------------------------------------------------------------


def set_duplicator() -> DuplicatorStrategy:
    """The copying strategy on structures over the empty signature.

    Replayed elements get the forced answer; fresh elements get any
    fresh answer. Wins the n-round game whenever both sets have at least
    n elements (or equal sizes below n).
    """

    def strategy(
        left: Structure, right: Structure, position: GamePosition, move: Move
    ) -> Element:
        mapping = position.mapping()
        inverse = {b: a for a, b in position.pairs}
        if move.side == "left":
            if move.element in mapping:
                return mapping[move.element]
            for candidate in right.universe:
                if candidate not in inverse:
                    return candidate
            return right.universe[0]
        if move.element in inverse:
            return inverse[move.element]
        for candidate in left.universe:
            if candidate not in mapping:
                return candidate
        return left.universe[0]

    return strategy


# ---------------------------------------------------------------------------
# Linear orders
# ---------------------------------------------------------------------------


def order_ranks(structure: Structure, relation: str = "<") -> dict[Element, int]:
    """Rank of each element in a linear order (0 = least).

    Raises :class:`GameError` if the relation is not a strict linear
    order on the universe.
    """
    tuples = structure.tuples(relation)
    below = {element: 0 for element in structure.universe}
    for _, greater in tuples:
        below[greater] += 1
    ranks = dict(below)
    if sorted(ranks.values()) != list(range(structure.size)):
        raise GameError(f"relation {relation!r} is not a linear order on the universe")
    expected = structure.size * (structure.size - 1) // 2
    if len(tuples) != expected:
        raise GameError(f"relation {relation!r} is not a (total) linear order")
    return ranks


def linear_order_duplicator(relation: str = "<") -> DuplicatorStrategy:
    """The interval strategy proving Theorem 3.1.

    Invariant maintained with r rounds remaining: for every pair of
    consecutive marked positions (with virtual sentinels one step outside
    both ends), the two gap widths are either equal or both ≥ 2^r. The
    response rule splits the corresponding gap: copy the offset from the
    near end when it is < 2^(r-1), otherwise land ≥ 2^(r-1) from both
    ends. Wins G_n(L_m, L_k) whenever m = k or m, k ≥ 2ⁿ − 1.
    """

    def strategy(
        left: Structure, right: Structure, position: GamePosition, move: Move
    ) -> Element:
        left_ranks = left.cached(("order-ranks", relation), lambda: order_ranks(left, relation))
        right_ranks = right.cached(("order-ranks", relation), lambda: order_ranks(right, relation))
        left_by_rank = {rank: element for element, rank in left_ranks.items()}  # type: ignore[union-attr]
        right_by_rank = {rank: element for element, rank in right_ranks.items()}  # type: ignore[union-attr]

        if move.side == "left":
            my_ranks, my_by_rank = left_ranks, left_by_rank
            other_ranks, other_by_rank = right_ranks, right_by_rank
            pair_index = 0
        else:
            my_ranks, my_by_rank = right_ranks, right_by_rank
            other_ranks, other_by_rank = left_ranks, left_by_rank
            pair_index = 1

        played = [
            (my_ranks[pair[pair_index]], other_ranks[pair[1 - pair_index]])  # type: ignore[index]
            for pair in position.pairs
        ]
        p = my_ranks[move.element]  # type: ignore[index]
        for mine, other in played:
            if mine == p:
                return other_by_rank[other]

        my_size = len(my_ranks)  # type: ignore[arg-type]
        other_size = len(other_ranks)  # type: ignore[arg-type]
        marks = sorted(played) + [(-1, -1), (my_size, other_size)]
        marks.sort()
        # Find the enclosing gap.
        lower = max(mark for mark in marks if mark[0] < p)
        upper = min(mark for mark in marks if mark[0] > p)
        a_low, b_low = lower
        a_high, b_high = upper

        u = p - a_low  # offset from the left end of the gap (>= 1)
        v = a_high - p  # offset from the right end (>= 1)
        gap_mine = a_high - a_low
        gap_other = b_high - b_low
        remaining = position.rounds_left - 1
        half = 2**remaining

        if gap_mine == gap_other:
            offset = u
        elif u < half:
            offset = u
        elif v < half:
            offset = gap_other - v
        else:
            offset = half
        # Clamp into the open interval (graceful degradation in lost
        # positions; in winning positions the invariant guarantees room).
        offset = max(1, min(offset, gap_other - 1))
        target = b_low + offset
        target = max(0, min(target, other_size - 1))
        return other_by_rank[target]

    return strategy


def gap_halving_spoiler(relation: str = "<"):
    """A cheap adversarial *spoiler* for linear orders.

    Picks the pair of corresponding gaps with the largest width mismatch
    and splits the smaller side's gap in the middle — the classic attack
    that defeats any duplicator on orders below the 2ⁿ − 1 threshold,
    without solving the game. Used to stress the interval duplicator at
    sizes the optimal (game-solving) spoiler cannot reach.
    """

    def strategy(left: Structure, right: Structure, position: GamePosition) -> Move:
        left_ranks = left.cached(("order-ranks", relation), lambda: order_ranks(left, relation))
        right_ranks = right.cached(("order-ranks", relation), lambda: order_ranks(right, relation))
        left_by_rank = {rank: element for element, rank in left_ranks.items()}  # type: ignore[union-attr]
        right_by_rank = {rank: element for element, rank in right_ranks.items()}  # type: ignore[union-attr]
        marks = sorted(
            (left_ranks[a], right_ranks[b]) for a, b in position.pairs  # type: ignore[index]
        )
        marks = [(-1, -1)] + marks + [(len(left_ranks), len(right_ranks))]  # type: ignore[arg-type]
        best: tuple[int, Move] | None = None
        for (a_low, b_low), (a_high, b_high) in zip(marks, marks[1:]):
            gap_left = a_high - a_low
            gap_right = b_high - b_low
            mismatch = abs(gap_left - gap_right)
            if best is not None and mismatch <= best[0]:
                continue
            if gap_left <= gap_right and gap_left > 1:
                move = Move("left", left_by_rank[a_low + gap_left // 2])
            elif gap_right > 1:
                move = Move("right", right_by_rank[b_low + gap_right // 2])
            else:
                continue
            best = (mismatch, move)
        if best is None:
            played = {a for a, _ in position.pairs}
            for element in left.universe:
                if element not in played:
                    return Move("left", element)
            return Move("left", left.universe[0])
        return best[1]

    return strategy


# ---------------------------------------------------------------------------
# Disjoint unions (the composition lemma)
# ---------------------------------------------------------------------------


def union_duplicator(
    first: DuplicatorStrategy,
    second: DuplicatorStrategy,
    components: tuple[tuple[Structure, Structure], tuple[Structure, Structure]],
) -> DuplicatorStrategy:
    """Compose per-component strategies into one on the disjoint unions.

    ``components`` is ``((A1, B1), (A2, B2))``; the union structures must
    be built with :meth:`Structure.disjoint_union`, whose elements are
    tagged ``(0, element)`` / ``(1, element)``. The composed strategy
    answers a move in component i using strategy i on the projected
    position — the proof of the composition lemma, executed.
    """
    strategies = (first, second)

    def strategy(
        left: Structure, right: Structure, position: GamePosition, move: Move
    ) -> Element:
        tag, inner_element = move.element  # type: ignore[misc]
        if tag not in (0, 1):
            raise GameError(f"element {move.element!r} is not tagged by disjoint_union")
        component_left, component_right = components[tag]
        projected = tuple(
            (a[1], b[1])
            for a, b in position.pairs
            if a[0] == tag and b[0] == tag
        )
        inner_position = GamePosition(projected, position.rounds_left)
        inner_move = Move(move.side, inner_element)
        answer = strategies[tag](component_left, component_right, inner_position, inner_move)
        return (tag, answer)

    return strategy


def product_duplicator(
    first: DuplicatorStrategy,
    second: DuplicatorStrategy,
    components: tuple[tuple[Structure, Structure], tuple[Structure, Structure]],
) -> DuplicatorStrategy:
    """The product composition lemma: A₁ ∼_n B₁ and A₂ ∼_n B₂ imply
    A₁×A₂ ∼_n B₁×B₂, with the duplicator answering coordinatewise.

    ``components`` is ``((A1, B1), (A2, B2))``; the product structures
    must come from :meth:`Structure.direct_product`, whose elements are
    pairs ``(a, c)``. Coordinatewise responses work because relations in
    the product hold iff they hold in *both* coordinates, so a pair of
    partial isomorphisms is a partial isomorphism of the products.
    """
    (first_left, first_right), (second_left, second_right) = components

    def strategy(
        left: Structure, right: Structure, position: GamePosition, move: Move
    ) -> Element:
        element_a, element_c = move.element  # type: ignore[misc]
        first_pairs = tuple((a[0], b[0]) for a, b in position.pairs)
        second_pairs = tuple((a[1], b[1]) for a, b in position.pairs)
        answer_a = first(
            first_left,
            first_right,
            GamePosition(first_pairs, position.rounds_left),
            Move(move.side, element_a),
        )
        answer_c = second(
            second_left,
            second_right,
            GamePosition(second_pairs, position.rounds_left),
            Move(move.side, element_c),
        )
        return (answer_a, answer_c)

    return strategy
