"""Ehrenfeucht–Fraïssé and pebble games (S4).

Exact solvers, a library of closed-form duplicator strategies, and
separating-sentence extraction.
"""

from repro.games.ef import (
    GamePosition,
    GameResult,
    Move,
    ef_equivalent,
    optimal_duplicator,
    optimal_spoiler,
    play_ef_game,
    solve_ef_game,
)
from repro.games.fraisse import back_and_forth_system, fraisse_equivalent
from repro.games.pebble import pebble_forever_equivalent, pebble_game_equivalent
from repro.games.separators import (
    agree_on_sentence,
    certify_equivalence,
    distinguishing_sentence,
)
from repro.games.strategies import (
    gap_halving_spoiler,
    linear_order_duplicator,
    linear_order_threshold,
    order_ranks,
    product_duplicator,
    set_duplicator,
    theorem_3_1_families,
    union_duplicator,
)

__all__ = [
    "GamePosition", "GameResult", "Move",
    "solve_ef_game", "ef_equivalent", "play_ef_game",
    "optimal_spoiler", "optimal_duplicator",
    "pebble_game_equivalent", "pebble_forever_equivalent",
    "back_and_forth_system", "fraisse_equivalent",
    "distinguishing_sentence", "agree_on_sentence", "certify_equivalence",
    "set_duplicator", "linear_order_duplicator", "union_duplicator",
    "gap_halving_spoiler", "product_duplicator",
    "order_ranks", "linear_order_threshold", "theorem_3_1_families",
]
