"""Separating sentences: the logic side of the EF theorem, executable.

When the spoiler wins G_n(A, B), the EF theorem promises a sentence of
quantifier rank ≤ n on which A and B disagree. This module produces one
— the rank-n Hintikka sentence of A — and verifies it, giving a
*certificate* for every inexpressibility argument run through the game
solver (experiment E13).
"""

from __future__ import annotations

from repro.errors import GameError
from repro.eval.evaluator import evaluate
from repro.games.ef import ef_equivalent
from repro.logic.analysis import quantifier_rank
from repro.logic.hintikka import hintikka_sentence
from repro.logic.syntax import Formula
from repro.structures.structure import Structure

__all__ = ["distinguishing_sentence", "agree_on_sentence", "certify_equivalence"]


def distinguishing_sentence(
    left: Structure,
    right: Structure,
    rounds: int,
    budget: int = 5_000_000,
) -> Formula | None:
    """A sentence of qr ≤ rounds true in ``left`` and false in ``right``.

    Returns ``None`` when the duplicator wins G_rounds(left, right) —
    by the EF theorem no such sentence exists then. When the spoiler
    wins, the rank-``rounds`` Hintikka sentence of ``left`` is returned
    *after being checked on both structures*, so a non-None result is a
    verified separation certificate.

    Warning: Hintikka sentences grow tower-exponentially with ``rounds``;
    keep rounds ≤ 3 and structures small.
    """
    if ef_equivalent(left, right, rounds, budget=budget):
        return None
    sentence = hintikka_sentence(left, rounds)
    if quantifier_rank(sentence) > rounds:
        raise GameError(
            f"internal error: Hintikka sentence has rank {quantifier_rank(sentence)} > {rounds}"
        )
    if not evaluate(left, sentence):
        raise GameError("internal error: Hintikka sentence false in its own structure")
    if evaluate(right, sentence):
        raise GameError(
            "internal error: spoiler wins but the Hintikka sentence does not separate"
        )
    return sentence


def agree_on_sentence(left: Structure, right: Structure, sentence: Formula) -> bool:
    """Whether the two structures give the sentence the same truth value."""
    return evaluate(left, sentence) == evaluate(right, sentence)


def certify_equivalence(
    left: Structure,
    right: Structure,
    rounds: int,
    budget: int = 5_000_000,
) -> Formula | None:
    """Certify A ≡_rounds B via Hintikka sentences (no game search).

    Returns the rank-``rounds`` Hintikka sentence of ``left`` if ``right``
    satisfies it (which by the EF theorem *implies* A ≡_rounds B), else
    ``None``. This is an independent check of the game solver: the
    sentence route and the game route must always agree, and the test
    suite asserts they do.
    """
    sentence = hintikka_sentence(left, rounds)
    if evaluate(right, sentence):
        return sentence
    return None
