"""Linear-time FO evaluation over bounded-degree structures (Thm 3.10/3.11).

Theorem 3.10 (Fagin–Stockmeyer–Vardi): for every FO sentence φ and
degree bound k there are r, m such that any two degree-≤k structures
related by ⇆*_{m,r} agree on φ. Theorem 3.11 (Seese) turns this into a
linear-time data-complexity evaluation algorithm: the truth of φ on G
depends only on G's (threshold-truncated) census of r-neighborhood
types, which is computable in linear time for fixed k and r.

:class:`BoundedDegreeEvaluator` implements the algorithm with one
substitution, documented in DESIGN.md: the paper precomputes the answer
for *every* abstract census function (which requires synthesizing a
structure realizing each census); we fill the census → truth table
*lazily*, evaluating the sentence directly on the first structure that
realizes each census and serving every later structure with the same
census from the table. Soundness needs exactly Hanf's theorem: with
``threshold=None`` the key is the exact census, and equal censuses mean
G ⇆_r G', which for r ≥ (3^qr − 1)/2 implies agreement on φ
(:func:`repro.locality.hanf.hanf_locality_radius`). A finite threshold m
enables cross-size reuse via Theorem 3.10 and is validated empirically
by the test suite.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import LocalityError
from repro.eval.evaluator import evaluate
from repro.resilience.budget import CancelToken
from repro.locality.hanf import hanf_locality_radius
from repro.locality.neighborhoods import (
    TypeRegistry,
    neighborhood_census,
    neighborhood_census_baseline,
    neighborhood_census_many,
)
from repro.logic.analysis import free_variables, quantifier_rank
from repro.logic.syntax import Formula
from repro.structures.structure import Structure
from repro.telemetry.metrics import counter as _counter
from repro.telemetry.tracer import is_enabled as _telemetry_enabled
from repro.telemetry.tracer import span as _span

__all__ = ["BoundedDegreeEvaluator", "census_key"]


def census_key(census: Counter, threshold: int | None) -> tuple:
    """A hashable census key, counts truncated at ``threshold`` if given."""
    if threshold is None:
        return tuple(sorted(census.items()))
    return tuple(
        sorted(
            (type_id, count if count < threshold else threshold)
            for type_id, count in census.items()
        )
    )


@dataclass
class EvaluatorStats:
    """Cache behaviour of a :class:`BoundedDegreeEvaluator`."""

    hits: int = 0
    misses: int = 0
    censuses_seen: int = field(default=0)


class BoundedDegreeEvaluator:
    """Evaluate one FO sentence over a class of bounded-degree structures.

    Parameters
    ----------
    sentence:
        The FO sentence φ to evaluate (fixed — this is data complexity).
    degree_bound:
        The class bound k; structures of larger Gaifman degree are
        rejected (the theorem is about bounded-degree classes).
    radius:
        Neighborhood radius r. Defaults to the sound Hanf-locality bound
        (3^qr(φ) − 1)/2; smaller radii are faster but only sound if φ
        happens to be Hanf-local at that radius.
    threshold:
        Optional census truncation m (Theorem 3.10). ``None`` uses exact
        censuses, which is unconditionally sound.
    fallback:
        How to evaluate the sentence on a census-table miss. Defaults to
        the naive evaluator; the query engine passes its own algebra
        pipeline here so misses stay polynomial-friendly.
    census_mode:
        ``"fast"`` (default) uses the ball-key census pipeline of
        :func:`repro.locality.neighborhoods.neighborhood_census`;
        ``"baseline"`` forces the per-element reference implementation
        (ablation and determinism testing).
    max_workers:
        Worker count for the census pipeline. ``None`` defers to
        ``REPRO_PARALLEL``; 1 forces serial.

    After a warm-up evaluation, any structure with a previously seen
    census is answered by a linear-time census computation plus a table
    lookup — no formula evaluation at all. Experiment E10 measures the
    crossover against the naive O(n^qr) evaluator; E18 measures the
    census pipeline's scaling.
    """

    def __init__(
        self,
        sentence: Formula,
        degree_bound: int,
        radius: int | None = None,
        threshold: int | None = None,
        fallback: Callable[[Structure, Formula], bool] | None = None,
        census_mode: str = "fast",
        max_workers: int | None = None,
    ) -> None:
        free = free_variables(sentence)
        if free:
            names = sorted(var.name for var in free)
            raise LocalityError(f"bounded-degree evaluation needs a sentence; free: {names}")
        if degree_bound < 0:
            raise LocalityError(f"degree bound must be non-negative, got {degree_bound}")
        if radius is not None and radius < 0:
            raise LocalityError(f"radius must be non-negative, got {radius}")
        if threshold is not None and threshold < 1:
            raise LocalityError(f"threshold must be at least 1, got {threshold}")
        if census_mode not in ("fast", "baseline"):
            raise LocalityError(
                f"census_mode must be 'fast' or 'baseline', got {census_mode!r}"
            )
        self.sentence = sentence
        self.degree_bound = degree_bound
        self.radius = hanf_locality_radius(quantifier_rank(sentence)) if radius is None else radius
        self.threshold = threshold
        self.fallback = fallback if fallback is not None else evaluate
        self.census_mode = census_mode
        self.max_workers = max_workers
        self.registry = TypeRegistry()
        self.table: dict[tuple, bool] = {}
        self.stats = EvaluatorStats()

    def census_of(
        self, structure: Structure, cancel_token: CancelToken | None = None
    ) -> Counter:
        """The structure's r-neighborhood census (linear time for fixed k, r)."""
        if self.census_mode == "baseline":
            return neighborhood_census_baseline(
                structure, self.radius, self.registry, cancel_token=cancel_token
            )
        return neighborhood_census(
            structure,
            self.radius,
            self.registry,
            max_workers=self.max_workers,
            cancel_token=cancel_token,
        )

    def censuses_of(
        self,
        structures: list[Structure],
        max_workers: int | None = None,
        cancel_token: CancelToken | None = None,
    ) -> list[Counter]:
        """Censuses of a whole family, ball work shared across one pool."""
        workers = max_workers if max_workers is not None else self.max_workers
        if self.census_mode == "baseline":
            return [
                self.census_of(structure, cancel_token=cancel_token)
                for structure in structures
            ]
        return neighborhood_census_many(
            structures,
            self.radius,
            self.registry,
            max_workers=workers,
            cancel_token=cancel_token,
        )

    def evaluate(
        self, structure: Structure, cancel_token: CancelToken | None = None
    ) -> bool:
        """Decide structure ⊨ φ via the census table.

        ``cancel_token`` bounds the census loop and the table-miss
        fallback; census-table hits are effectively free.
        """
        self._check_degree(structure)
        return self._decide(
            structure,
            self.census_of(structure, cancel_token=cancel_token),
            cancel_token=cancel_token,
        )

    def evaluate_many(
        self,
        structures: list[Structure],
        max_workers: int | None = None,
        cancel_token: CancelToken | None = None,
    ) -> list[bool]:
        """Decide φ on every structure, census work fanned out together.

        Results are identical (and identically ordered) to calling
        :meth:`evaluate` one structure at a time — the census pipeline
        batches, the truth-table logic stays serial and deterministic.
        """
        structures = list(structures)
        for structure in structures:
            self._check_degree(structure)
        censuses = self.censuses_of(
            structures, max_workers=max_workers, cancel_token=cancel_token
        )
        return [
            self._decide(structure, census, cancel_token=cancel_token)
            for structure, census in zip(structures, censuses)
        ]

    def _check_degree(self, structure: Structure) -> None:
        degree = structure.max_degree()
        if degree > self.degree_bound:
            raise LocalityError(
                f"structure has Gaifman degree {degree} > bound {self.degree_bound}; "
                "Theorem 3.11 applies to bounded-degree classes only"
            )

    def _decide(
        self,
        structure: Structure,
        census: Counter,
        cancel_token: CancelToken | None = None,
    ) -> bool:
        key = census_key(census, self.threshold)
        cached = self.table.get(key)
        if cached is not None:
            self.stats.hits += 1
            if _telemetry_enabled():
                _counter("locality.census_table.hits").inc()
            return cached
        self.stats.misses += 1
        if _telemetry_enabled():
            _counter("locality.census_table.misses").inc()
        with _span("locality.census_table.fill"):
            # Older fallbacks are two-argument callables; only budgeted
            # calls pass the keyword, so those keep working unchanged.
            if cancel_token is None:
                value = bool(self.fallback(structure, self.sentence))
            else:
                value = bool(
                    self.fallback(structure, self.sentence, cancel_token=cancel_token)
                )
        self.table[key] = value
        self.stats.censuses_seen = len(self.table)
        return value

    def __call__(self, structure: Structure) -> bool:
        return self.evaluate(structure)
