"""Hanf locality (Definition 3.7 / Theorem 3.8) and its threshold variant.

G ⇆_r G' holds iff there is a bijection f with N_r(a) ≅ N_r(f(a)) for
every a — equivalently, iff the two structures have the *same census* of
r-neighborhood types (a bijection exists exactly when every type is
realized equally often; this reformulation is what we compute).

The threshold variant ⇆*_{m,r} (Theorem 3.10) relaxes "equal counts" to
"equal up to threshold m": counts agree exactly below m and are both
≥ m otherwise. It applies to bounded-degree structures and powers the
linear-time evaluation of Theorem 3.11 (see
:mod:`repro.locality.bounded_degree`).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Sequence

from repro.errors import LocalityError
from repro.locality.neighborhoods import TypeRegistry, neighborhood_census
from repro.structures.structure import Structure

__all__ = [
    "hanf_equivalent",
    "threshold_hanf_equivalent",
    "hanf_locality_counterexample",
    "hanf_locality_radius",
]


def hanf_locality_radius(quantifier_rank: int) -> int:
    """The classical Hanf-locality rank bound (3^n − 1) / 2 for rank n.

    Every FO sentence of quantifier rank n is Hanf-local with radius at
    most (3ⁿ − 1)/2 (Fagin–Stockmeyer–Vardi; see Libkin's *Elements of
    Finite Model Theory*, Thm 4.12). This is the default radius used by
    the bounded-degree evaluator.
    """
    if quantifier_rank < 0:
        raise LocalityError(f"quantifier rank must be non-negative, got {quantifier_rank}")
    return (3**quantifier_rank - 1) // 2


def hanf_equivalent(
    left: Structure,
    right: Structure,
    radius: int,
    registry: TypeRegistry | None = None,
) -> bool:
    """Decide G ⇆_r G': equal multisets of r-neighborhood types.

    The required bijection exists iff for every isomorphism type τ both
    structures have the same number of points realizing τ — so the check
    compares censuses computed against a shared :class:`TypeRegistry`.
    """
    if left.signature != right.signature:
        raise LocalityError("Hanf equivalence requires structures over the same signature")
    if left.size != right.size:
        return False
    if registry is None:
        registry = TypeRegistry()
    return neighborhood_census(left, radius, registry) == neighborhood_census(
        right, radius, registry
    )


def _truncate(census: Counter, threshold: int) -> dict:
    return {
        type_id: (count if count < threshold else threshold)
        for type_id, count in census.items()
    }


def threshold_hanf_equivalent(
    left: Structure,
    right: Structure,
    radius: int,
    threshold: int,
    registry: TypeRegistry | None = None,
) -> bool:
    """Decide G ⇆*_{m,r} G': censuses equal up to the threshold m.

    For each type, either both counts are equal, or both are ≥ m
    (Theorem 3.10's relation). Unlike plain Hanf equivalence this does
    not force |G| = |G'| — that is precisely its point.
    """
    if left.signature != right.signature:
        raise LocalityError("Hanf equivalence requires structures over the same signature")
    if threshold < 1:
        raise LocalityError(f"threshold must be at least 1, got {threshold}")
    if registry is None:
        registry = TypeRegistry()
    left_census = neighborhood_census(left, radius, registry)
    right_census = neighborhood_census(right, radius, registry)
    return _truncate(left_census, threshold) == _truncate(right_census, threshold)


def hanf_locality_counterexample(
    query: Callable[[Structure], bool],
    structures: Sequence[Structure],
    radius: int,
) -> tuple[Structure, Structure] | None:
    """Search for a Hanf-locality violation of a Boolean query.

    Returns a pair (G, G') with G ⇆_r G' but Q(G) ≠ Q(G'), or ``None``
    if the query is Hanf-local at this radius *on the given family*.
    By Theorem 3.8 every FO sentence admits some radius with no
    violations on any family; fixed-point queries like connectivity
    violate every radius (experiment E8 exhibits the pairs).
    """
    structures = list(structures)
    registry = TypeRegistry()
    censuses = [neighborhood_census(structure, radius, registry) for structure in structures]
    values = [bool(query(structure)) for structure in structures]
    for i in range(len(structures)):
        for j in range(i + 1, len(structures)):
            if censuses[i] == censuses[j] and values[i] != values[j]:
                return structures[i], structures[j]
    return None
