"""The bounded number of degrees property (Definition 3.3 / Theorem 3.4).

A graph query Q has the BNDP if some function f_Q bounds the number of
distinct in/out-degrees of Q(G) in terms of the degree bound of G. All
FO queries have it; fixed-point queries typically do not — each stage of
the fixed-point computation creates a fresh degree (transitive closure
realizes n−1 degrees from a degree-1 successor graph; same-generation on
the full binary tree realizes 1, 2, 4, ..., 2ⁿ). Experiment E6 plots
exactly those profiles.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from repro.errors import LocalityError
from repro.logic.signature import GRAPH
from repro.structures.structure import Element, Structure

__all__ = ["degs", "output_graph", "degree_profile", "BNDPReport", "bndp_report"]

AnswerSet = frozenset[tuple[Element, ...]]


def degs(structure: Structure, relation: str = "E") -> frozenset[int]:
    """degs(G) = in(G) ∪ out(G): the set of realized in- and out-degrees."""
    in_degrees, out_degrees = structure.degree_sets(relation)
    return in_degrees | out_degrees


def output_graph(answers: AnswerSet, universe: Iterable[Element]) -> Structure:
    """View a binary query's answer set as a graph on the input universe.

    This is the "queries on graphs: input and output are graphs"
    convention under which the BNDP is stated.
    """
    universe = list(universe)
    for row in answers:
        if len(row) != 2:
            raise LocalityError(f"output_graph needs binary answers, got {row!r}")
    return Structure(GRAPH, universe, {"E": answers})


def degree_profile(
    query: Callable[[Structure], AnswerSet],
    structure: Structure,
) -> tuple[int, int]:
    """(max input degree, |degs(Q(G))|) for one input structure."""
    input_bound = max(degs(structure) | {0}) if structure.is_graph() else structure.max_degree()
    result = output_graph(query(structure), structure.universe)
    return input_bound, len(degs(result))


@dataclass(frozen=True)
class BNDPReport:
    """Observed degree-diversity of a query across a structure family.

    ``profiles[i]`` is (input size, input degree bound, |degs(Q(G_i))|).
    ``bounded`` is the empirical verdict: does |degs(Q(G))| stay constant
    while inputs grow at a fixed degree bound? A ``False`` verdict (with
    growing witness values) is how E6 exhibits BNDP violations of
    transitive closure and same-generation.
    """

    query_name: str
    profiles: tuple[tuple[int, int, int], ...]

    @property
    def degree_counts(self) -> tuple[int, ...]:
        return tuple(profile[2] for profile in self.profiles)

    @property
    def bounded(self) -> bool:
        """True if the last half of the family shows no further growth.

        The family is expected to be ordered by increasing size with a
        common degree bound; a query with the BNDP plateaus, a
        fixed-point query keeps climbing.
        """
        counts = self.degree_counts
        if len(counts) < 2:
            return True
        half = len(counts) // 2
        return max(counts[half:]) <= max(counts[: half + 1])


def bndp_report(
    query: Callable[[Structure], AnswerSet],
    family: Sequence[Structure],
    name: str = "",
) -> BNDPReport:
    """Profile a query across a family of growing structures."""
    profiles = []
    for structure in family:
        bound, count = degree_profile(query, structure)
        profiles.append((structure.size, bound, count))
    return BNDPReport(query_name=name, profiles=tuple(profiles))
