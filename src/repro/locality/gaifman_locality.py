"""Gaifman locality (Definition 3.5 / Theorem 3.6).

An m-ary query Q is Gaifman-local with radius r if on every structure,
tuples with isomorphic r-neighborhoods are treated identically:
N_r(ā) ≅ N_r(b̄) implies ā ∈ Q(G) ⇔ b̄ ∈ Q(G). Every FO query is
Gaifman-local (Theorem 3.6); transitive closure famously is not — the
long-chain counterexample of the paper is reproduced by
:func:`transitive_closure_chain_counterexample` and experiment E7.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterable

from repro.errors import LocalityError
from repro.locality.neighborhoods import TypeRegistry, tuple_type_classes
from repro.structures.structure import Element, Structure

__all__ = [
    "gaifman_locality_counterexample",
    "is_gaifman_local_on",
    "gaifman_locality_radius",
    "transitive_closure_chain_counterexample",
]

AnswerSet = frozenset[tuple[Element, ...]]


def gaifman_locality_radius(quantifier_rank: int) -> int:
    """Gaifman's bound: FO formulas of rank n are local with r ≤ (7^n − 1)/2.

    (The precise constant varies by proof; this is the classical bound
    from Gaifman's theorem as reported in Libkin's book. Any radius at
    which no violation exists witnesses locality, so experiments search
    upward from small radii.)
    """
    if quantifier_rank < 0:
        raise LocalityError(f"quantifier rank must be non-negative, got {quantifier_rank}")
    return (7**quantifier_rank - 1) // 2


def gaifman_locality_counterexample(
    query: Callable[[Structure], AnswerSet],
    structure: Structure,
    radius: int,
    arity: int,
    tuples: Iterable[tuple[Element, ...]] | None = None,
) -> tuple[tuple[Element, ...], tuple[Element, ...]] | None:
    """Find ā, b̄ with N_r(ā) ≅ N_r(b̄) but only one in Q(structure).

    Returns the violating pair, or ``None`` if Q is Gaifman-local at
    radius r on this structure. ``tuples`` restricts the search space
    (by default all m-tuples — O(n^m) of them, so keep the structure
    small or pass candidates).

    The search is by type classes: tuples are partitioned by the
    isomorphism type of their r-neighborhood, and Q must be constant on
    each class.
    """
    if arity < 1:
        raise LocalityError(f"Gaifman locality concerns m-ary queries with m ≥ 1, got {arity}")
    if tuples is None:
        tuples = itertools.product(structure.universe, repeat=arity)
    answers = query(structure)
    classes = tuple_type_classes(structure, tuples, radius, TypeRegistry())
    for members in classes.values():
        inside = [tuple_ for tuple_ in members if tuple_ in answers]
        outside = [tuple_ for tuple_ in members if tuple_ not in answers]
        if inside and outside:
            return inside[0], outside[0]
    return None


def is_gaifman_local_on(
    query: Callable[[Structure], AnswerSet],
    structures: Iterable[Structure],
    radius: int,
    arity: int,
) -> bool:
    """Whether no structure in the family exhibits a violation at radius r."""
    for structure in structures:
        if gaifman_locality_counterexample(query, structure, radius, arity) is not None:
            return False
    return True


def transitive_closure_chain_counterexample(
    radius: int,
) -> tuple[Structure, tuple[Element, Element], tuple[Element, Element]]:
    """The paper's canonical Gaifman-locality counterexample for TC.

    Builds a directed chain long enough that two interior points a, b sit
    at distance > 2r from each other and from the endpoints. Then
    N_r(a, b) ≅ N_r(b, a) (each is a disjoint union of two chains of
    length 2r), yet (a, b) is in the transitive closure and (b, a) is
    not. Returns (chain, (a, b), (b, a)).
    """
    from repro.structures.builders import directed_chain

    if radius < 0:
        raise LocalityError(f"radius must be non-negative, got {radius}")
    segment = 2 * radius + 2  # distance > 2r between the special points
    length = 3 * segment + 1
    chain = directed_chain(length)
    a = segment
    b = 2 * segment
    return chain, (a, b), (b, a)
