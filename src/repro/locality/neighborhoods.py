"""Neighborhood isomorphism types and censuses.

Everything in §3.4–3.5 of the paper reduces to comparing r-neighborhoods
up to isomorphism. This module provides:

* :class:`TypeRegistry` — assigns stable integer ids to isomorphism
  classes of (distinguished-tuple) structures, so neighborhoods from
  *different* structures get comparable type ids;
* :func:`neighborhood_type` / :func:`tuple_type_classes` — the type of a
  point or tuple, and the partition of all tuples by type;
* :func:`neighborhood_census` — the multiset {type: count} of point
  types, the object Hanf equivalence compares;
* :func:`neighborhood_census_many` — censuses of a whole family, with
  the ball work for *all* structures fanned out over one worker pool.

**The fast census pipeline.**  The naive algorithm (kept as
:func:`neighborhood_census_baseline`) materializes one neighborhood
:class:`~repro.structures.structure.Structure` per element and runs it
through the registry — O(n) structure constructions, WL refinements, and
isomorphism probes.  The fast pipeline instead computes a cheap *ball
key* per element — the ball relabeled into BFS-layer order, a concrete
presentation of N_r(ā) — in parallel chunks.  Equal keys *certify*
isomorphic neighborhoods (the index-aligned map is an isomorphism), so
only the first element realizing each distinct key ever builds a real
neighborhood; every other element is a dictionary hit.  Isomorphic balls
with different presentations merely fall through to the registry's
fingerprint bucket, where exact isomorphism merges them as before —
exactness is never traded away.  Censuses are additionally memoized per
(structure, radius) in an LRU on the registry, so re-censusing a
structure (the bounded-degree evaluator's common case) is one lookup.
"""

from __future__ import annotations

from collections import Counter, defaultdict, deque
from collections.abc import Iterable, Sequence

from repro.engine.cache import LRUCache
from repro.incremental.census import CensusIndex
from repro.resilience.budget import CancelToken
from repro.resilience.faults import fault_point
from repro.structures.gaifman import gaifman_adjacency, neighborhood
from repro.structures.invariants import structure_fingerprint
from repro.structures.isomorphism import are_isomorphic
from repro.structures.structure import Element, Structure, _sort_key
from repro.telemetry.metrics import counter as _counter
from repro.telemetry.tracer import is_enabled as _telemetry_enabled
from repro.telemetry.tracer import span as _span

__all__ = [
    "TypeRegistry",
    "neighborhood_type",
    "neighborhood_census",
    "neighborhood_census_baseline",
    "neighborhood_census_many",
    "tuple_type_classes",
    "max_ball_size",
    "ball_key",
]

#: Below this many balls the key pipeline stays serial — pool dispatch
#: would cost more than the work.
PARALLEL_MIN_BALLS = 64


class TypeRegistry:
    """Stable ids for isomorphism classes of structures.

    ``type_of(S)`` returns the id of S's isomorphism class, creating a
    new id on first sight. Candidates are pre-bucketed by the canonical
    invariant fingerprint (degree sequence + WL color histogram,
    :func:`repro.structures.invariants.structure_fingerprint`), so most
    lookups do a single dictionary probe and zero exact isomorphism
    tests. ``use_fingerprint=False`` disables the bucketing (every
    lookup compares against every known class) — only useful for
    ablation experiments.

    ``type_of_keyed(key, build)`` is the census fast path: a concrete
    *presentation key* whose equality certifies isomorphism maps
    straight to a type id; only the first sighting of a key pays for
    structure construction and registration.  The registry also owns the
    per-(structure, radius) census memo used by
    :func:`neighborhood_census`.
    """

    def __init__(self, use_fingerprint: bool = True, census_memo_size: int = 256) -> None:
        self._buckets: dict[tuple, list[tuple[Structure, int]]] = defaultdict(list)
        self._next_id = 0
        self._use_fingerprint = use_fingerprint
        self._key_ids: dict[tuple, int] = {}
        self.isomorphism_tests = 0
        self.key_hits = 0
        self.census_memo = LRUCache(census_memo_size, name="census_memo")
        self.incremental = CensusIndex()

    def type_of(self, structure: Structure) -> int:
        fingerprint = structure_fingerprint(structure) if self._use_fingerprint else ()
        telemetry_on = _telemetry_enabled()
        for representative, type_id in self._buckets[fingerprint]:
            self.isomorphism_tests += 1
            if telemetry_on:
                _counter("locality.iso_tests").inc()
            if are_isomorphic(representative, structure):
                return type_id
        type_id = self._next_id
        self._next_id += 1
        self._buckets[fingerprint].append((structure, type_id))
        if telemetry_on:
            _counter("locality.types_registered").inc()
        return type_id

    def type_of_keyed(self, key: tuple, build) -> int:
        """The type id for a presentation key, building a structure on miss.

        ``key`` must satisfy: equal keys imply isomorphic structures
        (:func:`ball_key` guarantees this).  On a hit no structure is
        constructed and no isomorphism is attempted — the near-O(n)
        dictionary path of the census.
        """
        type_id = self._key_ids.get(key)
        if type_id is not None:
            self.key_hits += 1
            if _telemetry_enabled():
                _counter("locality.key_hits").inc()
            return type_id
        type_id = self.type_of(build())
        self._key_ids[key] = type_id
        return type_id

    def representative(self, type_id: int) -> Structure:
        """The first structure registered with this id."""
        for bucket in self._buckets.values():
            for representative, known_id in bucket:
                if known_id == type_id:
                    return representative
        raise KeyError(f"unknown type id {type_id}")

    def __len__(self) -> int:
        return self._next_id


# -- ball keys (the parallelizable per-element work) -------------------------


def _row_incidence(
    structure: Structure,
) -> dict[Element, tuple[tuple[str, tuple], ...]]:
    """Element → the (relation, row) pairs it occurs in (memoized).

    The per-element index that makes :func:`ball_key` O(|ball| · degree)
    instead of O(|structure|): a ball only ever needs the rows incident
    to its own members.
    """

    def compute() -> dict[Element, tuple[tuple[str, tuple], ...]]:
        incidence: dict[Element, list[tuple[str, tuple]]] = {
            element: [] for element in structure.universe
        }
        for name in structure.signature.relation_names():
            for row in structure.relations[name]:
                for element in set(row):
                    incidence[element].append((name, row))
        return {element: tuple(pairs) for element, pairs in incidence.items()}

    return structure.cached(("row-incidence",), compute)  # type: ignore[return-value]


def ball_key(
    structure: Structure, centers: tuple[Element, ...], radius: int
) -> tuple:
    """A concrete presentation key for N_r(centers).

    The ball's elements are relabeled ``0..m-1`` in (BFS-distance,
    element-sort-order) order and the induced relations, constants, and
    distinguished centers are encoded under that relabeling.  **Equal
    keys certify isomorphic neighborhoods**: aligning the i-th element
    of one presentation with the i-th of the other is an isomorphism
    respecting the distinguished tuple.  The converse may fail —
    isomorphic balls presented differently get different keys — which
    costs a duplicate registry probe, never a wrong merge.

    This is a pure function of (structure, centers, radius), touching
    only the ball's own rows — O(|ball| · degree) per call, cheap enough
    to fan out over worker processes by the thousands.
    """
    adjacency = gaifman_adjacency(structure)
    incidence = _row_incidence(structure)
    distances: dict[Element, int] = {}
    queue: deque[Element] = deque()
    for center in centers:
        if center not in distances:
            distances[center] = 0
            queue.append(center)
    while queue:
        current = queue.popleft()
        depth = distances[current]
        if depth >= radius:
            continue
        for neighbor in adjacency[current]:
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                queue.append(neighbor)
    order = sorted(distances, key=lambda element: (distances[element], _sort_key(element)))
    index = {element: position for position, element in enumerate(order)}
    rows_by_name: dict[str, set[tuple[int, ...]]] = {}
    for element in order:
        for name, row in incidence[element]:
            if all(value in index for value in row):
                rows_by_name.setdefault(name, set()).add(
                    tuple(index[value] for value in row)
                )
    rows = tuple(
        (name, tuple(sorted(rows_by_name.get(name, ()))))
        for name in structure.signature.relation_names()
    )
    constants = tuple(
        sorted(
            (name, index[value])
            for name, value in structure.constants.items()
            if value in index
        )
    )
    marks = tuple(index[center] for center in centers)
    return (radius, len(order), marks, rows, constants)


def _ball_key_chunk(payload: tuple) -> list[tuple]:
    """Worker task: ball keys for one chunk of center tuples."""
    structure, centers_chunk, radius = payload
    return [ball_key(structure, centers, radius) for centers in centers_chunk]


def _ball_keys(
    structure: Structure,
    centers_list: Sequence[tuple[Element, ...]],
    radius: int,
    max_workers: int | None,
    cancel_token: CancelToken | None = None,
) -> list[tuple]:
    """Ball keys for many center tuples, fanned out when it pays."""
    from repro.parallel import CHUNKS_PER_WORKER, parallel_map, resolve_workers

    workers = resolve_workers(max_workers)
    if workers <= 1 or len(centers_list) < PARALLEL_MIN_BALLS:
        keys = []
        for centers in centers_list:
            if cancel_token is not None:
                cancel_token.tick("locality.ball_keys")
            keys.append(ball_key(structure, centers, radius))
        return keys
    chunk = max(1, -(-len(centers_list) // (workers * CHUNKS_PER_WORKER)))
    payloads = [
        (structure, tuple(centers_list[start : start + chunk]), radius)
        for start in range(0, len(centers_list), chunk)
    ]
    with _span("locality.ball_keys") as keys_span:
        keys_span.set("balls", len(centers_list)).set("workers", workers)
        chunks = parallel_map(
            _ball_key_chunk,
            payloads,
            max_workers=workers,
            chunk_size=1,
            cancel_token=cancel_token,
        )
    return [key for chunk_keys in chunks for key in chunk_keys]


# -- types and censuses ------------------------------------------------------


def neighborhood_type(
    structure: Structure,
    center: Element | tuple[Element, ...],
    radius: int,
    registry: TypeRegistry,
) -> int:
    """The isomorphism type id of N_r(center), relative to ``registry``."""
    return registry.type_of(neighborhood(structure, center, radius))


def _census_via_keys(
    structure: Structure,
    radius: int,
    registry: TypeRegistry,
    max_workers: int | None,
    keys: list[tuple] | None = None,
    cancel_token: CancelToken | None = None,
    types_out: dict | None = None,
) -> Counter:
    centers_list = [(element,) for element in structure.universe]
    if keys is None:
        keys = _ball_keys(
            structure, centers_list, radius, max_workers, cancel_token=cancel_token
        )
    census: Counter = Counter()
    for centers, key in zip(centers_list, keys):
        if cancel_token is not None:
            cancel_token.tick("locality.census")
        type_id = registry.type_of_keyed(
            key, lambda centers=centers: neighborhood(structure, centers, radius)
        )
        census[type_id] += 1
        if types_out is not None:
            types_out[centers[0]] = type_id
    return census


def neighborhood_census_baseline(
    structure: Structure,
    radius: int,
    registry: TypeRegistry,
    cancel_token: CancelToken | None = None,
) -> Counter:
    """The pre-pipeline census: one materialized neighborhood per element.

    Kept as the reference implementation — ablation benchmarks and the
    determinism suite compare the fast pipeline against it, and
    structures that interpret constants still take this path (a constant
    outside some ball must raise, exactly as :func:`neighborhood` does).
    """
    census: Counter = Counter()
    for element in structure.universe:
        if cancel_token is not None:
            cancel_token.tick("locality.census")
        census[registry.type_of(neighborhood(structure, element, radius))] += 1
    return census


def neighborhood_census(
    structure: Structure,
    radius: int,
    registry: TypeRegistry,
    *,
    max_workers: int | None = None,
    cancel_token: CancelToken | None = None,
) -> Counter:
    """The census {type id: number of points realizing it}.

    "a realizes τ" in the paper's words — the census is the function
    τ ↦ #{a : N_r(a) has type τ} restricted to realized types.

    Runs the fast ball-key pipeline (parallel when ``max_workers`` or
    ``REPRO_PARALLEL`` says so), memoized per (structure, radius) on the
    registry.  Serial and parallel runs produce identical censuses.
    ``cancel_token`` is ticked per ball, so a deadline interrupts the
    census mid-structure; memo hits never consume budget.
    """
    with _span("locality.census") as census_span:
        memo_key = (structure, radius)
        cached = registry.census_memo.get(memo_key)
        if cached is not None:
            census_span.set("radius", radius).set("types", len(cached)).set("memo_hit", 1)
            return Counter(cached)
        fault_point("locality.census")
        if structure.constants:
            census = neighborhood_census_baseline(
                structure, radius, registry, cancel_token=cancel_token
            )
        else:
            patched = registry.incremental.patch(structure, radius, registry)
            if patched is not None:
                registry.census_memo.put(memo_key, Counter(patched))
                census_span.set("radius", radius).set("types", len(patched))
                census_span.set("incremental", 1)
                return patched
            types: dict = {}
            census = _census_via_keys(
                structure,
                radius,
                registry,
                max_workers,
                cancel_token=cancel_token,
                types_out=types,
            )
            registry.incremental.record(structure, radius, census, types)
        registry.census_memo.put(memo_key, Counter(census))
        if _telemetry_enabled():
            _counter("locality.censuses_computed").inc()
            _counter("locality.balls_computed").inc(len(structure.universe))
        census_span.set("radius", radius).set("types", len(census))
        return census


def neighborhood_census_many(
    structures: Sequence[Structure],
    radius: int,
    registry: TypeRegistry,
    *,
    max_workers: int | None = None,
    cancel_token: CancelToken | None = None,
) -> list[Counter]:
    """Censuses of a whole family, ball keys fanned out across structures.

    One :func:`repro.parallel.parallel_map` covers the ball work of
    every structure in the family, so a family of a thousand small
    structures parallelizes as well as one structure with a thousand
    elements.  Type ids are assigned serially in family order —
    identical to calling :func:`neighborhood_census` one by one.
    """
    from repro.parallel import parallel_map, resolve_workers

    structures = list(structures)
    workers = resolve_workers(max_workers)
    pending: list[Structure] = []
    seen: set[Structure] = set()
    for structure in structures:
        if structure in seen or structure.constants:
            continue
        if (structure, radius) in registry.census_memo:
            continue
        seen.add(structure)
        pending.append(structure)

    total_balls = sum(structure.size for structure in pending)
    keys_by_structure: dict[Structure, list[tuple]] = {}
    if workers > 1 and total_balls >= PARALLEL_MIN_BALLS and pending:
        payloads = [
            (structure, tuple((element,) for element in structure.universe), radius)
            for structure in pending
        ]
        with _span("locality.ball_keys") as keys_span:
            keys_span.set("balls", total_balls).set("workers", workers)
            all_keys = parallel_map(
                _ball_key_chunk,
                payloads,
                max_workers=workers,
                chunk_size=1,
                cancel_token=cancel_token,
            )
        keys_by_structure = dict(zip(pending, all_keys))

    censuses: list[Counter] = []
    for structure in structures:
        keys = keys_by_structure.pop(structure, None)
        if keys is not None:
            types: dict = {}
            census = _census_via_keys(
                structure,
                radius,
                registry,
                1,
                keys=keys,
                cancel_token=cancel_token,
                types_out=types,
            )
            registry.incremental.record(structure, radius, census, types)
            registry.census_memo.put((structure, radius), Counter(census))
            if _telemetry_enabled():
                _counter("locality.censuses_computed").inc()
                _counter("locality.balls_computed").inc(structure.size)
            censuses.append(census)
        else:
            censuses.append(
                neighborhood_census(
                    structure,
                    radius,
                    registry,
                    max_workers=workers,
                    cancel_token=cancel_token,
                )
            )
    return censuses


def tuple_type_classes(
    structure: Structure,
    tuples: Iterable[tuple[Element, ...]],
    radius: int,
    registry: TypeRegistry | None = None,
    *,
    max_workers: int | None = None,
) -> dict[int, list[tuple[Element, ...]]]:
    """Partition tuples of elements by the iso type of their r-neighborhood.

    Gaifman locality says an FO query must be constant on every class of
    this partition — which is exactly how
    :func:`repro.locality.gaifman_locality.gaifman_locality_counterexample`
    checks it.  Ball keys for the tuples run through the same (optionally
    parallel) pipeline as the point census.
    """
    if registry is None:
        registry = TypeRegistry()
    tuples = [tuple(tuple_) for tuple_ in tuples]
    classes: dict[int, list[tuple[Element, ...]]] = defaultdict(list)
    if structure.constants:
        for tuple_ in tuples:
            type_id = neighborhood_type(structure, tuple_, radius, registry)
            classes[type_id].append(tuple_)
        return dict(classes)
    keys = _ball_keys(structure, tuples, radius, max_workers)
    for tuple_, key in zip(tuples, keys):
        type_id = registry.type_of_keyed(
            key, lambda centers=tuple_: neighborhood(structure, centers, radius)
        )
        classes[type_id].append(tuple_)
    return dict(classes)


def max_ball_size(degree_bound: int, radius: int) -> int:
    """An upper bound on |B_r(a)| in structures of Gaifman degree ≤ k.

    1 + k + k(k-1) + ... + k(k-1)^(r-1): the size of the ball in the
    k-regular tree, which maximizes it. Used to bound |N(k, r)| in the
    bounded-degree machinery (Thm 3.10/3.11).
    """
    if degree_bound < 0 or radius < 0:
        raise ValueError("degree bound and radius must be non-negative")
    if degree_bound == 0 or radius == 0:
        return 1
    total = 1
    layer = degree_bound
    for _ in range(radius):
        total += layer
        layer *= max(degree_bound - 1, 1)
    return total
