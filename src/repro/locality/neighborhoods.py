"""Neighborhood isomorphism types and censuses.

Everything in §3.4–3.5 of the paper reduces to comparing r-neighborhoods
up to isomorphism. This module provides:

* :class:`TypeRegistry` — assigns stable integer ids to isomorphism
  classes of (distinguished-tuple) structures, so neighborhoods from
  *different* structures get comparable type ids;
* :func:`neighborhood_type` / :func:`tuple_type_classes` — the type of a
  point or tuple, and the partition of all tuples by type;
* :func:`neighborhood_census` — the multiset {type: count} of point
  types, the object Hanf equivalence compares.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Iterable

from repro.structures.gaifman import neighborhood
from repro.structures.invariants import structure_fingerprint
from repro.structures.isomorphism import are_isomorphic
from repro.structures.structure import Element, Structure
from repro.telemetry.metrics import counter as _counter
from repro.telemetry.tracer import is_enabled as _telemetry_enabled
from repro.telemetry.tracer import span as _span

__all__ = [
    "TypeRegistry",
    "neighborhood_type",
    "neighborhood_census",
    "tuple_type_classes",
    "max_ball_size",
]


class TypeRegistry:
    """Stable ids for isomorphism classes of structures.

    ``type_of(S)`` returns the id of S's isomorphism class, creating a
    new id on first sight. Candidates are pre-bucketed by an invariant
    fingerprint so most lookups do a single dictionary probe and zero
    exact isomorphism tests. ``use_fingerprint=False`` disables the
    bucketing (every lookup compares against every known class) — only
    useful for ablation experiments.
    """

    def __init__(self, use_fingerprint: bool = True) -> None:
        self._buckets: dict[tuple, list[tuple[Structure, int]]] = defaultdict(list)
        self._next_id = 0
        self._use_fingerprint = use_fingerprint
        self.isomorphism_tests = 0

    def type_of(self, structure: Structure) -> int:
        fingerprint = structure_fingerprint(structure) if self._use_fingerprint else ()
        telemetry_on = _telemetry_enabled()
        for representative, type_id in self._buckets[fingerprint]:
            self.isomorphism_tests += 1
            if telemetry_on:
                _counter("locality.iso_tests").inc()
            if are_isomorphic(representative, structure):
                return type_id
        type_id = self._next_id
        self._next_id += 1
        self._buckets[fingerprint].append((structure, type_id))
        if telemetry_on:
            _counter("locality.types_registered").inc()
        return type_id

    def representative(self, type_id: int) -> Structure:
        """The first structure registered with this id."""
        for bucket in self._buckets.values():
            for representative, known_id in bucket:
                if known_id == type_id:
                    return representative
        raise KeyError(f"unknown type id {type_id}")

    def __len__(self) -> int:
        return self._next_id


def neighborhood_type(
    structure: Structure,
    center: Element | tuple[Element, ...],
    radius: int,
    registry: TypeRegistry,
) -> int:
    """The isomorphism type id of N_r(center), relative to ``registry``."""
    return registry.type_of(neighborhood(structure, center, radius))


def neighborhood_census(
    structure: Structure,
    radius: int,
    registry: TypeRegistry,
) -> Counter:
    """The census {type id: number of points realizing it}.

    "a realizes τ" in the paper's words — the census is the function
    τ ↦ #{a : N_r(a) has type τ} restricted to realized types.
    """
    with _span("locality.neighborhood_census") as census_span:
        census: Counter = Counter()
        for element in structure.universe:
            census[neighborhood_type(structure, element, radius, registry)] += 1
        if _telemetry_enabled():
            _counter("locality.censuses_computed").inc()
            _counter("locality.balls_computed").inc(len(structure.universe))
        census_span.set("radius", radius).set("types", len(census))
        return census


def tuple_type_classes(
    structure: Structure,
    tuples: Iterable[tuple[Element, ...]],
    radius: int,
    registry: TypeRegistry | None = None,
) -> dict[int, list[tuple[Element, ...]]]:
    """Partition tuples of elements by the iso type of their r-neighborhood.

    Gaifman locality says an FO query must be constant on every class of
    this partition — which is exactly how
    :func:`repro.locality.gaifman_locality.gaifman_locality_counterexample`
    checks it.
    """
    if registry is None:
        registry = TypeRegistry()
    classes: dict[int, list[tuple[Element, ...]]] = defaultdict(list)
    for tuple_ in tuples:
        type_id = neighborhood_type(structure, tuple(tuple_), radius, registry)
        classes[type_id].append(tuple(tuple_))
    return dict(classes)


def max_ball_size(degree_bound: int, radius: int) -> int:
    """An upper bound on |B_r(a)| in structures of Gaifman degree ≤ k.

    1 + k + k(k-1) + ... + k(k-1)^(r-1): the size of the ball in the
    k-regular tree, which maximizes it. Used to bound |N(k, r)| in the
    bounded-degree machinery (Thm 3.10/3.11).
    """
    if degree_bound < 0 or radius < 0:
        raise ValueError("degree bound and radius must be non-negative")
    if degree_bound == 0 or radius == 0:
        return 1
    total = 1
    layer = degree_bound
    for _ in range(radius):
        total += layer
        layer *= max(degree_bound - 1, 1)
    return total
