"""Gaifman's theorem machinery (Theorem 3.12).

Gaifman's theorem: every FO sentence is a Boolean combination of *basic
local sentences*

    ∃x₁ ... ∃xₙ ( ⋀ᵢ φ^{B_r(xᵢ)}(xᵢ)  ∧  ⋀_{i≠j} d(xᵢ, xⱼ) > 2r ),

asserting a scattered sequence of n points whose r-neighborhoods all
satisfy the same r-local formula φ. This module makes the ingredients
executable:

* :func:`local_satisfies` — evaluate φ(x) *inside* N_r(a) (relativized
  quantification);
* :func:`scattered_tuple_exists` — find n pairwise 2r-distant witnesses;
* :class:`BasicLocalSentence` — the sentence itself, evaluable directly
  and compilable (:meth:`~BasicLocalSentence.to_formula`) to an ordinary
  FO sentence via explicit distance formulas, so both evaluation routes
  can be cross-checked (experiment E11);
* :func:`distance_at_most` / :func:`distance_greater` — FO definitions
  of bounded Gaifman distance for any relational signature, built by
  recursive doubling so the quantifier rank grows only logarithmically
  in r.
"""

from __future__ import annotations

from repro.errors import LocalityError
from repro.logic.analysis import free_variables
from repro.logic.builder import and_, exists, exists_many, neq, not_, or_
from repro.logic.signature import Signature
from repro.logic.syntax import Atom, Eq, Formula, Var
from repro.logic.transform import fresh_variable, rename_free
from repro.eval.evaluator import evaluate
from repro.structures.gaifman import ball, distance
from repro.structures.structure import Element, Structure

__all__ = [
    "adjacency_formula",
    "distance_at_most",
    "distance_greater",
    "local_satisfies",
    "scattered_tuple_exists",
    "BasicLocalSentence",
]


def adjacency_formula(signature: Signature, x: Var, y: Var) -> Formula:
    """An FO formula asserting x ≠ y co-occur in some tuple (Gaifman edge).

    Disjunction over every relation R and every ordered pair of distinct
    positions (i, j): ∃(other coordinates) R(..., x at i, ..., y at j, ...).
    """
    disjuncts: list[Formula] = []
    for name in signature.relation_names():
        arity = signature.arity(name)
        for i in range(arity):
            for j in range(arity):
                if i == j:
                    continue
                terms: list[Var] = []
                others: list[Var] = []
                for position in range(arity):
                    if position == i:
                        terms.append(x)
                    elif position == j:
                        terms.append(y)
                    else:
                        fresh = Var(f"_adj{position}")
                        terms.append(fresh)
                        others.append(fresh)
                disjuncts.append(exists_many(others, Atom(name, tuple(terms))))
    return and_(neq(x, y), or_(*disjuncts))


def distance_at_most(signature: Signature, r: int, x: Var, y: Var) -> Formula:
    """The FO formula d(x, y) ≤ r, by recursive doubling.

    d ≤ 0 is x = y; d ≤ 1 is x = y ∨ adjacent; d ≤ r splits as
    ∃z (d(x,z) ≤ ⌈r/2⌉ ∧ d(z,y) ≤ ⌊r/2⌋), giving quantifier rank
    O(log r) + (arity of the signature).
    """
    if r < 0:
        raise LocalityError(f"distance bound must be non-negative, got {r}")
    if r == 0:
        return Eq(x, y)
    if r == 1:
        return or_(Eq(x, y), adjacency_formula(signature, x, y))
    half_up = (r + 1) // 2
    half_down = r // 2
    taken = {x, y}
    z = fresh_variable(taken, "_d")
    left = distance_at_most(signature, half_up, x, z)
    right = distance_at_most(signature, half_down, z, y)
    return exists(z, and_(left, right))


def distance_greater(signature: Signature, r: int, x: Var, y: Var) -> Formula:
    """The FO formula d(x, y) > r."""
    return not_(distance_at_most(signature, r, x, y))


def local_satisfies(
    structure: Structure,
    formula: Formula,
    center: Element,
    radius: int,
    center_var: Var | None = None,
) -> bool:
    """Whether φ(x) holds of ``center`` with quantifiers restricted to B_r(x).

    Implemented by inducing the substructure on the ball and evaluating
    there — the semantics of r-local formulas in Theorem 3.12. ``formula``
    must have exactly one free variable (``center_var`` or the unique
    free variable).
    """
    free = free_variables(formula)
    if center_var is None:
        if len(free) != 1:
            names = sorted(var.name for var in free)
            raise LocalityError(f"local formula must have exactly one free variable, has {names}")
        center_var = next(iter(free))
    members = ball(structure, center, radius)
    restricted = structure.induced(members)
    return evaluate(restricted, formula, {center_var: center})


def scattered_tuple_exists(
    structure: Structure,
    candidates: list[Element],
    count: int,
    min_distance: int,
) -> tuple[Element, ...] | None:
    """Find ``count`` candidates pairwise more than ``min_distance`` apart.

    Exact backtracking over the candidate list (the scattered-sequence
    search of a basic local sentence). Returns a witness tuple or None.
    """
    if count < 0:
        raise LocalityError(f"count must be non-negative, got {count}")
    if count == 0:
        return ()
    chosen: list[Element] = []

    def backtrack(start: int) -> bool:
        if len(chosen) == count:
            return True
        for index in range(start, len(candidates)):
            candidate = candidates[index]
            if all(
                distance(structure, previous, candidate) > min_distance
                for previous in chosen
            ):
                chosen.append(candidate)
                if backtrack(index + 1):
                    return True
                chosen.pop()
        return False

    if backtrack(0):
        return tuple(chosen)
    return None


class BasicLocalSentence:
    """A basic local sentence ∃ scattered x₁..xₙ with φ true r-locally.

    Parameters
    ----------
    local_formula:
        φ(x): a formula with one free variable, interpreted inside
        B_r(x).
    radius:
        The locality radius r; witnesses must be pairwise > 2r apart.
    count:
        The number n of scattered witnesses.
    """

    def __init__(self, local_formula: Formula, radius: int, count: int) -> None:
        free = free_variables(local_formula)
        if len(free) != 1:
            names = sorted(var.name for var in free)
            raise LocalityError(f"local formula must have exactly one free variable, has {names}")
        if radius < 0:
            raise LocalityError(f"radius must be non-negative, got {radius}")
        if count < 1:
            raise LocalityError(f"count must be at least 1, got {count}")
        self.local_formula = local_formula
        self.center_var = next(iter(free))
        self.radius = radius
        self.count = count

    def witnesses(self, structure: Structure) -> tuple[Element, ...] | None:
        """A scattered witness tuple, or None if the sentence is false."""
        candidates = [
            element
            for element in structure.universe
            if local_satisfies(structure, self.local_formula, element, self.radius, self.center_var)
        ]
        return scattered_tuple_exists(structure, candidates, self.count, 2 * self.radius)

    def evaluate(self, structure: Structure) -> bool:
        """Direct (geometric) evaluation of the basic local sentence."""
        return self.witnesses(structure) is not None

    __call__ = evaluate

    def to_formula(self, signature: Signature) -> Formula:
        """Compile to an ordinary FO sentence over ``signature``.

        Quantifiers of φ are relativized to the ball via explicit
        d(x, ·) ≤ r subformulas, and scatteredness becomes pairwise
        d(xᵢ, xⱼ) > 2r. Direct evaluation and ordinary evaluation of the
        compiled sentence agree on every structure — experiment E11's
        check.
        """
        from repro.logic.transform import standardize_apart

        witnesses = [Var(f"_w{index}") for index in range(self.count)]
        # Rule out capture: bound variables of φ must not collide with the
        # witness variables (or with the '_'-prefixed distance helpers).
        prepared = standardize_apart(self.local_formula, reserved=set(witnesses))
        parts: list[Formula] = []
        for index, witness in enumerate(witnesses):
            local = rename_free(prepared, {self.center_var: witness})
            parts.append(_relativize_to_ball(local, witness, self.radius, signature))
            for other in witnesses[:index]:
                parts.append(distance_greater(signature, 2 * self.radius, other, witness))
        return exists_many(witnesses, and_(*parts))


def _relativize_to_ball(formula: Formula, center: Var, radius: int, signature: Signature) -> Formula:
    """Restrict every quantifier in ``formula`` to B_radius(center)."""
    from repro.logic.syntax import (
        And,
        Atom,
        Bottom,
        Eq,
        Exists,
        Forall,
        Iff,
        Implies,
        Not,
        Or,
        Top,
    )

    def walk(node: Formula) -> Formula:
        if isinstance(node, (Atom, Eq, Top, Bottom)):
            return node
        if isinstance(node, Not):
            return Not(walk(node.body))
        if isinstance(node, And):
            return And(tuple(walk(child) for child in node.children))
        if isinstance(node, Or):
            return Or(tuple(walk(child) for child in node.children))
        if isinstance(node, Implies):
            return Implies(walk(node.premise), walk(node.conclusion))
        if isinstance(node, Iff):
            return Iff(walk(node.left), walk(node.right))
        if isinstance(node, Exists):
            guard = distance_at_most(signature, radius, center, node.var)
            return Exists(node.var, and_(guard, walk(node.body)))
        if isinstance(node, Forall):
            guard = distance_at_most(signature, radius, center, node.var)
            return Forall(node.var, Implies(guard, walk(node.body)))
        raise LocalityError(f"unknown formula node {node!r}")

    return walk(formula)
