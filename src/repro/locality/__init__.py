"""Locality tools (S5): BNDP, Gaifman, Hanf, threshold-Hanf, Gaifman's theorem.

The inexpressibility toolbox of §3.4–3.5 of the paper, plus the
linear-time bounded-degree evaluation algorithm of Theorem 3.11.
"""

from repro.locality.bndp import (
    BNDPReport,
    bndp_report,
    degree_profile,
    degs,
    output_graph,
)
from repro.locality.bounded_degree import BoundedDegreeEvaluator, census_key
from repro.locality.gaifman_locality import (
    gaifman_locality_counterexample,
    gaifman_locality_radius,
    is_gaifman_local_on,
    transitive_closure_chain_counterexample,
)
from repro.locality.gaifman_theorem import (
    BasicLocalSentence,
    adjacency_formula,
    distance_at_most,
    distance_greater,
    local_satisfies,
    scattered_tuple_exists,
)
from repro.locality.hanf import (
    hanf_equivalent,
    hanf_locality_counterexample,
    hanf_locality_radius,
    threshold_hanf_equivalent,
)
from repro.locality.neighborhoods import (
    TypeRegistry,
    ball_key,
    max_ball_size,
    neighborhood_census,
    neighborhood_census_baseline,
    neighborhood_census_many,
    neighborhood_type,
    tuple_type_classes,
)

__all__ = [
    # neighborhoods
    "TypeRegistry", "neighborhood_type", "neighborhood_census",
    "neighborhood_census_baseline", "neighborhood_census_many",
    "tuple_type_classes", "max_ball_size", "ball_key",
    # hanf
    "hanf_equivalent", "threshold_hanf_equivalent",
    "hanf_locality_counterexample", "hanf_locality_radius",
    # gaifman locality
    "gaifman_locality_counterexample", "is_gaifman_local_on",
    "gaifman_locality_radius", "transitive_closure_chain_counterexample",
    # bndp
    "degs", "output_graph", "degree_profile", "BNDPReport", "bndp_report",
    # bounded degree
    "BoundedDegreeEvaluator", "census_key",
    # gaifman theorem
    "adjacency_formula", "distance_at_most", "distance_greater",
    "local_satisfies", "scattered_tuple_exists", "BasicLocalSentence",
]
