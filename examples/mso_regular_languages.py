"""Beyond FO: MSO on words (Büchi–Elgot–Trakhtenbrot) and ∃SO (Fagin).

EVEN — unreachable for FO (see examples/inexpressibility_proofs.py) —
falls to monadic second-order logic: the MSO sentence for even length
compiles to the familiar 2-state parity automaton. ∃SO goes further and
captures NP (Fagin's theorem); 3-colorability is the classic witness.

Run:  python examples/mso_regular_languages.py
"""

from repro.descriptive import (
    even_length_sentence,
    is_three_colorable,
    length_divisible_sentence,
    mso_evaluate,
    mso_to_nfa,
    three_colorability_eso,
)
from repro.structures import complete_graph, undirected_cycle


def mso_demo() -> None:
    print("== MSO → automata ==")
    sentence = even_length_sentence()
    nfa = mso_to_nfa(sentence, {"a", "b"})
    minimal = nfa.determinize().minimize()
    print(f"  'even length' compiles to a {len(minimal.states)}-state minimal DFA")
    for word in ("", "ab", "aba", "abab"):
        accepted = nfa.accepts(word)
        semantics = mso_evaluate(word, sentence)
        print(f"  |{word!r}| = {len(word)}: automaton={accepted}, semantics={semantics}")
        assert accepted == semantics == (len(word) % 2 == 0)
    print()

    print("== Divisibility family ==")
    for k in (2, 3, 4):
        dfa = mso_to_nfa(length_divisible_sentence(k), {"a"}).determinize().minimize()
        print(f"  |w| ≡ 0 (mod {k}) → minimal DFA with {len(dfa.states)} states")
        assert len(dfa.states) == k
    print()


def eso_demo() -> None:
    print("== ∃SO: guess-and-check 3-colorability (Fagin) ==")
    eso = three_colorability_eso()
    for name, graph in [("C5", undirected_cycle(5)), ("K4", complete_graph(4))]:
        guessed = eso.check(graph, budget=10**8)
        direct = is_three_colorable(graph)
        verdict = "3-colorable" if direct else "NOT 3-colorable"
        print(f"  {name}: {verdict} (witness space 2^{3 * graph.size} candidates)")
        assert (guessed is not None) == direct
        if guessed:
            print(f"     witness coloring: { {k: sorted(v) for k, v in guessed.items()} }")
    print()


if __name__ == "__main__":
    mso_demo()
    eso_demo()
