"""Datalog vs FO: running the queries FO provably cannot express.

The paper's locality tools exist to show TC, same-generation and
connectivity are beyond FO. This example runs those very queries in the
Datalog engine — the recursive language where they live naturally — and
cross-checks every answer against the direct fixed-point implementations.

Run:  python examples/datalog_vs_fo.py
"""

from repro.fixpoint import parse_program, same_generation, transitive_closure
from repro.structures import directed_chain, full_binary_tree, random_graph


def transitive_closure_demo() -> None:
    print("== Transitive closure in Datalog ==")
    program = parse_program(
        """
        tc(X, Y) :- E(X, Y).
        tc(X, Z) :- E(X, Y), tc(Y, Z).
        """
    )
    chain = directed_chain(6)
    result = program.evaluate(chain)["tc"]
    print(f"  TC of a 6-chain: {len(result)} pairs (expected 15)")
    assert result == transitive_closure(chain)
    print("  agrees with the semi-naive fixed-point engine.\n")


def same_generation_demo() -> None:
    print("== Same generation (the paper's Datalog program) ==")
    program = parse_program(
        """
        sg(X, X) :- V(X).
        sg(X, Y) :- E(Xp, X), E(Yp, Y), sg(Xp, Yp).
        """
    )
    tree = full_binary_tree(3)
    base = tree.with_relation("V", 1, [(v,) for v in tree.universe])
    result = program.evaluate(base)["sg"]
    by_level = {}
    for a, b in result:
        by_level.setdefault(a.bit_length(), set()).add((a, b))
    for level in sorted(by_level):
        print(f"  level {level - 1}: {len(by_level[level])} same-generation pairs")
    assert result == same_generation(tree)
    print("  agrees with the direct implementation.\n")


def stratified_negation_demo() -> None:
    print("== Stratified negation: unreachable nodes ==")
    program = parse_program(
        """
        reach(X) :- Start(X).
        reach(Y) :- reach(X), E(X, Y).
        unreachable(X) :- V(X), not reach(X).
        """
    )
    graph = random_graph(8, 0.15, seed=5)
    base = graph.with_relation("V", 1, [(v,) for v in graph.universe]).with_relation(
        "Start", 1, [(0,)]
    )
    result = program.evaluate(base)
    print(f"  from node 0: {len(result['reach'])} reachable, {len(result['unreachable'])} not")
    assert len(result["reach"]) + len(result["unreachable"]) == graph.size
    print("  strata evaluated bottom-up; negation applied to the finished lower stratum.\n")


def lfp_logic_demo() -> None:
    print("== FO(LFP): the logic that closes the gap ==")
    from repro.fixpoint import evaluate_lfp, even_sentence_over_orders
    from repro.games import ef_equivalent
    from repro.structures import linear_order

    even = even_sentence_over_orders()
    left, right = linear_order(4), linear_order(5)
    print(f"  L_4 ≡₂ L_5 for FO (Theorem 3.1)? {ef_equivalent(left, right, 2)}")
    print(f"  FO(LFP) EVEN sentence: L_4 → {evaluate_lfp(left, even)}, "
          f"L_5 → {evaluate_lfp(right, even)}")
    print("  recursion sees the parity that no FO sentence of rank 2 can.\n")


if __name__ == "__main__":
    transitive_closure_demo()
    same_generation_demo()
    stratified_negation_demo()
    lfp_logic_demo()
