"""Quickstart: databases as finite structures, FO as a query language.

Covers the first act of the paper: build structures, run FO queries
through three equivalent engines, and play an Ehrenfeucht–Fraïssé game.

Run:  python examples/quickstart.py
"""

from repro.eval import algebra_answers, answers, compile_query, evaluate, evaluate_circuit
from repro.games import distinguishing_sentence, ef_equivalent
from repro.logic import GRAPH, parse, quantifier_rank
from repro.structures import Structure, bare_set, linear_order, random_graph


def main() -> None:
    # -- 1. A database is a finite relational structure ---------------------
    people = Structure(
        GRAPH,
        ["ann", "bob", "eve", "dan"],
        {"E": [("ann", "bob"), ("bob", "eve"), ("eve", "ann"), ("dan", "dan")]},
    )
    print("database:", people)

    # -- 2. FO is the query language ---------------------------------------
    follows_someone = parse("exists y (E(x, y) & ~(x = y))")
    print("who follows someone else:", sorted(answers(people, follows_someone)))

    narcissist = parse("exists x (E(x, x))")
    print("is there a self-follower?", evaluate(people, narcissist))

    # -- 3. Three engines, one answer ---------------------------------------
    query = parse("exists x forall y (E(x, y) | x = y)")
    graph = random_graph(6, 0.5, seed=1)
    naive = evaluate(graph, query)
    algebra = algebra_answers(graph, query) == frozenset({()})
    circuit = evaluate_circuit(compile_query(query, GRAPH, graph.size), graph)
    print(f"naive={naive}  algebra={algebra}  circuit={circuit}  (must agree)")
    assert naive == algebra == circuit

    # -- 4. Games: the paper's first inexpressibility proof ------------------
    # EVEN cannot be FO-defined: a 4-set and a 5-set are indistinguishable
    # by any sentence of quantifier rank ≤ 3, although one is even.
    even, odd = bare_set(4), bare_set(5)
    print("bare 4-set ≡₃ bare 5-set?", ef_equivalent(even, odd, 3))

    # But rank 3 *can* separate a 2-set from a 3-set — and the library
    # extracts the separating sentence:
    separator = distinguishing_sentence(bare_set(2), bare_set(3), 3)
    print("separator (rank", quantifier_rank(separator), "):", separator)
    assert evaluate(bare_set(2), separator) and not evaluate(bare_set(3), separator)

    # -- 5. Theorem 3.1 on linear orders --------------------------------------
    print("L_8 ≡₃ L_9?", ef_equivalent(linear_order(8), linear_order(9), 3))
    print("L_6 ≡₃ L_7?", ef_equivalent(linear_order(6), linear_order(7), 3))


if __name__ == "__main__":
    main()
