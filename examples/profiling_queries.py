"""Profiling FO queries: telemetry, EXPLAIN ANALYZE, and the metrics report.

Walks through the observability layer:

1. enable telemetry (``repro.telemetry.enable()`` — or export
   ``REPRO_TELEMETRY=1`` before starting Python);
2. profile one query-zoo formula with ``Engine.profile`` and read the
   per-operator estimate-vs-actual report;
3. run a whole corpus and read the aggregated metrics: per-operator
   rows, cache hit rates, fast-path dispatches.

Run:  PYTHONPATH=src python examples/profiling_queries.py
"""

from repro import telemetry
from repro.engine import Engine
from repro.logic.parser import parse
from repro.queries.zoo import fo_graph_corpus
from repro.structures.builders import directed_cycle, random_graph


def main() -> None:
    # -- 1. Telemetry is off by default; turn it on for this process --------
    telemetry.enable()
    engine = Engine(fast_path_threshold=4)

    # -- 2. EXPLAIN ANALYZE one query ---------------------------------------
    # distance-two: pairs at distance exactly 2 — a join the planner must
    # order, a negation the executor runs as an antijoin.
    graph = random_graph(40, 0.12, seed=7)
    distance_two = parse("exists z (E(x, z) & E(z, y)) & ~E(x, y)")
    profile = engine.profile(graph, distance_two)
    print("=== EXPLAIN ANALYZE: distance-two on G(40, 0.12) ===")
    print(profile)
    print()
    # Reading the tree: est= is the planner's cardinality estimate,
    # actual= what the executor measured (durations include children).
    # Large est/actual gaps point at misplanning — exactly what this
    # report exists to expose.

    # -- 3. A workload's worth of metrics -----------------------------------
    for query in fo_graph_corpus():
        engine.answers(graph, query.formula, query.variables)
    # A bounded-degree family exercises the Theorem 3.11 fast path.
    mutual = parse("exists x exists y (E(x, y) & E(y, x))")
    for n in range(10, 20):
        engine.evaluate(directed_cycle(n), mutual)

    print(telemetry.metrics_report())
    print()
    print("=== per-cache summary ===")
    for cache in (engine.plan_cache, engine.answer_cache):
        print(f"  {cache!r}")
    print()
    print("engine stats:", engine.stats.as_dict())

    # -- 4. Spans: where one call spent its time ----------------------------
    spans = telemetry.drain_spans()
    if spans:
        print()
        print("=== last trace ===")
        print(spans[-1].render())


if __name__ == "__main__":
    main()
