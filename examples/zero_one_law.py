"""The 0–1 law for FO: exact limits, convergence curves, extension axioms.

Run:  python examples/zero_one_law.py
"""

from repro.eval import evaluate
from repro.logic import GRAPH, parse
from repro.queries import even_query
from repro.zero_one import (
    decide_almost_sure,
    decide_via_witness,
    find_extension_witness,
    mu_curve,
    mu_estimate,
    satisfies_extension_axiom,
)


def exact_decisions() -> None:
    print("== Exact μ(φ) decisions (generic-structure model checking) ==")
    battery = [
        ("Q1: ∀x∀y E(x,y)", "forall x forall y E(x, y)"),
        ("Q2: extension property", "forall x forall y (~(x = y) -> exists z (E(z, x) & ~E(z, y)))"),
        ("∃ loop", "exists x E(x, x)"),
        ("∃ dominating vertex", "exists x forall y (E(x, y) | x = y)"),
        ("diameter ≤ 2", "forall x forall y (x = y | E(x, y) | exists z (E(x, z) & E(z, y)))"),
    ]
    for name, text in battery:
        mu = 1 if decide_almost_sure(parse(text), GRAPH) else 0
        print(f"  μ({name}) = {mu}")
    print()


def convergence() -> None:
    print("== Sampled μ_n converges to the decided limit ==")
    q2 = parse("forall x forall y (~(x = y) -> exists z (E(z, x) & ~E(z, y)))")
    for point in mu_curve(lambda s: evaluate(s, q2), GRAPH, [6, 12, 24, 40], samples=25, seed=7):
        print(f"  {point!r}")
    print("  decided limit: μ(Q2) = 1\n")


def even_has_no_limit() -> None:
    print("== EVEN: μ_n alternates, so the limit does not exist ==")
    values = [mu_estimate(even_query, GRAPH, n, samples=3).value for n in range(3, 9)]
    print("  μ_n for n = 3..8:", values)
    print("  (consistent with EVEN ∉ FO — the 0–1 law applies only to FO)\n")


def extension_axioms() -> None:
    print("== Extension axioms: the finite route to the same answers ==")
    witness = find_extension_witness(GRAPH, 1, seed=4)
    print(f"  found a {witness.size}-element structure satisfying every level-1 extension axiom")
    assert satisfies_extension_axiom(witness, 1)
    for text in ["exists x E(x, x)", "forall x exists y E(x, y)", "exists x forall y E(y, x)"]:
        sentence = parse(text)
        symbolic = decide_almost_sure(sentence, GRAPH)
        finite = decide_via_witness(sentence, GRAPH, witness=witness)
        print(f"  {text:35s} symbolic={symbolic}  witness={finite}")
        assert symbolic == finite
    print()


if __name__ == "__main__":
    exact_decisions()
    convergence()
    even_has_no_limit()
    extension_axioms()
