"""The paper's §3.2–3.3 inexpressibility proofs, run end to end.

Each section of this script *computes* one classical proof: the
structure families, the game equivalences, the reductions, and the
query disagreements.

Run:  python examples/inexpressibility_proofs.py
"""

from repro.games import ef_equivalent, linear_order_threshold, solve_ef_game
from repro.queries import (
    acyclicity_query,
    connectivity_query,
    connectivity_via_tc,
    even_query,
    order_to_acyclicity_graph,
    order_to_connectivity_graph,
)
from repro.structures import bare_set, linear_order, random_graph
from repro.structures.gaifman import is_connected


def proof_even_on_sets() -> None:
    print("== EVEN is not FO-definable on sets ==")
    for n in (1, 2, 3):
        a_n, b_n = bare_set(2 * n), bare_set(2 * n + 1)
        equivalent = ef_equivalent(a_n, b_n, n)
        print(
            f"  n={n}: |A|={2 * n} (even), |B|={2 * n + 1} (odd), A ≡_{n} B: {equivalent}"
        )
        assert equivalent and even_query(a_n) != even_query(b_n)
    print("  ⇒ no FO sentence of any rank defines EVEN.\n")


def proof_even_on_orders() -> None:
    print("== EVEN is not FO-definable on linear orders (Theorem 3.1) ==")
    for n in (1, 2, 3):
        m, k = 2**n, 2**n + 1
        result = solve_ef_game(linear_order(m), linear_order(k), n)
        print(
            f"  n={n}: L_{m} ≡_{n} L_{k}: {result.duplicator_wins} "
            f"({result.explored} solver positions; tight threshold {linear_order_threshold(n)})"
        )
        assert result.duplicator_wins
    print("  ⇒ EVEN(<) is not FO-definable over orders.\n")


def proof_connectivity() -> None:
    print("== Connectivity is not FO-definable (reduction from EVEN(<)) ==")
    for n in (5, 6, 7, 8):
        graph = order_to_connectivity_graph(linear_order(n))
        print(f"  |order|={n} ({'odd' if n % 2 else 'even'}): connected = {is_connected(graph)}")
        assert is_connected(graph) == (n % 2 == 1)
    print("  The construction is an FO query; CONN ∈ FO would give EVEN(<) ∈ FO. ⇒ CONN ∉ FO.\n")


def proof_acyclicity() -> None:
    print("== Acyclicity is not FO-definable (one back edge) ==")
    for n in (5, 6, 7, 8):
        graph = order_to_acyclicity_graph(linear_order(n))
        print(f"  |order|={n} ({'odd' if n % 2 else 'even'}): acyclic = {acyclicity_query(graph)}")
        assert acyclicity_query(graph) == (n % 2 == 0)
    print("  ⇒ ACYCL ∉ FO.\n")


def proof_transitive_closure() -> None:
    print("== Transitive closure is not FO-definable (TC decides CONN) ==")
    for seed in range(4):
        graph = random_graph(7, 0.2, seed=seed)
        via_tc = connectivity_via_tc(graph)
        direct = connectivity_query(graph)
        print(f"  random graph #{seed}: CONN via TC = {via_tc}, direct = {direct}")
        assert via_tc == direct
    print("  symmetrize → close → completeness test decides CONN. ⇒ TC ∉ FO.\n")


if __name__ == "__main__":
    proof_even_on_sets()
    proof_even_on_orders()
    proof_connectivity()
    proof_acyclicity()
    proof_transitive_closure()
    print("All five classical proofs verified computationally.")
