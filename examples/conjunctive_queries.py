"""Conjunctive queries and the Chandra–Merlin theorem.

The bread-and-butter of database theory that the paper's toolbox serves:
SELECT–PROJECT–JOIN queries, their containment and minimization — all
decided by homomorphisms of canonical databases.

Run:  python examples/conjunctive_queries.py
"""

from repro.queries import ConjunctiveQuery, is_homomorphic
from repro.structures import complete_graph, directed_chain, random_graph, undirected_cycle


def evaluation_demo() -> None:
    print("== Evaluating conjunctive queries ==")
    path2 = ConjunctiveQuery.from_rule("q(X, Y) :- E(X, Z), E(Z, Y).")
    chain = directed_chain(5)
    print(f"  two-step pairs on a 5-chain: {sorted(path2.evaluate(chain))}")

    triangle = ConjunctiveQuery.from_rule("q(X) :- E(X, Y), E(Y, Z), E(Z, X).")
    graph = random_graph(6, 0.4, seed=8)
    print(f"  nodes on a triangle-walk in a random graph: {sorted(triangle.evaluate(graph))}\n")


def containment_demo() -> None:
    print("== Containment via canonical databases (Chandra–Merlin) ==")
    on_c3 = ConjunctiveQuery.from_rule("q(X) :- E(X, Y), E(Y, Z), E(Z, X).")
    on_c6 = ConjunctiveQuery.from_rule(
        "q(X) :- E(X, A), E(A, B), E(B, C), E(C, D), E(D, F), E(F, X)."
    )
    print(f"  'on a 3-cycle-walk' ⊆ 'on a 6-cycle-walk'? {on_c3.contained_in(on_c6)}")
    print(f"  'on a 6-cycle-walk' ⊆ 'on a 3-cycle-walk'? {on_c6.contained_in(on_c3)}")
    print("  (the hom C6 → C3 exists — wrap twice — but C3 → C6 does not)")
    for seed in range(3):
        graph = random_graph(6, 0.5, seed=seed)
        assert on_c3.evaluate(graph) <= on_c6.evaluate(graph)
    print("  containment confirmed semantically on random graphs.\n")


def minimization_demo() -> None:
    print("== Minimization to the core ==")
    bloated = ConjunctiveQuery.from_rule(
        "q(X) :- E(X, Y), E(Y, Z), E(Z, X), E(X, A), E(A, B)."
    )
    core = bloated.minimize()
    print(f"  input : {bloated}")
    print(f"  core  : {core}")
    assert len(core.body) == 3 and core.equivalent_to(bloated)
    print("  the pendant 2-walk folds into the triangle — 5 joins become 3.\n")


def homomorphism_demo() -> None:
    print("== Homomorphisms (the engine underneath) ==")
    print(f"  C5 → K3 (5-cycle 3-colorable)?  {is_homomorphic(undirected_cycle(5), complete_graph(3))}")
    print(f"  K4 → K3 (K4 3-colorable)?       {is_homomorphic(complete_graph(4), complete_graph(3))}")
    print()


if __name__ == "__main__":
    evaluation_demo()
    containment_demo()
    minimization_demo()
    homomorphism_demo()
