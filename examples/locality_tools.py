"""The locality toolbox of §3.4–3.5: BNDP, Gaifman, Hanf, and the
linear-time bounded-degree evaluator.

Run:  python examples/locality_tools.py
"""

import time

from repro.eval import evaluate
from repro.fixpoint import same_generation, transitive_closure
from repro.locality import (
    BoundedDegreeEvaluator,
    bndp_report,
    degs,
    gaifman_locality_counterexample,
    hanf_equivalent,
    output_graph,
    transitive_closure_chain_counterexample,
)
from repro.logic import parse
from repro.queries import connectivity_query
from repro.structures import (
    directed_chain,
    disjoint_cycles,
    full_binary_tree,
    undirected_cycle,
)


def bndp_demo() -> None:
    print("== BNDP (Definition 3.3): fixed points create degrees ==")
    report = bndp_report(transitive_closure, [directed_chain(n) for n in (4, 8, 16)], name="TC")
    for size, bound, count in report.profiles:
        print(f"  TC on {size}-chain (degree ≤ {bound}): {count} distinct degrees")
    tree = full_binary_tree(3)
    sg = output_graph(same_generation(tree), tree.universe)
    print(f"  same-generation on depth-3 binary tree: degrees {sorted(degs(sg))}")
    print("  ⇒ both violate the BNDP; no FO query can do this (Theorem 3.4).\n")


def gaifman_demo() -> None:
    print("== Gaifman locality (Theorem 3.6): the long-chain figure ==")
    chain, forward, backward = transitive_closure_chain_counterexample(2)
    violation = gaifman_locality_counterexample(
        transitive_closure, chain, 2, 2, tuples=[forward, backward]
    )
    inside, outside = violation
    print(f"  chain of {chain.size} nodes, radius 2:")
    print(f"  N_2{inside} ≅ N_2{outside}, yet {inside} ∈ TC and {outside} ∉ TC")
    print("  ⇒ TC is not Gaifman-local, hence not FO-definable.\n")


def hanf_demo() -> None:
    print("== Hanf locality (Theorem 3.8): two cycles vs one ==")
    m = 8
    left, right = disjoint_cycles([m, m]), undirected_cycle(2 * m)
    print(f"  2×C_{m} ⇆₂ C_{2 * m}: {hanf_equivalent(left, right, 2)}")
    print(f"  connected? {connectivity_query(left)} vs {connectivity_query(right)}")
    print("  ⇒ connectivity is not Hanf-local, hence not FO-definable.\n")


def bounded_degree_demo() -> None:
    print("== Theorem 3.11: linear-time evaluation on bounded degree ==")
    sentence = parse("exists x exists y exists z (E(x, y) & E(y, z) & E(z, x))")
    evaluator = BoundedDegreeEvaluator(sentence, degree_bound=2, radius=4)

    warm = disjoint_cycles([30, 30])
    evaluator.evaluate(warm)
    target = undirected_cycle(60)

    start = time.perf_counter()
    fast = evaluator.evaluate(target)
    fast_time = time.perf_counter() - start

    start = time.perf_counter()
    slow = evaluate(target, sentence)
    slow_time = time.perf_counter() - start

    assert fast == slow
    print(f"  sentence: has-triangle (rank 3), structure: C_60 (degree 2)")
    print(f"  census + table lookup: {fast_time * 1e3:8.2f} ms   (answer {fast})")
    print(f"  naive O(n³) evaluator: {slow_time * 1e3:8.2f} ms   (answer {slow})")
    print(f"  cache: {evaluator.stats.hits} hits / {evaluator.stats.misses} misses")
    print("  The warm structure 2×C_30 has the same radius-4 census as C_60,")
    print("  so Hanf's theorem licenses reusing its answer.\n")


if __name__ == "__main__":
    bndp_demo()
    gaifman_demo()
    hanf_demo()
    bounded_degree_demo()
