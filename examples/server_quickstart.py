"""Server quickstart: the FO query service over HTTP, end to end.

Boots :mod:`repro.server` on an ephemeral port (daemon thread, same
process), then speaks wire format v1 through plain ``urllib``: upload a
structure, prepare a query once, answer it many times, page through a
result, trip a typed budget refusal, and read the metrics.

Run:  PYTHONPATH=src python examples/server_quickstart.py
"""

import json
import urllib.error
import urllib.request

from repro.server import QueryService, serve, wire
from repro.structures import random_graph


def post(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read())


def main() -> None:
    # -- 1. Boot the service ------------------------------------------------
    server, _thread = serve(QueryService())
    base = server.url
    print("serving on", base)
    print("health:", get(base + "/healthz"))

    # -- 2. Upload a structure (content-addressed, idempotent) ---------------
    graph = random_graph(12, 0.3, seed=7)
    upload = post(base + "/v1/structures", {"structure": wire.structure_to_dict(graph)})
    structure_id = upload["structure_id"]
    print(f"uploaded {structure_id} (size {upload['size']})")
    again = post(base + "/v1/structures", {"structure": wire.structure_to_dict(graph)})
    assert again["structure_id"] == structure_id, "same bytes, same id"

    # -- 3. Prepare once, answer many ---------------------------------------
    prepared = post(
        base + "/v1/queries",
        {"tenant": "quickstart", "formula": "exists y (E(x, y) & ~(x = y))"},
    )
    query = prepared["query"]
    print(f"prepared {query} with free variables {prepared['free_variables']}")

    page = post(
        base + "/v1/answers",
        {"tenant": "quickstart", "structure_id": structure_id, "query": query},
    )
    print(f"answers: {page['total_rows']} rows, first few: {page['rows'][:3]}")

    # -- 4. Paging: canonical order, stable across requests ------------------
    rows: list = []
    page_index = 0
    while True:
        chunk = post(
            base + "/v1/answers",
            {
                "tenant": "quickstart",
                "structure_id": structure_id,
                "query": query,
                "page": page_index,
                "page_size": 4,
            },
        )
        rows.extend(chunk["rows"])
        if not chunk["has_more"]:
            break
        page_index += 1
    assert rows == page["rows"], "pages concatenate to the full answer"
    print(f"paged through {page_index + 1} pages of 4 rows")

    # -- 5. Admission control: refusals are typed, never wrong answers -------
    try:
        post(
            base + "/v1/answers",
            {
                "tenant": "quickstart",
                "structure_id": structure_id,
                "query": query,
                "max_rows": 1,
            },
        )
    except urllib.error.HTTPError as error:
        payload = json.loads(error.read())
        print(
            f"refused with HTTP {error.code}: {payload['error']['type']} "
            f"(spent {payload['error']['spent']} of budget {payload['error']['budget']})"
        )
        assert error.code == 429
        assert payload["error"]["refusal"] is True
    else:
        raise AssertionError("over-budget request should have been refused")

    # -- 6. Ad-hoc queries work too (no prepare step, no answer cache) -------
    adhoc = post(
        base + "/v1/answers",
        {
            "tenant": "quickstart",
            "structure_id": structure_id,
            "formula": "exists x forall y (E(x, y) | x = y)",
        },
    )
    print("ad-hoc sentence holds?", adhoc["total_rows"] == 1)

    # -- 7. Metrics see all of it --------------------------------------------
    metrics = get(base + "/metrics")
    counters = metrics["tenants"]["quickstart"]["counters"]
    print(
        f"tenant counters: answered={counters['answered']} "
        f"refused={counters['refused']} prepared={counters['queries_prepared']}"
    )

    server.shutdown()
    print("done")


if __name__ == "__main__":
    main()
