"""Tests for the duplicator strategy library — validated against the
exact solver's optimal spoiler."""

import pytest

from repro.errors import GameError
from repro.games.ef import ef_equivalent, optimal_spoiler, play_ef_game
from repro.games.strategies import (
    gap_halving_spoiler,
    linear_order_duplicator,
    linear_order_threshold,
    order_ranks,
    set_duplicator,
    theorem_3_1_families,
    union_duplicator,
)
from repro.structures.builders import bare_set, directed_cycle, linear_order, undirected_chain


class TestThresholds:
    def test_threshold_values(self):
        assert linear_order_threshold(1) == 1
        assert linear_order_threshold(2) == 3
        assert linear_order_threshold(3) == 7

    def test_negative_rejected(self):
        with pytest.raises(GameError):
            linear_order_threshold(-1)

    def test_paper_families(self):
        assert theorem_3_1_families(3) == (8, 9)


class TestOrderRanks:
    def test_ranks_of_linear_order(self):
        ranks = order_ranks(linear_order(4))
        assert ranks == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_non_order_rejected(self):
        bad = linear_order(3).with_relation("<", 2, [(0, 1)])
        with pytest.raises(GameError):
            order_ranks(bad)


class TestSetStrategy:
    @pytest.mark.parametrize("sizes", [(3, 3), (3, 5), (4, 4), (5, 9)])
    def test_beats_optimal_spoiler_on_large_sets(self, sizes):
        left, right = bare_set(sizes[0]), bare_set(sizes[1])
        rounds = min(sizes)
        winner, _ = play_ef_game(left, right, rounds, optimal_spoiler(), set_duplicator())
        assert winner == "duplicator"

    def test_loses_exactly_when_solver_says(self):
        # Sets of sizes 2 and 3 at 3 rounds: spoiler wins; the strategy
        # cannot be expected to survive a lost game.
        left, right = bare_set(2), bare_set(3)
        assert not ef_equivalent(left, right, 3)


class TestLinearOrderStrategy:
    @pytest.mark.parametrize(
        "m,k,n",
        [
            (3, 4, 2),
            (4, 4, 2),
            (3, 10, 2),
            (7, 8, 3),
            (7, 12, 3),
            (5, 5, 3),
        ],
    )
    def test_wins_against_optimal_spoiler(self, m, k, n):
        threshold = linear_order_threshold(n)
        assert m == k or (m >= threshold and k >= threshold)
        winner, final = play_ef_game(
            linear_order(m), linear_order(k), n, optimal_spoiler(budget=2_000_000),
            linear_order_duplicator(),
        )
        assert winner == "duplicator", final

    @pytest.mark.parametrize(
        "m,k,n",
        [
            (9, 30, 3),
            (15, 16, 4),
            (15, 40, 4),
            (31, 45, 5),
        ],
    )
    def test_wins_against_gap_halving_spoiler_at_scale(self, m, k, n):
        winner, final = play_ef_game(
            linear_order(m), linear_order(k), n, gap_halving_spoiler(),
            linear_order_duplicator(),
        )
        assert winner == "duplicator", final

    def test_below_threshold_the_position_is_genuinely_lost(self):
        # Sanity for the adversary tests above: below the 2ⁿ − 1
        # threshold no duplicator can win — the optimal spoiler beats
        # even the interval strategy.
        assert not ef_equivalent(linear_order(4), linear_order(6), 3)
        winner, _ = play_ef_game(
            linear_order(4), linear_order(6), 3, optimal_spoiler(),
            linear_order_duplicator(),
        )
        assert winner == "spoiler"

    def test_equal_orders_any_rounds(self):
        winner, _ = play_ef_game(
            linear_order(4), linear_order(4), 4, optimal_spoiler(), linear_order_duplicator()
        )
        assert winner == "duplicator"

    def test_forced_reply_on_replay(self):
        from repro.games.ef import GamePosition, Move

        strategy = linear_order_duplicator()
        left, right = linear_order(5), linear_order(6)
        position = GamePosition(((2, 3),), 2)
        assert strategy(left, right, position, Move("left", 2)) == 3
        assert strategy(left, right, position, Move("right", 3)) == 2


class TestUnionStrategy:
    def test_composition_lemma_played_out(self):
        # A1 ≡₂ B1 (two 3-sets) and A2 ≡₂ B2 (orders ≥ 3): the union
        # strategy must win the composed game.
        a1, b1 = bare_set(3), bare_set(4)
        a2, b2 = linear_order(3), linear_order(4)
        # Tag with the same labels disjoint_union produces.
        left = a1_union = None
        from repro.logic.signature import Signature
        from repro.structures.structure import Structure

        # Promote the pieces to a common signature before the union.
        sig = Signature({"<": 2})
        a1s = Structure(sig, a1.universe, {"<": []})
        b1s = Structure(sig, b1.universe, {"<": []})
        left = a1s.disjoint_union(a2)
        right = b1s.disjoint_union(b2)
        strategy = union_duplicator(
            set_duplicator(), linear_order_duplicator(), ((a1s, b1s), (a2, b2))
        )
        winner, final = play_ef_game(left, right, 2, optimal_spoiler(), strategy)
        assert winner == "duplicator", final

    def test_solver_confirms_composition_lemma(self):
        # Independent check of the lemma itself on small structures.
        a1, b1 = directed_cycle(3), directed_cycle(3)
        a2, b2 = undirected_chain(3), undirected_chain(3)
        left = a1.disjoint_union(a2)
        right = b1.disjoint_union(b2)
        assert ef_equivalent(left, right, 2)
