"""Tests for the exact EF game solver — the engine of §3.2."""

import pytest

from repro.errors import BudgetExceededError, GameError
from repro.games.ef import (
    GamePosition,
    Move,
    ef_equivalent,
    optimal_duplicator,
    optimal_spoiler,
    play_ef_game,
    solve_ef_game,
)
from repro.structures.builders import (
    bare_set,
    directed_chain,
    directed_cycle,
    linear_order,
    random_graph,
    undirected_chain,
)


class TestBasics:
    def test_isomorphic_structures_always_equivalent(self):
        left = directed_cycle(4)
        right = directed_cycle(4).relabel(lambda element: element + 10)
        for rounds in (1, 2, 3):
            assert ef_equivalent(left, right, rounds)

    def test_zero_rounds_always_duplicator(self):
        assert ef_equivalent(bare_set(1), bare_set(5), 0)

    def test_signature_mismatch_rejected(self):
        with pytest.raises(GameError):
            ef_equivalent(bare_set(2), directed_cycle(3), 1)

    def test_budget_enforced(self):
        with pytest.raises(BudgetExceededError):
            solve_ef_game(linear_order(10), linear_order(11), 4, budget=10)

    def test_result_reports_exploration(self):
        result = solve_ef_game(bare_set(3), bare_set(4), 2)
        assert result.explored > 0
        assert result.rounds == 2


class TestEvenOnSets:
    """§3.2: on bare sets the duplicator wins G_n on any two ≥n sets."""

    def test_large_sets_equivalent(self):
        assert ef_equivalent(bare_set(4), bare_set(5), 3)
        assert ef_equivalent(bare_set(3), bare_set(7), 3)

    def test_spoiler_wins_when_one_set_too_small(self):
        assert not ef_equivalent(bare_set(2), bare_set(3), 3)

    def test_equal_small_sets_equivalent(self):
        assert ef_equivalent(bare_set(2), bare_set(2), 5)

    def test_paper_families(self):
        # A_n = 2n-set, B_n = (2n+1)-set: equivalent at n rounds, and
        # they disagree on EVEN — the first inexpressibility proof.
        for n in (1, 2, 3):
            assert ef_equivalent(bare_set(2 * n), bare_set(2 * n + 1), n)
            assert (2 * n) % 2 == 0 and (2 * n + 1) % 2 == 1


class TestTheorem31:
    """Theorem 3.1: L_m ≡_n L_k for m, k ≥ 2ⁿ, tight at 2ⁿ − 1."""

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_equivalence_at_threshold(self, n):
        threshold = 2**n - 1
        assert ef_equivalent(linear_order(threshold), linear_order(threshold + 1), n)

    @pytest.mark.parametrize("n", [2, 3])
    def test_spoiler_wins_below_threshold(self, n):
        threshold = 2**n - 1
        assert not ef_equivalent(linear_order(threshold - 1), linear_order(threshold), n)

    def test_paper_statement(self):
        # The paper takes A_n = L_{2^n}, B_n = L_{2^n + 1}.
        for n in (1, 2, 3):
            assert ef_equivalent(linear_order(2**n), linear_order(2**n + 1), n)

    def test_equal_orders_equivalent_below_threshold(self):
        assert ef_equivalent(linear_order(3), linear_order(3), 4)


class TestGraphCases:
    def test_chain_vs_cycle_one_round(self):
        # One round cannot tell a chain from a cycle of the same size.
        assert ef_equivalent(directed_chain(4), directed_cycle(4), 1)

    def test_chain_vs_cycle_two_rounds(self):
        # Two rounds: the spoiler pebbles the chain's source (no in-edge).
        assert not ef_equivalent(directed_chain(4), directed_cycle(4), 2)

    def test_monotone_in_rounds(self):
        # If the spoiler wins with n rounds, he wins with n+1.
        pairs = [
            (random_graph(4, 0.5, seed=i), random_graph(4, 0.5, seed=i + 10))
            for i in range(3)
        ]
        for left, right in pairs:
            results = [ef_equivalent(left, right, rounds) for rounds in (1, 2, 3)]
            for earlier, later in zip(results, results[1:]):
                assert earlier or not later


class TestMidGamePositions:
    def test_losing_start_position(self):
        cycle = directed_cycle(4)
        # (0 ↦ 0, 1 ↦ 2) breaks the edge relation immediately.
        start = GamePosition(((0, 0), (1, 2)), 1)
        result = solve_ef_game(cycle, cycle, 1, start=start)
        assert not result.duplicator_wins

    def test_winning_start_position(self):
        cycle = directed_cycle(4)
        start = GamePosition(((0, 1),), 1)
        result = solve_ef_game(cycle, cycle, 1, start=start)
        assert result.duplicator_wins

    def test_position_validation(self):
        with pytest.raises(GameError):
            solve_ef_game(bare_set(2), bare_set(2), 1, start=GamePosition(((9, 0),), 1))


class TestPlayedGames:
    def test_optimal_vs_optimal_matches_solver(self):
        cases = [
            (bare_set(2), bare_set(3), 3),
            (linear_order(3), linear_order(4), 2),
            (directed_chain(4), directed_cycle(4), 2),
        ]
        for left, right, rounds in cases:
            winner, _ = play_ef_game(left, right, rounds, optimal_spoiler(), optimal_duplicator())
            expected = "duplicator" if ef_equivalent(left, right, rounds) else "spoiler"
            assert winner == expected

    def test_final_position_recorded(self):
        winner, final = play_ef_game(
            bare_set(3), bare_set(3), 2, optimal_spoiler(), optimal_duplicator()
        )
        assert winner == "duplicator"
        assert len(final.pairs) == 2

    def test_illegal_spoiler_move_rejected(self):
        def bad_spoiler(left, right, position):
            return Move("left", 99)

        with pytest.raises(GameError):
            play_ef_game(bare_set(2), bare_set(2), 1, bad_spoiler, optimal_duplicator())

    def test_illegal_duplicator_response_rejected(self):
        def bad_duplicator(left, right, position, move):
            return 99

        with pytest.raises(GameError):
            play_ef_game(bare_set(2), bare_set(2), 1, optimal_spoiler(), bad_duplicator)

    def test_spoiler_replay_forces_duplicator_reply(self):
        # A spoiler that replays its first element should never beat an
        # optimal duplicator on equivalent structures.
        def replaying_spoiler(left, right, position):
            return Move("left", left.universe[0])

        winner, _ = play_ef_game(
            undirected_chain(4), undirected_chain(4), 3, replaying_spoiler, optimal_duplicator()
        )
        assert winner == "duplicator"
