"""Tests for k-pebble games."""

import pytest

from repro.errors import GameError
from repro.games.ef import ef_equivalent
from repro.games.pebble import pebble_forever_equivalent, pebble_game_equivalent
from repro.structures.builders import (
    bare_set,
    directed_chain,
    directed_cycle,
    linear_order,
    random_graph,
)


class TestBoundedPebbleGame:
    def test_isomorphic_structures_equivalent(self):
        left = directed_cycle(4)
        right = directed_cycle(4).relabel(lambda element: element + 7)
        assert pebble_game_equivalent(left, right, pebbles=2, rounds=3)

    def test_needs_at_least_one_pebble(self):
        with pytest.raises(GameError):
            pebble_game_equivalent(bare_set(2), bare_set(2), 0, 1)

    def test_signature_mismatch_rejected(self):
        with pytest.raises(GameError):
            pebble_game_equivalent(bare_set(2), directed_cycle(3), 1, 1)

    def test_chain_vs_cycle_with_two_pebbles(self):
        # Two pebbles and two rounds find the chain's source.
        assert not pebble_game_equivalent(directed_chain(4), directed_cycle(4), 2, 2)

    def test_ef_win_implies_pebble_win(self):
        # With at least n pebbles, the n-round pebble game is easier for
        # the spoiler... conversely a duplicator EF win transfers.
        pairs = [
            (random_graph(3, 0.5, seed=i), random_graph(3, 0.5, seed=i + 20))
            for i in range(3)
        ]
        for left, right in pairs:
            if ef_equivalent(left, right, 2):
                assert pebble_game_equivalent(left, right, pebbles=2, rounds=2)

    def test_one_pebble_is_weak(self):
        # With a single pebble only point types (loops) are visible, so a
        # loop-free chain and a loop-free cycle are indistinguishable at
        # any number of rounds — "has a source" needs two variables.
        assert pebble_game_equivalent(directed_chain(3), directed_cycle(3), 1, 4)


class TestForeverPebbleGame:
    def test_isomorphic_structures_survive_forever(self):
        left = directed_cycle(4)
        right = directed_cycle(4).relabel(lambda element: element + 7)
        assert pebble_forever_equivalent(left, right, 2)

    def test_different_cycle_lengths_with_two_pebbles(self):
        # C3 vs C4 are distinguishable in FO² with enough rank... the
        # forever 2-pebble game detects it (distance counting).
        assert not pebble_forever_equivalent(directed_cycle(3), directed_cycle(4), 2)

    def test_bare_sets_forever_equivalent_with_fewer_pebbles(self):
        # FO^k cannot count beyond k: 3- and 4-element sets agree on all
        # 2-variable sentences, at every quantifier rank.
        assert pebble_forever_equivalent(bare_set(3), bare_set(4), 2)
        assert not pebble_forever_equivalent(bare_set(3), bare_set(4), 4)

    def test_forever_implies_bounded(self):
        left, right = bare_set(3), bare_set(4)
        assert pebble_forever_equivalent(left, right, 2)
        for rounds in (1, 2, 3, 4):
            assert pebble_game_equivalent(left, right, 2, rounds)

    def test_linear_orders_two_pebbles(self):
        # FO² over orders can say "there are at least 3 elements" but
        # separating L5 from L6 needs counting: 2 pebbles forever suffice
        # to distinguish them (the spoiler walks the order).
        assert not pebble_forever_equivalent(linear_order(5), linear_order(6), 2)
