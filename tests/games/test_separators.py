"""Tests for separating-sentence extraction (the logic side of the EF
theorem)."""

from repro.eval.evaluator import evaluate
from repro.games.separators import (
    agree_on_sentence,
    certify_equivalence,
    distinguishing_sentence,
)
from repro.logic.analysis import quantifier_rank
from repro.structures.builders import (
    bare_set,
    directed_chain,
    directed_cycle,
    linear_order,
    random_graph,
)


class TestDistinguishingSentence:
    def test_none_when_duplicator_wins(self):
        assert distinguishing_sentence(bare_set(4), bare_set(5), 2) is None

    def test_separator_for_small_sets(self):
        sentence = distinguishing_sentence(bare_set(1), bare_set(2), 2)
        assert sentence is not None
        assert quantifier_rank(sentence) <= 2
        assert evaluate(bare_set(1), sentence)
        assert not evaluate(bare_set(2), sentence)

    def test_separator_for_chain_vs_cycle(self):
        sentence = distinguishing_sentence(directed_chain(4), directed_cycle(4), 2)
        assert sentence is not None
        assert evaluate(directed_chain(4), sentence)
        assert not evaluate(directed_cycle(4), sentence)

    def test_separator_for_short_orders(self):
        sentence = distinguishing_sentence(linear_order(2), linear_order(3), 2)
        assert sentence is not None
        assert quantifier_rank(sentence) <= 2

    def test_separator_transfers_to_isomorphic_copies(self):
        left, right = directed_chain(4), directed_cycle(4)
        sentence = distinguishing_sentence(left, right, 2)
        assert sentence is not None
        relabeled = right.relabel(lambda element: element + 50)
        assert not evaluate(relabeled, sentence)


class TestAgreement:
    def test_agree_on_sentence(self):
        from repro.logic.parser import parse

        sentence = parse("exists x E(x, x)")
        assert agree_on_sentence(directed_chain(3), directed_cycle(3), sentence)

    def test_disagree_on_sentence(self):
        from repro.logic.parser import parse

        # The chain has a source, the cycle does not.
        sentence = parse("exists x forall y ~E(y, x)")
        assert not agree_on_sentence(directed_chain(3), directed_cycle(3), sentence)


class TestCertifyEquivalence:
    def test_certificate_for_equivalent_structures(self):
        certificate = certify_equivalence(bare_set(3), bare_set(4), 2)
        assert certificate is not None
        assert evaluate(bare_set(4), certificate)

    def test_no_certificate_when_spoiler_wins(self):
        assert certify_equivalence(bare_set(1), bare_set(2), 2) is None

    def test_certificate_agrees_with_game_solver(self):
        from repro.games.ef import ef_equivalent

        pairs = [
            (random_graph(3, 0.5, seed=i), random_graph(3, 0.4, seed=i + 30))
            for i in range(3)
        ]
        for left, right in pairs:
            game = ef_equivalent(left, right, 2)
            certificate = certify_equivalence(left, right, 2)
            assert (certificate is not None) == game
