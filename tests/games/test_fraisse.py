"""Tests for Fraïssé back-and-forth systems.

The headline property: `fraisse_equivalent` must agree with the EF game
solver on every pair — two independent decision procedures for ≡_n
checking each other.
"""

import pytest

from repro.errors import GameError
from repro.games.ef import ef_equivalent
from repro.games.fraisse import back_and_forth_system, fraisse_equivalent
from repro.structures.builders import (
    bare_set,
    directed_chain,
    directed_cycle,
    linear_order,
    random_graph,
)


class TestBackAndForthSystem:
    def test_levels_are_decreasing(self):
        levels = back_and_forth_system(bare_set(3), bare_set(3), 2)
        for higher, lower in zip(levels[1:], levels):
            assert higher <= lower

    def test_level_zero_contains_empty_map(self):
        levels = back_and_forth_system(bare_set(2), bare_set(3), 2)
        assert frozenset() in levels[0]

    def test_signature_mismatch_rejected(self):
        with pytest.raises(GameError):
            back_and_forth_system(bare_set(2), directed_cycle(3), 1)

    def test_negative_rounds_rejected(self):
        with pytest.raises(GameError):
            back_and_forth_system(bare_set(2), bare_set(2), -1)

    def test_zero_rounds_trivially_equivalent(self):
        assert fraisse_equivalent(bare_set(1), bare_set(5), 0)

    def test_value_function_matches_game_positions(self):
        # A singleton pair that breaks the order relation should be
        # absent from every level ≥ 1... in fact from level 0 already
        # (it is no partial isomorphism).
        left, right = linear_order(3), linear_order(3)
        levels = back_and_forth_system(left, right, 2)
        bad = frozenset({(0, 0), (1, 0)})
        assert bad not in levels[0]
        good = frozenset({(0, 0)})
        assert good in levels[1]


class TestAgreementWithGameSolver:
    CASES = [
        (bare_set(2), bare_set(3), 2),
        (bare_set(2), bare_set(3), 3),
        (bare_set(4), bare_set(5), 3),
        (linear_order(3), linear_order(4), 2),
        (linear_order(2), linear_order(3), 2),
        (directed_chain(4), directed_cycle(4), 2),
        (directed_cycle(4), directed_cycle(4), 3),
    ]

    @pytest.mark.parametrize("left,right,rounds", CASES)
    def test_fraisse_equals_game(self, left, right, rounds):
        assert fraisse_equivalent(left, right, rounds) == ef_equivalent(left, right, rounds)

    def test_random_pairs(self):
        for seed in range(5):
            left = random_graph(3, 0.5, seed=seed)
            right = random_graph(3, 0.4, seed=seed + 40)
            for rounds in (1, 2):
                assert fraisse_equivalent(left, right, rounds) == ef_equivalent(
                    left, right, rounds
                ), (seed, rounds)

    def test_theorem_3_1_via_fraisse(self):
        # The back-and-forth route also proves Theorem 3.1 instances.
        assert fraisse_equivalent(linear_order(4), linear_order(5), 2)
        assert not fraisse_equivalent(linear_order(2), linear_order(3), 2)
