"""Tests for the separation-measure utilities (rank vs variable width)."""

from repro.games.pebble import minimal_separating_pebbles, minimal_separating_rounds
from repro.structures.builders import (
    bare_set,
    directed_chain,
    directed_cycle,
    linear_order,
)


class TestMinimalRounds:
    def test_sets_need_rank_equal_to_smaller_size_plus_one(self):
        # 2-set vs 3-set: equivalent at rank ≤ 2, separated at rank 3.
        assert minimal_separating_rounds(bare_set(2), bare_set(3), 4) == 3

    def test_orders_follow_the_log_threshold(self):
        # L_3 vs L_4: equivalent at rank 2 (both ≥ 2²−1), separated at 3.
        assert minimal_separating_rounds(linear_order(3), linear_order(4), 4) == 3

    def test_chain_vs_cycle(self):
        # The chain's source is found with 2 quantifiers.
        assert minimal_separating_rounds(directed_chain(4), directed_cycle(4), 3) == 2

    def test_none_for_isomorphic(self):
        left = directed_cycle(4)
        right = directed_cycle(4).relabel(lambda element: element + 30)
        assert minimal_separating_rounds(left, right, 3) is None


class TestMinimalPebbles:
    def test_counting_needs_width(self):
        # Separating a 3-set from a 4-set needs 4 variables, at any rank.
        assert minimal_separating_pebbles(bare_set(3), bare_set(4), 5) == 4

    def test_orders_separable_with_two_variables(self):
        # FO² over orders counts by walking: 2 pebbles suffice.
        assert minimal_separating_pebbles(linear_order(4), linear_order(5), 3) == 2

    def test_chain_vs_cycle_two_pebbles(self):
        assert minimal_separating_pebbles(directed_chain(4), directed_cycle(4), 3) == 2

    def test_none_for_isomorphic(self):
        left = directed_cycle(3)
        right = directed_cycle(3).relabel(lambda element: element + 7)
        assert minimal_separating_pebbles(left, right, 3) is None

    def test_rank_vs_width_tradeoff(self):
        # The two measures genuinely differ: 3-set vs 4-set needs rank 4
        # (rounds) but ALSO width 4 — while L_4 vs L_5 needs rank 3 yet
        # only width 2.
        assert minimal_separating_rounds(linear_order(4), linear_order(5), 4) == 3
        assert minimal_separating_pebbles(linear_order(4), linear_order(5), 4) == 2
