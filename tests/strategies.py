"""Shared hypothesis strategies: random formulas and random structures.

The property-based tests draw FO formulas and finite structures from
these strategies; every semantics-preserving claim in the library
(transformations, the evaluator triangle, locality theorems) is tested
against them.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.logic.signature import GRAPH, Signature
from repro.logic.syntax import (
    And,
    Atom,
    Eq,
    Exists,
    Forall,
    Iff,
    Implies,
    Not,
    Or,
    Var,
)
from repro.structures.structure import Structure

VARS = tuple(Var(name) for name in ("x", "y", "z"))


def terms(num_vars: int = 3):
    return st.sampled_from(VARS[:num_vars])


def atoms(signature: Signature = GRAPH, num_vars: int = 3):
    """Atomic formulas (relational atoms and equalities) over x, y, z."""
    relational = st.one_of(
        [
            st.tuples(*[terms(num_vars)] * signature.arity(name)).map(
                lambda args, name=name: Atom(name, args)
            )
            for name in signature.relation_names()
        ]
        or [st.nothing()]
    )
    equality = st.tuples(terms(num_vars), terms(num_vars)).map(lambda pair: Eq(*pair))
    if signature.relation_names():
        return st.one_of(relational, equality)
    return equality


def formulas(signature: Signature = GRAPH, num_vars: int = 3, max_leaves: int = 6):
    """Random FO formulas over the given signature, depth-bounded."""

    def extend(children):
        unary = st.one_of(
            children.map(Not),
            st.tuples(terms(num_vars), children).map(lambda pair: Exists(pair[0], pair[1])),
            st.tuples(terms(num_vars), children).map(lambda pair: Forall(pair[0], pair[1])),
        )
        binary = st.one_of(
            st.tuples(children, children).map(lambda pair: And(pair)),
            st.tuples(children, children).map(lambda pair: Or(pair)),
            st.tuples(children, children).map(lambda pair: Implies(*pair)),
            st.tuples(children, children).map(lambda pair: Iff(*pair)),
        )
        return st.one_of(unary, binary)

    return st.recursive(atoms(signature, num_vars), extend, max_leaves=max_leaves)


def sentences(signature: Signature = GRAPH, num_vars: int = 3, max_leaves: int = 6):
    """Random sentences: formulas closed by quantifying every free variable."""
    from repro.logic.analysis import free_variables
    from repro.logic.builder import exists_many

    def close(formula):
        free = sorted(free_variables(formula), key=lambda var: var.name)
        return exists_many(free, formula)

    return formulas(signature, num_vars, max_leaves).map(close)


@st.composite
def graphs(draw, min_size: int = 1, max_size: int = 6, signature: Signature = GRAPH):
    """Random small structures over a (binary-relational) signature."""
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    universe = list(range(size))
    relations = {}
    for name in signature.relation_names():
        arity = signature.arity(name)
        possible = [
            tuple(row)
            for row in _all_rows(universe, arity)
        ]
        chosen = draw(st.lists(st.sampled_from(possible), unique=True, max_size=len(possible)))
        relations[name] = chosen
    return Structure(signature, universe, relations)


def _all_rows(universe, arity):
    import itertools

    return itertools.product(universe, repeat=arity)


# -- conformance-fuzzer-backed strategies ------------------------------------
#
# The conformance package (src/repro/conformance) ships seeded,
# index-addressable generators used by ``python -m repro.conformance``.
# These wrappers expose the exact same case distribution to hypothesis,
# so property-based tests and the differential fuzzer explore one shared
# input space: a case that hypothesis shrinks can be replayed by seed
# through the CLI, and vice versa.


@st.composite
def conformance_cases(
    draw,
    max_size: int = 6,
    formula_budget: int = 6,
    sentence_bias: float = 0.6,
):
    """Whole conformance cases (structure + formula + replay seed)."""
    from repro.conformance.generate import CaseGenerator

    stream_seed = draw(st.integers(min_value=0, max_value=2**16))
    index = draw(st.integers(min_value=0, max_value=2**10))
    generator = CaseGenerator(
        seed=stream_seed,
        max_size=max_size,
        formula_budget=formula_budget,
        sentence_bias=sentence_bias,
    )
    return generator.case(index)


def conformance_structures(max_size: int = 6):
    """Structures drawn from the conformance fuzzer's distribution
    (all six signatures, sparse/dense/structured/union families)."""
    return conformance_cases(max_size=max_size).map(lambda case: case.structure)


def conformance_formulas(formula_budget: int = 6):
    """Formulas drawn from the conformance fuzzer's distribution,
    paired signatures included (``<``-atoms, constants, ternary R)."""
    return conformance_cases(formula_budget=formula_budget).map(
        lambda case: case.formula
    )
