"""Request-scoped trace contexts: identity, sampling, scoping, propagation."""

import threading

import pytest

from repro import telemetry
from repro.telemetry import tracer
from repro.telemetry.context import (
    TraceContext,
    current_trace,
    current_trace_id,
    mint,
    new_span_id,
    new_trace_id,
    normalize_trace_id,
    propagation_payload,
    sampling_decision,
    scope_from_payload,
    trace_scope,
)


class TestIdentity:
    def test_new_ids_are_hex_and_distinct(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(t) == 16 and int(t, 16) >= 0 for t in ids)
        assert len(new_span_id()) == 8

    def test_normalize_accepts_lowercase_hex(self):
        assert normalize_trace_id("deadbeef") == "deadbeef"
        assert normalize_trace_id("  DEADBEEF  ") == "deadbeef"

    @pytest.mark.parametrize(
        "bad", [None, 42, "", "not hex!", "x" * 65, "g123", "a" * 65]
    )
    def test_normalize_rejects_invalid(self, bad):
        assert normalize_trace_id(bad) is None

    def test_mint_reuses_valid_client_id(self):
        assert mint("abc123").trace_id == "abc123"

    def test_mint_replaces_invalid_client_id(self):
        context = mint("NOT VALID")
        assert context.trace_id != "NOT VALID"
        assert normalize_trace_id(context.trace_id) == context.trace_id


class TestSampling:
    def test_extremes(self):
        assert sampling_decision("abc", 1.0) is True
        assert sampling_decision("abc", 0.0) is False

    def test_deterministic_per_trace_id(self):
        for trace_id in (new_trace_id() for _ in range(16)):
            first = sampling_decision(trace_id, 0.5)
            assert all(
                sampling_decision(trace_id, 0.5) == first for _ in range(5)
            )

    def test_rate_roughly_respected(self):
        hits = sum(sampling_decision(new_trace_id(), 0.3) for _ in range(2000))
        assert 400 < hits < 800  # 0.3 ± generous slack

    def test_mint_applies_rate(self):
        assert mint(rate=1.0).sampled is True
        assert mint(rate=0.0).sampled is False


class TestTraceScope:
    def test_installs_and_restores_context(self):
        assert current_trace() is None
        with trace_scope(mint("abc1")) as scope:
            assert current_trace_id() == "abc1"
            assert scope.context.trace_id == "abc1"
        assert current_trace() is None

    def test_sampled_scope_records_even_when_disabled(self):
        telemetry.disable()
        with trace_scope(mint("feed", rate=1.0)) as scope:
            assert tracer.is_recording()
            with telemetry.span("work"):
                pass
        assert [finished.name for finished in scope.roots] == ["work"]
        assert scope.roots[0].trace_id == "feed"

    def test_unsampled_scope_silences_even_when_enabled(self):
        telemetry.enable()
        with trace_scope(mint("feed", rate=0.0)) as scope:
            assert not tracer.is_recording()
            with telemetry.span("work"):
                pass
        assert scope.roots == []

    def test_exception_mid_span_cannot_leak_into_next_request(self):
        # The satellite-2 failure mode: a reused handler thread must not
        # re-parent the next request's spans under a leaked open span.
        telemetry.disable()
        with pytest.raises(RuntimeError):
            with trace_scope(mint("aaaa", rate=1.0)) as first:
                open_span = telemetry.span("dies").__enter__()
                assert open_span is not None
                raise RuntimeError("request died mid-span")
        assert first.orphaned_spans == 1
        with trace_scope(mint("bbbb", rate=1.0)) as second:
            with telemetry.span("next.request"):
                pass
        assert [finished.name for finished in second.roots] == ["next.request"]
        assert second.roots[0].trace_id == "bbbb"
        assert second.roots[0].children == []
        assert second.orphaned_spans == 0

    def test_nested_scopes_restore_outer(self):
        with trace_scope(mint("aaaa", rate=1.0)):
            with trace_scope(mint("bbbb", rate=0.0)):
                assert current_trace_id() == "bbbb"
                assert not tracer.is_recording()
            assert current_trace_id() == "aaaa"
            assert tracer.is_recording()


class TestPropagation:
    def test_payload_none_when_not_recording(self):
        telemetry.disable()
        assert propagation_payload() is None

    def test_payload_carries_scope_identity(self):
        with trace_scope(mint("cafe", rate=1.0)):
            payload = propagation_payload()
        assert payload is not None
        assert payload[0] == "cafe"

    def test_payload_mints_fresh_id_when_enabled_without_scope(self):
        telemetry.enable()
        payload = propagation_payload()
        assert payload is not None
        assert normalize_trace_id(payload[0]) == payload[0]

    def test_worker_scope_records_under_parent_trace(self):
        scope = scope_from_payload(("cafe", "01020304"))
        with scope:
            with telemetry.span("worker.unit"):
                pass
        assert [finished.name for finished in scope.roots] == ["worker.unit"]
        assert scope.roots[0].trace_id == "cafe"

    def test_adopt_spans_grafts_worker_trees(self):
        scope = scope_from_payload(("cafe", "01020304"))
        with scope:
            with telemetry.span("worker.unit"):
                pass
        shipped = [finished.to_dict() for finished in scope.roots]
        with trace_scope(mint("beef", rate=1.0)) as parent:
            with telemetry.span("parent.collect"):
                assert tracer.adopt_spans(shipped) == 1
        (root,) = parent.roots
        assert root.name == "parent.collect"
        (child,) = root.children
        assert child.name == "worker.unit"
        # Adoption re-stamps the subtree with the adopting trace.
        assert {node.trace_id for node in child.walk()} == {"beef"}

    def test_adopt_spans_noop_when_not_recording(self):
        telemetry.disable()
        assert tracer.adopt_spans([{"name": "x", "duration_ms": 1.0}]) == 0


class TestSerialization:
    def test_span_round_trip(self):
        telemetry.enable()
        with telemetry.span("outer") as outer:
            outer.set("k", "v")
            with telemetry.span("inner"):
                pass
        data = outer.to_dict()
        rebuilt = tracer.span_from_dict(data)
        assert rebuilt.name == "outer"
        assert rebuilt.attributes == {"k": "v"}
        assert rebuilt.span_id == outer.span_id
        assert [child.name for child in rebuilt.children] == ["inner"]
        assert rebuilt.duration_ms == pytest.approx(data["duration_ms"])

    def test_context_to_wire(self):
        assert TraceContext("abcd", "0102", True).to_wire() == "abcd"


class TestThreadIsolation:
    def test_scopes_are_per_thread(self):
        seen = {}
        barrier = threading.Barrier(2)

        def run(tid):
            with trace_scope(mint(tid, rate=1.0)):
                barrier.wait()
                seen[tid] = current_trace_id()

        threads = [
            threading.Thread(target=run, args=(t,)) for t in ("aaa1", "bbb2")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert seen == {"aaa1": "aaa1", "bbb2": "bbb2"}
