"""EXPLAIN ANALYZE tests: ``Engine.profile`` actuals vs ``Engine.answers``."""

import pytest

from repro.engine import Engine, ProfiledExplanation
from repro.errors import EvaluationError
from repro.eval.evaluator import answers as naive_answers
from repro.logic.parser import parse
from repro.logic.syntax import Var
from repro.queries.zoo import fo_graph_corpus
from repro.structures.builders import random_graph

DISTANCE_TWO = parse("exists z (E(x, z) & E(z, y)) & ~E(x, y)")


def plan_nodes(plan):
    yield plan
    for child in plan.children():
        yield from plan_nodes(child)


class TestProfile:
    def test_profile_answers_match_engine_and_naive(self):
        engine = Engine()
        graph = random_graph(12, 0.3, seed=3)
        profile = engine.profile(graph, DISTANCE_TWO)
        assert isinstance(profile, ProfiledExplanation)
        assert profile.answers == engine.answers(graph, DISTANCE_TWO)
        assert profile.answers == naive_answers(graph, DISTANCE_TWO)

    def test_every_plan_node_has_actuals(self):
        engine = Engine()
        profile = engine.profile(random_graph(12, 0.3, seed=3), DISTANCE_TWO)
        for node in plan_nodes(profile.plan):
            actuals = profile.node_actuals(node)
            assert actuals is not None, node.label()
            assert actuals.rows >= 0
            assert actuals.seconds >= 0.0

    def test_root_actual_rows_equal_answer_count(self):
        engine = Engine()
        graph = random_graph(12, 0.3, seed=3)
        profile = engine.profile(graph, DISTANCE_TWO)
        assert profile.node_actuals(profile.plan).rows == len(profile.answers)

    def test_estimates_preserved_next_to_actuals(self):
        engine = Engine()
        profile = engine.profile(random_graph(12, 0.3, seed=3), DISTANCE_TWO)
        explanation = engine.explain(random_graph(12, 0.3, seed=3), DISTANCE_TWO)
        assert profile.plan == explanation.plan  # same cached plan, same estimates
        text = str(profile)
        assert "est=" in text
        assert "actual=" in text
        assert "answer rows" in text

    def test_profile_works_without_telemetry_enabled(self):
        # EXPLAIN ANALYZE must not require the global switch: the
        # recorder rides on the executor, not on the tracer.
        from repro import telemetry

        assert_was = telemetry.is_enabled()
        telemetry.disable()
        try:
            engine = Engine()
            profile = engine.profile(random_graph(10, 0.25, seed=4), DISTANCE_TWO)
            assert profile.actuals
        finally:
            if assert_was:
                telemetry.enable()

    def test_profile_bypasses_answer_cache(self):
        engine = Engine()
        graph = random_graph(10, 0.25, seed=4)
        engine.answers(graph, DISTANCE_TWO)
        executions = engine.stats.executions
        engine.profile(graph, DISTANCE_TWO)
        assert engine.stats.executions == executions + 1

    def test_profile_sentence_and_custom_free_order(self):
        engine = Engine()
        graph = random_graph(8, 0.4, seed=5)
        sentence = parse("exists x exists y (E(x, y) & E(y, x))")
        profile = engine.profile(graph, sentence)
        assert profile.answers in (frozenset(), frozenset({()}))
        reordered = engine.profile(
            graph, DISTANCE_TWO, free_order=(Var("y"), Var("x"))
        )
        assert reordered.answers == engine.answers(
            graph, DISTANCE_TWO, free_order=(Var("y"), Var("x"))
        )

    def test_profile_rejects_bad_free_order(self):
        engine = Engine()
        graph = random_graph(8, 0.4, seed=5)
        with pytest.raises(EvaluationError):
            engine.profile(graph, DISTANCE_TWO, free_order=(Var("x"),))
        with pytest.raises(EvaluationError):
            engine.profile(
                graph, DISTANCE_TWO, free_order=(Var("x"), Var("x"), Var("y"))
            )

    def test_profile_across_the_query_zoo(self):
        engine = Engine()
        graph = random_graph(10, 0.2, seed=6)
        for query in fo_graph_corpus():
            profile = engine.profile(graph, query.formula, query.variables)
            assert profile.answers == naive_answers(
                graph, query.formula, query.variables
            ), query.name
