"""Telemetry tests toggle global state; always restore it."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def clean_telemetry():
    was_enabled = telemetry.is_enabled()
    telemetry.reset()
    yield
    if was_enabled:
        telemetry.enable()
    else:
        telemetry.disable()
    telemetry.reset()
