"""Metrics registry unit tests: counters, gauges, histogram percentiles."""

import json
import threading

import pytest

from repro.telemetry.metrics import Histogram, MetricsRegistry


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("events").inc()
        registry.counter("events").inc(4)
        assert registry.counter("events").value == 5

    def test_gauge_holds_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("size").set(10)
        registry.gauge("size").set(3)
        assert registry.gauge("size").value == 3

    def test_one_name_one_kind(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_concurrent_increments_from_two_threads(self):
        registry = MetricsRegistry()

        def bump():
            for _ in range(10_000):
                registry.counter("shared").inc()

        threads = [threading.Thread(target=bump) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("shared").value == 20_000


class TestHistogram:
    def test_percentiles_nearest_rank(self):
        h = Histogram("latency")
        for value in range(1, 101):
            h.observe(float(value))
        assert h.percentile(50) == 50.0
        assert h.percentile(95) == 95.0
        assert h.percentile(99) == 99.0
        assert h.percentile(100) == 100.0
        assert h.count == 100
        assert h.mean == pytest.approx(50.5)
        assert h.min == 1.0 and h.max == 100.0

    def test_percentile_validates_range(self):
        h = Histogram("latency")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_empty_histogram_summary(self):
        h = Histogram("empty")
        assert h.summary() == {"count": 0}
        assert h.percentile(50) == 0.0

    def test_moments_stay_exact_past_the_sample_limit(self):
        original = Histogram.SAMPLE_LIMIT
        try:
            Histogram.SAMPLE_LIMIT = 10
            h = Histogram("big")
            for value in range(1, 101):
                h.observe(float(value))
            assert h.count == 100
            assert h.max == 100.0
            assert len(h._sample) == 10
        finally:
            Histogram.SAMPLE_LIMIT = original


class TestSnapshotAndReport:
    def test_snapshot_is_json_serializable_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.counter("a.count").inc(1)
        registry.gauge("cache.size").set(7)
        registry.histogram("ms").observe(1.5)
        snap = registry.snapshot()
        json.dumps(snap)  # must not raise
        assert list(snap["counters"]) == ["a.count", "b.count"]
        assert snap["gauges"]["cache.size"] == 7
        assert snap["histograms"]["ms"]["count"] == 1

    def test_report_mentions_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("engine.executions").inc(3)
        registry.gauge("cache.plan.size").set(2)
        registry.histogram("executor.ms.Join").observe(0.5)
        text = registry.report()
        assert "engine.executions" in text
        assert "cache.plan.size" in text
        assert "executor.ms.Join" in text

    def test_empty_report(self):
        assert "no metrics recorded" in MetricsRegistry().report()

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert len(registry) == 0
        assert "x" not in registry
